#![warn(missing_docs)]

//! # temporal-fairness-rr
//!
//! A repo-scale reproduction of *Temporal Fairness of Round Robin:
//! Competitive Analysis for Lk-norms of Flow Time* (Im, Kulkarni, Moseley —
//! SPAA 2015).
//!
//! This facade crate re-exports the workspace so downstream users can
//! depend on a single crate:
//!
//! * [`simcore`] — exact event-driven multi-machine scheduling simulator;
//! * [`policies`] — RR, SRPT, SJF, SETF, FCFS, LAPS, age-weighted RR, …;
//! * [`workload`] — arrival/size generators and adversarial instances;
//! * [`metrics`] — ℓk-norms of flow time, fairness indices, statistics;
//! * [`lowerbound`] — certified lower bounds on OPT via the paper's LP
//!   relaxation (solved exactly by min-cost flow);
//! * [`core`] — the paper's dual-fitting analysis, executable: dual
//!   variable construction, Lemma 1–4 checkers, Theorem 1 certificates;
//! * [`dispatch`] — the non-migratory / immediate-dispatch regime of the
//!   related work (\[2, 3\]);
//! * [`speedup`] — the arbitrary speed-up curves model where RR provably
//!   fails for ℓ2 (\[13, 15\], the paper's Section 1.2 foil);
//! * [`broadcast`] — pull-based broadcast scheduling, the other Section
//!   1.2 setting (one transmission serves every outstanding request);
//! * [`obs`] — structured tracing and counters (spans, chrome-trace /
//!   JSONL sinks), zero-cost when off;
//! * [`audit`] — differential & metamorphic correctness net: invariant
//!   catalogue, policy oracles, fuzzing and counterexample shrinking
//!   (see `docs/VALIDATION.md`);
//! * [`harness`] — the E1–E17 experiment suite.
//!
//! ## Quickstart
//!
//! ```
//! use temporal_fairness_rr::prelude::*;
//!
//! // Two jobs on one machine under Round Robin.
//! let trace = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0)]).unwrap();
//! let mut rr = RoundRobin::new();
//! let sched = Simulation::of(&trace).policy(&mut rr).run().unwrap();
//! assert!((sched.completion[0] - 2.0).abs() < 1e-9);
//! assert!((sched.completion[1] - 3.0).abs() < 1e-9);
//! // The l2-norm of flow time the paper studies:
//! let l2 = sched.flow_norm(2.0);
//! assert!((l2 - (4.0f64 + 9.0).sqrt()).abs() < 1e-9);
//! ```
//!
//! [`Simulation`](prelude::Simulation) is the builder front door; the
//! plain [`simulate`](prelude::simulate) function remains for callers
//! that want every knob positional. To trace a run, pick a sink:
//!
//! ```
//! use temporal_fairness_rr::prelude::*;
//!
//! let trace = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0)]).unwrap();
//! let mut rr = RoundRobin::new();
//! let sched = Simulation::of(&trace)
//!     .policy(&mut rr)
//!     .trace(SinkSpec::Collect) // or SinkSpec::Chrome("run.trace.json".into())
//!     .run()
//!     .unwrap();
//! assert!(sched.stats.registry().get("sim.jobs_admitted").unwrap() >= 2.0);
//! ```

pub use tf_audit as audit;
pub use tf_broadcast as broadcast;
pub use tf_core as core;
pub use tf_dispatch as dispatch;
pub use tf_harness as harness;
pub use tf_lowerbound as lowerbound;
pub use tf_metrics as metrics;
pub use tf_obs as obs;
pub use tf_policies as policies;
pub use tf_simcore as simcore;
pub use tf_speedup as speedup;
pub use tf_workload as workload;

/// The most common imports, bundled.
pub mod prelude {
    pub use tf_audit::{audit_schedule, audit_trace, shrink_trace, AuditConfig, AuditReport};
    pub use tf_core::{verify_theorem1, Certificate};
    pub use tf_lowerbound::lk_lower_bound;
    pub use tf_metrics::{flow_stats, jain_index, lk_norm};
    pub use tf_obs::{ObsRegistry, SinkSpec};
    pub use tf_policies::{Fcfs, Laps, Policy, RoundRobin, Setf, Sjf, Srpt, WeightedRoundRobin};
    pub use tf_simcore::{
        simulate, Job, JobId, MachineConfig, RateAllocator, Schedule, SimOptions, Simulation, Trace,
    };
    pub use tf_workload::{PoissonWorkload, SizeDist};
}

//! Cross-crate integration: generator → simulator → metrics → lower bound
//! → dual-fitting certificate, exercised through the facade crate exactly
//! as a downstream user would.

use temporal_fairness_rr::core::{primal_cost, verify_theorem1};
use temporal_fairness_rr::lowerbound::lk_lower_bound;
use temporal_fairness_rr::metrics::{instantaneous_fairness, lk_norm};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::simcore::validate::validate_schedule;
use temporal_fairness_rr::workload::adversarial::geometric_burst;

fn workload(n: usize, seed: u64) -> Trace {
    PoissonWorkload::new(n, 0.9, 2, SizeDist::Exponential { mean: 3.0 }, seed)
        .generate()
        .to_integral()
}

#[test]
fn full_pipeline_on_random_workload() {
    let trace = workload(60, 11);
    let cfg = MachineConfig::new(2);

    // Every policy yields a valid schedule whose l2 norm dominates the
    // certified lower bound.
    let lb = lk_lower_bound(&trace, 2, 2);
    assert!(lb.value > 0.0);
    for p in Policy::all() {
        let mut alloc = p.make();
        let s = simulate(&trace, alloc.as_mut(), cfg, SimOptions::with_profile()).unwrap();
        let tol = if p == Policy::AgedRr { 2e-2 } else { 1e-6 };
        let rep = validate_schedule(&trace, &s, tol);
        assert!(rep.ok(), "{p}: {:?}", rep.issues);
        assert!(
            s.flow_power_sum(2.0) >= lb.value * (1.0 - 1e-9),
            "{p} beat the lower bound"
        );
    }
}

#[test]
fn theorem1_certificate_via_facade() {
    let trace = workload(50, 23);
    for k in [1u32, 2] {
        let cert: Certificate = verify_theorem1(&trace, 2, k, 0.05).unwrap();
        assert!(cert.certified(), "k={k}: {:?}", cert.report);
        // The certified chain: RR^k (at speed eta) <= (4*gamma/(3*eps)) *
        // OPT^k (at speed 1), with OPT^k at least the certified LB.
        let lb = lk_lower_bound(&trace, 2, k);
        let bound = 4.0 * cert.gamma / (3.0 * cert.eps);
        // A necessary consequence we can check without knowing OPT: the
        // certificate's ratio bound holds against any OPT >= LB... which is
        // trivially satisfiable; instead check the non-trivial direction
        // via an explicit feasible schedule.
        let mut srpt = Srpt::new();
        let opt_upper = simulate(
            &trace,
            &mut srpt,
            MachineConfig::new(2),
            SimOptions::default(),
        )
        .unwrap()
        .flow_power_sum(f64::from(k));
        assert!(opt_upper >= lb.value * (1.0 - 1e-9));
        assert!(
            cert.rr_power_sum <= bound * opt_upper * (1.0 + 1e-7),
            "k={k}: certified bound violated"
        );
    }
}

#[test]
fn weak_duality_chain_through_all_crates() {
    let trace = geometric_burst(4, 2);
    let (m, k, eps) = (1usize, 2u32, 0.05);
    let cert = verify_theorem1(&trace, m, k, eps).unwrap();
    assert!(cert.certified());

    // Dual objective <= gamma-scaled primal cost of an independent
    // feasible schedule (SRPT at speed 1), computed from its exact profile.
    let mut srpt = Srpt::new();
    let sched = simulate(
        &trace,
        &mut srpt,
        MachineConfig::new(m),
        SimOptions::with_profile(),
    )
    .unwrap();
    let cost = primal_cost(&trace, sched.profile.as_ref().unwrap(), k, eps);
    assert!(
        cert.dual_objective <= cost * (1.0 + 1e-7),
        "weak duality violated: {} > {}",
        cert.dual_objective,
        cost
    );
}

#[test]
fn rr_is_instantaneously_fair_on_every_instance_shape() {
    for trace in [
        workload(40, 3),
        geometric_burst(4, 2),
        Trace::from_pairs([(0.0, 5.0), (0.0, 0.5), (4.0, 2.0)]).unwrap(),
    ] {
        let mut rr = RoundRobin::new();
        let s = simulate(
            &trace,
            &mut rr,
            MachineConfig::new(2),
            SimOptions::with_profile(),
        )
        .unwrap();
        let series = instantaneous_fairness(s.profile.as_ref().unwrap());
        // Exactly fair up to f64 summation noise in the index itself.
        assert!((series.mean_jain() - 1.0).abs() < 1e-12);
        assert!((series.min_jain() - 1.0).abs() < 1e-12);
        assert_eq!(series.starvation_time(), 0.0);
    }
}

#[test]
fn norms_from_schedule_match_metrics_crate() {
    let trace = workload(30, 5);
    let mut rr = RoundRobin::new();
    let s = simulate(
        &trace,
        &mut rr,
        MachineConfig::new(1),
        SimOptions::default(),
    )
    .unwrap();
    for k in [1.0, 2.0, 3.0, f64::INFINITY] {
        assert!((s.flow_norm(k) - lk_norm(&s.flow, k)).abs() < 1e-9);
    }
}

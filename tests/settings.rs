//! Integration across the alternative-setting substrates, exercised
//! through the facade crate: the paper's Section 1.2 narrative end to end.

use temporal_fairness_rr::broadcast::{
    simulate_broadcast, BroadcastInstance, PerPageRR, PerRequestRR,
};
use temporal_fairness_rr::dispatch::{simulate_dispatch, DispatchRule};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::speedup::families::seq_swarm_overlapped;
use temporal_fairness_rr::speedup::{simulate_speedup, Equi, GreedyPar};

/// The crux of the paper in one test: the *same* Round Robin that Theorem
/// 1 certifies on identical machines fails (ratio grows with dilution) for
/// l2 under speed-up curves — both measured here.
#[test]
fn section_1_2_contrast_end_to_end() {
    // Standard setting: Theorem 1 certificate on a congested instance.
    let trace = Trace::from_pairs((0..20).map(|i| (0.5 * i as f64, 1.0 + (i % 3) as f64))).unwrap();
    let cert = verify_theorem1(&trace, 1, 2, 0.05).unwrap();
    assert!(cert.certified());

    // Speed-up curves: EQUI's l2 ratio doubles when dilution quadruples.
    let ratio_at = |d: f64| {
        let par_work = 2.0;
        let swarm = 4usize;
        let seq_len = par_work / d;
        let horizon = 1.2 * par_work * (4.0 * swarm as f64 + 1.0);
        let rounds = (horizon / (seq_len / 4.0)).ceil() as usize;
        let t = seq_swarm_overlapped(swarm, seq_len, par_work, rounds, 4);
        let e = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        let g = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
        e.flow_norm(2.0) / g.flow_norm(2.0)
    };
    let (r4, r64) = (ratio_at(4.0), ratio_at(64.0));
    assert!(r64 > 2.0 * r4, "no dilution growth: {r4} -> {r64}");
}

#[test]
fn dispatch_preserves_workload_semantics() {
    let trace =
        PoissonWorkload::new(80, 0.9, 4, SizeDist::Exponential { mean: 2.0 }, 99).generate();
    let out = simulate_dispatch(&trace, DispatchRule::LeastWork, Policy::Rr, 4, 1.0).unwrap();
    // Total flow of the merged schedule equals the sum over machines.
    let merged: f64 = out.schedule.flow.iter().sum();
    let by_machine: f64 = out.per_machine.iter().map(|s| s.total_flow()).sum();
    assert!((merged - by_machine).abs() < 1e-6);
}

#[test]
fn broadcast_aggregation_beats_unicast_semantics() {
    // The same "requests" treated as unicast jobs (tf-simcore) vs broadcast
    // (tf-broadcast): batches of identical requests are free only under
    // broadcast.
    let batch = 16usize;
    let i = BroadcastInstance::new(
        vec![4.0],
        (0..batch)
            .map(|_| temporal_fairness_rr::broadcast::Request {
                page: 0,
                arrival: 0.0,
            })
            .collect(),
    );
    let b = simulate_broadcast(&i, &mut PerPageRR, 1.0);
    assert!((b.transmitted - 4.0).abs() < 1e-9); // one transmission

    let unicast = Trace::from_pairs((0..batch).map(|_| (0.0, 4.0))).unwrap();
    let mut rr = RoundRobin::new();
    let u = simulate(
        &unicast,
        &mut rr,
        MachineConfig::new(1),
        SimOptions::default(),
    )
    .unwrap();
    // Unicast RR needs 64 units of work; broadcast flow is 16x smaller.
    assert!((u.makespan() - 64.0).abs() < 1e-9);
    assert!(b.flow_norm(f64::INFINITY) * 8.0 < u.flow_norm(f64::INFINITY));

    // Per-request RR agrees with per-page RR on a single page.
    let b2 = simulate_broadcast(&i, &mut PerRequestRR, 1.0);
    assert_eq!(b.completion, b2.completion);
}

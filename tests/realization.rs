//! Integration: the fractional schedules the theory reasons about are
//! physically realizable, and the practical quantum scheduler converges to
//! them.

use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::simcore::mcnaughton::{delivered_work, verify_assignment, wrap_around};
use temporal_fairness_rr::simcore::quantum::{simulate_quantum_rr, QuantumOptions};
use temporal_fairness_rr::workload::traceio::{load_trace, save_trace};

#[test]
fn entire_rr_profile_realizes_on_physical_machines() {
    let trace =
        PoissonWorkload::new(50, 1.0, 3, SizeDist::Uniform { lo: 0.5, hi: 4.0 }, 77).generate();
    let cfg = MachineConfig::with_speed(3, 1.5);
    let mut rr = RoundRobin::new();
    let s = simulate(&trace, &mut rr, cfg, SimOptions::with_profile()).unwrap();
    let profile = s.profile.as_ref().unwrap();

    // Each segment maps to a concrete 3-machine timetable delivering
    // exactly the fractional work, with no job on two machines at once.
    let mut realized = vec![0.0; trace.len()];
    for seg in profile.segments() {
        let asg = wrap_around(seg, cfg.m, cfg.speed).expect("feasible segment");
        verify_assignment(seg, &asg).unwrap();
        for (job, w) in delivered_work(&asg, cfg.speed) {
            realized[job as usize] += w;
        }
    }
    for j in trace.jobs() {
        assert!(
            (realized[j.id as usize] - j.size).abs() < 1e-6,
            "job {}: realized {} of {}",
            j.id,
            realized[j.id as usize],
            j.size
        );
    }
}

#[test]
fn quantum_rr_converges_to_ideal_on_a_cluster() {
    let trace =
        PoissonWorkload::new(40, 0.8, 2, SizeDist::Exponential { mean: 2.0 }, 41).generate();
    let cfg = MachineConfig::new(2);
    let mut rr = RoundRobin::new();
    let ideal = simulate(&trace, &mut rr, cfg, SimOptions::default()).unwrap();

    let mut prev_err = f64::INFINITY;
    for q in [1.0, 0.25, 0.05] {
        let s = simulate_quantum_rr(&trace, cfg, QuantumOptions::new(q)).unwrap();
        let err = ideal
            .flow
            .iter()
            .zip(&s.flow)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err <= prev_err + 1e-9,
            "error grew as quantum shrank: {err} > {prev_err}"
        );
        prev_err = err;
    }
    assert!(prev_err < 1.0, "fine-quantum error too large: {prev_err}");
}

#[test]
fn trace_roundtrip_preserves_schedules_bit_for_bit() {
    let trace = PoissonWorkload::new(
        30,
        0.9,
        1,
        SizeDist::Pareto {
            alpha: 2.0,
            min: 1.0,
        },
        9,
    )
    .generate();
    let path = std::env::temp_dir().join(format!("tf-it-roundtrip-{}.json", std::process::id()));
    save_trace(&trace, &path).unwrap();
    let back = load_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, back);

    let cfg = MachineConfig::new(1);
    let a = simulate(&trace, &mut RoundRobin::new(), cfg, SimOptions::default()).unwrap();
    let b = simulate(&back, &mut RoundRobin::new(), cfg, SimOptions::default()).unwrap();
    assert_eq!(a.completion, b.completion);
}

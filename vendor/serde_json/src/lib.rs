#![allow(clippy::all)]

//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` [`Value`] tree to JSON text and parses
//! JSON text back. Floats are printed with Rust's shortest round-trip
//! formatting (`{:?}`), so persisted traces reload bit-for-bit — the
//! property the workspace's `float_roundtrip` feature request is about.
//! Non-finite floats serialize as `null`, matching real serde_json.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    pub offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` into the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a generic [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Parse a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; it always
                // contains '.' or 'e', so the value reparses as a float.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::at(
                format!("unexpected byte `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{lit}`"), self.pos))
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::at("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::at("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at("invalid utf-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v: Vec<(u32, f64)> = vec![(1, 0.1), (2, 3.0)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.1],[2,3.0]]");
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(u32, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn float_bits_roundtrip() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            123456789.123456789,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(from_str::<f64>("1.5x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}

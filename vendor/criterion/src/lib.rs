//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`) and measures wall-clock ns/iter with a warm-up phase and
//! a fixed measurement window. No statistics beyond mean/median/min — this
//! is a baseline-tracking tool, not a rigorous sampler.
//!
//! Set `BENCH_JSON_OUT=/path/file.json` to append one JSON record per
//! benchmark: `{"group","bench","mean_ns","median_ns","min_ns","iters"}`.
//! Set `BENCH_MEASURE_MS` / `BENCH_WARMUP_MS` to override every group's
//! timing windows (useful for quick smoke runs).

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark label within the group.
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// Fastest per-sample mean.
    pub min_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: env_ms("BENCH_WARMUP_MS").unwrap_or(Duration::from_millis(300)),
            measure: env_ms("BENCH_MEASURE_MS").unwrap_or(Duration::from_secs(1)),
            sample_size: 20,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name.to_string(), f);
        g.finish();
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Write JSON records to `BENCH_JSON_OUT` (append), if set.
    pub fn flush_json(&self) {
        let Ok(path) = std::env::var("BENCH_JSON_OUT") else {
            return;
        };
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion stand-in: cannot open {path}");
            return;
        };
        for r in &self.results {
            let _ = writeln!(
                f,
                "{{\"group\":{:?},\"bench\":{:?},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"iters\":{}}}",
                r.group, r.bench, r.mean_ns, r.median_ns, r.min_ns, r.iters
            );
        }
    }
}

fn env_ms(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration (ignored if `BENCH_WARMUP_MS` is set).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if env_ms("BENCH_WARMUP_MS").is_none() {
            self.warm_up = d;
        }
        self
    }

    /// Set the measurement duration (ignored if `BENCH_MEASURE_MS` is set).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if env_ms("BENCH_MEASURE_MS").is_none() {
            self.measure = d;
        }
        self
    }

    /// Set the number of samples the window is split into.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare throughput (accepted for compatibility; unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Measure a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.measure, self.sample_size);
        f(&mut b);
        self.record(id.to_string(), &b);
        self
    }

    /// Measure a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.measure, self.sample_size);
        f(&mut b, input);
        self.record(id.to_string(), &b);
        self
    }

    /// Finish the group (results are recorded incrementally; this is a
    /// no-op kept for API compatibility).
    pub fn finish(&mut self) {}

    fn record(&mut self, bench: String, b: &Bencher) {
        let r = BenchResult {
            group: self.name.clone(),
            bench,
            mean_ns: b.mean_ns,
            median_ns: b.median_ns,
            min_ns: b.min_ns,
            iters: b.iters,
        };
        let label = if r.group.is_empty() {
            r.bench.clone()
        } else {
            format!("{}/{}", r.group, r.bench)
        };
        println!(
            "bench {label:<50} {:>12.1} ns/iter (median {:.1}, min {:.1}, {} iters)",
            r.mean_ns, r.median_ns, r.min_ns, r.iters
        );
        self.criterion.results.push(r);
    }
}

/// Throughput declaration (compatibility shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration, sample_size: usize) -> Self {
        Bencher {
            warm_up,
            measure,
            sample_size,
            mean_ns: 0.0,
            median_ns: 0.0,
            min_ns: 0.0,
            iters: 0,
        }
    }

    /// Time `f`, splitting the measurement window into samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let sample_window = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((sample_window / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        let start = Instant::now();
        while samples.len() < self.sample_size && start.elapsed() < 2 * self.measure {
            let s0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = s0.elapsed().as_secs_f64();
            samples.push(dt * 1e9 / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len().max(1);
        self.mean_ns = samples.iter().sum::<f64>() / n as f64;
        self.median_ns = samples.get(n / 2).copied().unwrap_or(0.0);
        self.min_ns = samples.first().copied().unwrap_or(0.0);
        self.iters = total_iters;
    }

    /// `iter_batched` compatibility: setup runs outside the timed section
    /// only approximately (per batch, not per iteration).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Batch sizing hint (compatibility shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.flush_json();
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); accept and
            // ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::remove_var("BENCH_JSON_OUT");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.warm_up_time(Duration::from_millis(5));
            g.measurement_time(Duration::from_millis(20));
            g.sample_size(5);
            g.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert!(r.mean_ns > 0.0);
        assert!(r.iters > 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("k2", 100).to_string(), "k2/100");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}

#![allow(clippy::all)]

//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the parallel-iterator API this workspace
//! uses (`par_iter().map(..).collect()`, `flat_map`, `into_par_iter` on
//! vectors and ranges) with order-preserving fork/join over
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! available core; that matches the coarse-grained simulation workloads the
//! harness parallelizes (each item is a full simulate()/LP solve).
//!
//! Everything is eager: `map` runs its closure in parallel immediately and
//! the result wraps a `Vec`. Subsequent combinators are therefore cheap
//! sequential adapters, which keeps the type surface tiny.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "use available cores".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the pool width for subsequent parallel calls (0 restores the
/// auto-detected width). Returns the previous override so callers can
/// scope it. Real rayon configures this through `ThreadPoolBuilder`; the
/// stand-in only needs it for determinism tests that compare 1-thread
/// against many-thread runs.
pub fn set_thread_override(n: usize) -> usize {
    THREAD_OVERRIDE.swap(n, Ordering::SeqCst)
}

fn n_threads(items: usize) -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    let cores = if forced > 0 {
        forced
    } else if let Ok(n) = std::env::var("RAYON_NUM_THREADS") {
        // Same env knob real rayon honors.
        n.parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(4)
            })
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(4)
    };
    cores.min(items).max(1)
}

/// Order-preserving parallel map consuming a vector.
fn par_map_vec<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = n_threads(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon stand-in worker panicked"));
        }
        out
    })
}

/// A not-yet-mapped borrowed parallel iterator.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; runs eagerly.
    pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParResult<U> {
        // Cannot use par_map_slice: the closure wants the 'a lifetime.
        let n = self.items.len();
        let threads = n_threads(n);
        let out = if threads <= 1 {
            self.items.iter().map(f).collect()
        } else {
            let chunk = n.div_ceil(threads);
            let f = &f;
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
                    .collect();
                let mut out = Vec::with_capacity(n);
                for h in handles {
                    out.extend(h.join().expect("rayon stand-in worker panicked"));
                }
                out
            })
        };
        ParResult { items: out }
    }

    /// Parallel flat-map; runs eagerly, preserving order.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> ParResult<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(&'a T) -> I + Sync,
    {
        let nested = self.map(|t| f(t).into_iter().collect::<Vec<U>>());
        ParResult {
            items: nested.items.into_iter().flatten().collect(),
        }
    }

    /// Filter by a predicate (sequential: predicates here are cheap).
    pub fn filter<F: Fn(&&'a T) -> bool + Sync>(self, pred: F) -> ParResult<&'a T> {
        ParResult {
            items: self.items.iter().filter(|t| pred(t)).collect(),
        }
    }

    /// Copy out the items (compatibility).
    pub fn cloned(self) -> ParResult<T>
    where
        T: Clone + Send,
    {
        ParResult {
            items: self.items.to_vec(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// An evaluated parallel computation: an ordered `Vec` with iterator-like
/// adapters.
pub struct ParResult<T> {
    items: Vec<T>,
}

impl<T: Send> ParResult<T> {
    /// Parallel map over the already-evaluated items.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParResult<U> {
        ParResult {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Parallel flat-map over the already-evaluated items.
    pub fn flat_map<U: Send, I, F>(self, f: F) -> ParResult<U>
    where
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_map_vec(self.items, &|t| f(t).into_iter().collect::<Vec<U>>());
        ParResult {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Sequential filter.
    pub fn filter<F: Fn(&T) -> bool>(self, pred: F) -> ParResult<T> {
        ParResult {
            items: self.items.into_iter().filter(pred).collect(),
        }
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Fold-style reduction (sequential; identity taken once).
    pub fn reduce<ID: FnOnce() -> T, OP: Fn(T, T) -> T>(self, identity: ID, op: OP) -> T {
        self.items.into_iter().fold(identity(), op)
    }

    /// Minimum by a comparison function.
    pub fn min_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().min_by(cmp)
    }

    /// Maximum by a comparison function.
    pub fn max_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(cmp)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Run a closure on every item (parallel).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F)
    where
        T: Send,
    {
        par_map_vec(self.items, &|t| f(t));
    }
}

/// `rayon::prelude` — import target for `use rayon::prelude::*`.
pub mod prelude {
    use super::{ParIter, ParResult};

    /// Borrowed parallel iteration (`.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: 'a;
        /// Start a parallel iterator over references.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Owned parallel iteration (`.into_par_iter()`).
    pub trait IntoParallelIterator {
        /// Owned item type.
        type Item: Send;
        /// Start a parallel iterator over owned items.
        fn into_par_iter(self) -> ParResult<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParResult<T> {
            ParResult { items: self }
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Item = T;
        fn into_par_iter(self) -> ParResult<T> {
            ParResult {
                items: self.into_iter().collect(),
            }
        }
    }

    macro_rules! impl_range_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParResult<$t> {
                    ParResult { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_into_par!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_and_owned() {
        let out: Vec<u32> = vec![1u32, 2, 3]
            .par_iter()
            .flat_map(|&x| vec![x, 10 * x])
            .collect();
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
        let sum: u64 = (0u64..100).into_par_iter().map(|x| x).sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn thread_override_preserves_order() {
        let v: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = v.iter().map(|&x| x * 3 + 1).collect();
        for forced in [1usize, 2, 7] {
            let prev = super::set_thread_override(forced);
            let out: Vec<u64> = v.par_iter().map(|&x| x * 3 + 1).collect();
            super::set_thread_override(prev);
            assert_eq!(out, seq, "forced={forced}");
        }
    }

    #[test]
    fn nested_parallelism_works() {
        let out: Vec<usize> = (0usize..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0usize..4)
                    .into_par_iter()
                    .map(move |j| i * 4 + j)
                    .collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(out.len(), 8);
        assert_eq!(out[0], 0 + 1 + 2 + 3);
    }
}

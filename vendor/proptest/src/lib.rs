#![allow(clippy::all)]
#![allow(duplicate_macro_attributes)]

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use, with deterministic per-test seeding (seed = FNV-1a of the
//! test name, overridable via `PROPTEST_SEED`). Failing cases are reported
//! with the case index and seed; there is **no shrinking** — rerun with the
//! printed seed to reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is meaningful in the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for a named test (env `PROPTEST_SEED` overrides).
pub fn test_rng(test_name: &str) -> StdRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values (no shrinking in the stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retry until `pred` accepts a value (caps at 1000 attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.reason
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Uniform union of `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Strings from a pattern. The stand-in supports the `[class]{lo,hi}`
/// shape the workspace uses (single character class with a repetition
/// count); anything else is generated literally.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pat: &str, rng: &mut StdRng) -> String {
    let bytes = pat.as_bytes();
    if let (Some(0), Some(close)) = (
        bytes.first().map(|_| usize::from(bytes[0] != b'[')),
        pat.find(']'),
    ) {
        // `[chars]{lo,hi}` or `[chars]` (one char).
        let class: Vec<char> = pat[1..close].chars().collect();
        let rest = &pat[close + 1..];
        let (lo, hi) = if rest.starts_with('{') && rest.ends_with('}') {
            let body = &rest[1..rest.len() - 1];
            match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8)),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if rest.is_empty() {
            (1, 1)
        } else {
            // Unsupported tail — emit it literally after one class char.
            let mut s = String::new();
            if !class.is_empty() {
                s.push(class[rng.gen_range(0..class.len())]);
            }
            s.push_str(rest);
            return s;
        };
        let len = rng.gen_range(lo..=hi);
        return (0..len).map(|_| expand_class(&class, rng)).collect();
    }
    pat.to_string()
}

/// Pick one char from a class, honoring `a-z` ranges.
fn expand_class(class: &[char], rng: &mut StdRng) -> char {
    let mut choices: Vec<char> = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                if let Some(c) = char::from_u32(c) {
                    choices.push(c);
                }
            }
            i += 3;
        } else {
            choices.push(class[i]);
            i += 1;
        }
    }
    if choices.is_empty() {
        return 'x';
    }
    choices[rng.gen_range(0..choices.len())]
}

/// Types with a canonical default strategy (for `any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrim(std::marker::PhantomData) }
        }
    )*};
}
impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Size specification: a fixed size or a range of sizes.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Fair coin strategy instance.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut StdRng) -> bool {
                rng.gen()
            }
        }
    }

    /// Numeric strategies namespace (ranges implement `Strategy` directly).
    pub mod num {}
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub use rand::rngs::StdRng;
}

pub use rand::rngs::StdRng as TestRng;

/// Assert inside a proptest body; failure aborts the case with a message
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", __a, __b, file!(), line!()));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{}): {}",
                __a, __b, file!(), line!(), format!($($fmt)+)));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})",
                __a,
                __b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discard the current case when an assumption fails (counted as a pass in
/// the stand-in).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut __arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::new();
        $(__arms.push(::std::boxed::Box::new($arm));)+
        $crate::Union::new(__arms)
    }};
}

/// The test-definition macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{} (set PROPTEST_SEED to reproduce): {}",
                        stringify!($name), __case + 1, __cfg.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        let s = (0.0f64..1.0, 5usize..10).prop_map(|(f, n)| (f * 2.0, n));
        for _ in 0..100 {
            let (f, n) = s.sample(&mut rng);
            assert!((0.0..2.0).contains(&f));
            assert!((5..10).contains(&n));
        }
        let v = prop::collection::vec(1u32..4, 2..=5);
        for _ in 0..50 {
            let xs = v.sample(&mut rng);
            assert!((2..=5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    fn string_pattern_class() {
        let mut rng = crate::test_rng("pattern");
        let s = "[a-c0-1.,]{0,8}";
        for _ in 0..100 {
            let out = Strategy::sample(&s, &mut rng);
            assert!(out.len() <= 8);
            assert!(out.chars().all(|c| "abc01.,".contains(c)), "{out:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_rng("oneof");
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself works end to end.
        #[test]
        fn macro_roundtrip(x in 1u32..100, ys in prop::collection::vec(0.0f64..1.0, 0..5)) {
            prop_assert!(x >= 1);
            prop_assert_eq!(ys.len(), ys.len());
            for y in ys {
                prop_assert!((0.0..1.0).contains(&y), "y = {}", y);
            }
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this minimal, API-compatible
//! subset: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! repo actually calls (`gen`, `gen_range`, `gen_bool`, `fill`).
//!
//! Streams are deterministic for a given seed but do **not** match upstream
//! `rand` 0.8 byte-for-byte; all in-repo fixtures were generated with this
//! implementation.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor this repo uses).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy. Stand-in: mixes the current time; only for
    /// unseeded exploratory use, never in tests.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(t)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the type's natural domain
/// (`[0,1)` for floats, all values for integers, fair coin for bool).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics on empty ranges.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = rng.gen();
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "cannot sample empty range");
                // 2^53+1 equally likely mantissa points cover [lo, hi].
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo + u * (hi - lo)) as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Unbiased uniform integer in `[0, span)` (`span > 0`) via Lemire's
/// multiply-shift with rejection.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span || lo >= lo.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: this stand-in has no separate small RNG.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A convenience thread-local-style RNG (time-seeded; not reproducible).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Distributions module for `rand::distributions::{Distribution, Standard}`
/// imports.
pub mod distributions {
    pub use super::{Distribution, Standard};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&x));
            let y: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&y));
            let z: u16 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_range_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}

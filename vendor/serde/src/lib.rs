//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stand-in keeps the
//! same *user-facing* surface (`Serialize`/`Deserialize` traits, derive
//! macros re-exported under the same names) but routes everything through a
//! simple owned [`Value`] tree. `serde_json` (also vendored) converts that
//! tree to and from JSON text. This trades some speed for a tiny,
//! dependency-free implementation that builds with no network access.
//!
//! Supported shapes — everything this workspace derives or persists:
//! named-field structs, enums with unit / tuple / struct variants
//! (externally tagged, like real serde), primitives, `String`, `Option`,
//! `Vec`, fixed-size arrays, tuples, and maps with string keys.

use std::collections::BTreeMap;
use std::fmt;

/// An owned, JSON-shaped data tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Linear map lookup helper used by derive-generated code.
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Free-form error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A struct field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error {
            msg: format!("missing field `{name}`"),
        }
    }

    /// Type mismatch while reading a value.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {what}, got {got:?}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// Re-export the derive macros under the trait names, like `serde`'s
// `derive` feature does.
#[cfg(feature = "serde_derive")]
pub use serde_derive::{Deserialize, Serialize};

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_ser_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) if i >= 0 => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => Ok(f as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_ser_uint_wide!(u64, usize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("tuple sequence", v))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of {LEN}, got {} elements", s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Compatibility alias modules so `serde::ser::Serialize` /
/// `serde::de::Deserialize` paths keep working.
pub mod ser {
    pub use super::{Error, Serialize};
}

/// See [`ser`].
pub mod de {
    pub use super::{Deserialize, Error};

    /// Borrowed-deserialization alias; the stand-in model is owned, so this
    /// is the same trait.
    pub use super::Deserialize as DeserializeOwned;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<(u32, f64)> = vec![(1, 2.0), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn nan_roundtrips_via_null() {
        let v = f64::NAN.to_value();
        // Value::Float(NaN) — serde_json layer maps it to null on write.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        match v {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(m.get("a"), Some(&Value::Int(1)));
        assert_eq!(m.get("b"), None);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. The parser is hand-rolled over `proc_macro` token
//! trees (no `syn`/`quote` available offline) and supports exactly the
//! shapes this workspace uses:
//!
//! * structs with named fields,
//! * enums with unit, tuple, and named-field variants (externally tagged,
//!   matching real serde's default JSON representation).
//!
//! Generic type parameters and `#[serde(...)]` attributes are rejected with
//! a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip any `#[...]` attribute groups at the cursor.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a token slice on top-level commas (groups keep their own commas).
fn split_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extract the field names of a named-field body (`{ a: T, b: U }`).
fn parse_named_fields(body: &TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    for piece in split_commas(&toks) {
        let mut i = skip_attrs(&piece, 0);
        i = skip_vis(&piece, i);
        match piece.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => return Err(format!("unexpected token in field position: {other}")),
            None => continue,
        }
        match piece.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("field `{}` has no `:`", fields.last().unwrap())),
        }
    }
    Ok(fields)
}

fn parse_variants(body: &TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    for piece in split_commas(&toks) {
        let mut i = skip_attrs(&piece, 0);
        i = skip_vis(&piece, i);
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in variant position: {other}")),
            None => continue,
        };
        i += 1;
        let kind = match piece.get(i) {
            None => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let elems: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantKind::Tuple(split_commas(&elems).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(&g.stream())?)
            }
            Some(other) => return Err(format!("unexpected token after variant {name}: {other}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    // `where` clauses are absent in this workspace; the next group is the body.
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "vendored serde_derive does not support tuple struct `{name}`"
            ));
        }
        other => return Err(format!("expected {{...}} body for {name}, got {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: parse_variants(&body)?,
        }),
        other => Err(format!("cannot derive for `{other}`")),
    }
}

/// Derive `serde::Serialize` (vendored value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                             ({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize` (vendored value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?})\
                     .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __m = __v.as_map().ok_or_else(|| \
                             ::serde::Error::expected(\"map for struct {name}\", __v))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        // Also accept the {"Variant": null} form.
                        tagged_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let elems: Vec<String> = (0..*k)
                            .map(|j| {
                                format!("::serde::Deserialize::from_value(&__s[{j}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| \
                                     ::serde::Error::expected(\"tuple payload\", __payload))?;\n\
                                 if __s.len() != {k} {{ return Err(::serde::Error::custom(\
                                     format!(\"variant {name}::{vn} expects {k} values, got {{}}\", __s.len()))); }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, {f:?})\
                                     .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let __fm = __payload.as_map().ok_or_else(|| \
                                     ::serde::Error::expected(\"map payload\", __payload))?;\n\
                                 Ok({name}::{vn} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::Error::custom(format!(\
                                     \"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => Err(::serde::Error::custom(format!(\
                                         \"unknown {name} variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::expected(\"enum {name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

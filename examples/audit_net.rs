//! The correctness net, end to end: audit a clean instance, then inject
//! a subtly broken Round Robin (the classic off-by-one in the share) and
//! watch the policy-structural oracle catch it where the feasibility
//! checks cannot — and the shrinker reduce the counterexample.
//!
//! ```text
//! cargo run --example audit_net
//! ```

use temporal_fairness_rr::audit::{audit_schedule, audit_trace, metamorphic_suite, shrink_trace};
use temporal_fairness_rr::prelude::*;

/// RR with its share divided by `n + 1` instead of `n`: still feasible,
/// still work-conserving on the jobs it serves — every schedule-level
/// check passes. Only the structural oracle knows the definition.
struct OffByOneRr;

impl RateAllocator for OffByOneRr {
    fn name(&self) -> &'static str {
        "RR"
    }
    fn allocate(
        &mut self,
        _now: f64,
        alive: &[temporal_fairness_rr::simcore::AliveJob],
        cfg: &MachineConfig,
        rates: &mut [f64],
    ) {
        let share = cfg.speed * (cfg.m as f64 / (alive.len() + 1) as f64).min(1.0);
        rates.fill(share);
    }
}

fn main() {
    let cfg = AuditConfig::default();
    let trace = Trace::from_pairs([
        (0.0, 3.0),
        (0.0, 1.0),
        (1.0, 4.0),
        (2.0, 2.0),
        (5.0, 1.0),
        (5.0, 2.0),
    ])
    .expect("valid trace");

    // 1. The full catalogue over every registered policy, plus the
    //    metamorphic suite — the same net the fuzz bin runs per instance.
    let mut report = audit_trace(&trace, 2, 1.0, &Policy::all(), &cfg);
    report.merge(metamorphic_suite(&trace, 2, 1.0, &cfg));
    println!(
        "clean instance: {} checks, {} violation(s)",
        report.checks_run,
        report.violations.len()
    );
    assert!(report.ok());

    // 2. Inject the bug. The schedule it produces is feasible, so the
    //    S-checks pass; P-RR-SHARE fails because the rates are not the
    //    equal share s·min(1, m/n).
    let broken = |t: &Trace| {
        Simulation::of(t)
            .policy(&mut OffByOneRr)
            .record_profile()
            .run()
            .expect("simulates fine — that is the point")
    };
    let sched = broken(&trace);
    let caught = audit_schedule(&trace, &sched, Some(Policy::Rr), &cfg);
    println!("\ninjected off-by-one RR share:");
    for v in &caught.violations {
        println!("  [{}] {}", v.check, v.detail);
    }
    assert!(caught.has("P-RR-SHARE"));

    // 3. Shrink the counterexample: minimal trace on which the same
    //    check still fails (one job suffices — n+1 is wrong even alone).
    let minimal = shrink_trace(&trace, |t| {
        audit_schedule(t, &broken(t), Some(Policy::Rr), &cfg).has("P-RR-SHARE")
    });
    println!(
        "\nshrunk from {} jobs to {}: {:?}",
        trace.len(),
        minimal.len(),
        minimal
            .jobs()
            .iter()
            .map(|j| (j.arrival, j.size))
            .collect::<Vec<_>>()
    );
    assert!(minimal.len() <= 4);
}

//! Trace RR's ℓ2 competitive-ratio curve against machine speed — the
//! empirical picture behind the paper's two thresholds (no O(1) guarantee
//! below 3/2; Theorem 1's guarantee at 4+ε), with a rough ASCII plot.
//!
//! ```text
//! cargo run --release --example speed_sweep
//! ```

use temporal_fairness_rr::harness::ratio::{
    best_baseline_power, default_baselines, policy_power_sum,
};
use temporal_fairness_rr::policies::Policy;
use temporal_fairness_rr::workload::adversarial::geometric_burst;

fn main() {
    let trace = geometric_burst(6, 2);
    let k = 2u32;
    println!(
        "instance: geometric burst, n = {} jobs; objective: l2 norm of flow",
        trace.len()
    );

    let (best, who) = best_baseline_power(&trace, 1, k, &default_baselines());
    println!("best speed-1 baseline: {who}\n");

    println!("{:>6}  {:>7}  plot (each # = 0.05)", "speed", "ratio");
    let mut crossed_one = None;
    for i in 2..=24 {
        let s = 0.25 * i as f64; // 0.5 .. 6.0
        let ratio = (policy_power_sum(&trace, Policy::Rr, 1, s, k) / best).sqrt();
        let bars = (ratio / 0.05).round() as usize;
        println!("{s:>6.2}  {ratio:>7.3}  {}", "#".repeat(bars.min(80)));
        if crossed_one.is_none() && ratio <= 1.0 {
            crossed_one = Some(s);
        }
    }
    println!();
    match crossed_one {
        Some(s) => println!(
            "RR first matches the best speed-1 baseline at speed {s:.2} — between the\n\
             paper's 3/2 lower-bound threshold and Theorem 1's 4+eps guarantee."
        ),
        None => println!("RR never reached ratio 1 in the sweep (unexpected)."),
    }
}

//! A realistic scenario: a heavy-tailed "datacenter" workload (Poisson
//! arrivals, Pareto sizes — mice and elephants) on a small cluster.
//! Generates the trace, persists it as JSON, reloads it, and compares
//! every policy on latency, tail, and fairness metrics.
//!
//! ```text
//! cargo run --release --example datacenter_trace
//! ```

use temporal_fairness_rr::metrics::{flow_stats, instantaneous_fairness, stretch_stats};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::workload::traceio::{load_trace, save_trace};

fn main() {
    // 300 requests at 90% utilization of 4 machines; Pareto(1.7) sizes.
    let workload = PoissonWorkload::new(
        300,
        0.9,
        4,
        SizeDist::Pareto {
            alpha: 1.7,
            min: 1.0,
        },
        2024,
    );
    let trace = workload.generate();

    // Persist + reload: the artifact a real evaluation would check in.
    let path = std::env::temp_dir().join("tf_datacenter_trace.json");
    save_trace(&trace, &path).expect("write trace");
    let trace = load_trace(&path).expect("read trace back");
    println!(
        "workload: {} jobs, total work {:.0}, max job {:.1}, saved to {}",
        trace.len(),
        trace.total_size(),
        trace.max_size(),
        path.display()
    );
    println!();

    let cfg = MachineConfig::new(4);
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "policy", "mean", "p99", "max", "l2", "maxStretch", "meanJain"
    );
    for p in [
        Policy::Rr,
        Policy::Srpt,
        Policy::Sjf,
        Policy::Setf,
        Policy::Fcfs,
        Policy::Laps(0.5),
    ] {
        let mut alloc = p.make();
        let s = simulate(&trace, alloc.as_mut(), cfg, SimOptions::with_profile()).unwrap();
        let st = flow_stats(&s.flow);
        let stretch = stretch_stats(&trace, &s).unwrap();
        let fairness = instantaneous_fairness(s.profile.as_ref().unwrap());
        println!(
            "{:<9} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>10.1} {:>9.3}",
            p.to_string(),
            st.mean,
            st.p99,
            st.max,
            lk_norm(&s.flow, 2.0),
            stretch.max,
            fairness.mean_jain(),
        );
    }
    println!();
    println!("RR gives up some mean latency for a perfect fairness index and");
    println!("bounded stretch on the elephants — the trade the paper formalizes");
    println!("through the l2 norm of flow time.");
}

//! Run the paper's Theorem 1 pipeline end to end on a concrete instance:
//! simulate RR at the prescribed speed, build the Section 3.2 dual
//! variables, and machine-check Lemmas 1–4 plus dual feasibility.
//!
//! ```text
//! cargo run --example theorem1_certificate
//! ```

use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::workload::adversarial::geometric_cascade;

fn main() {
    let trace = geometric_cascade(4, 0.9);
    let (m, k, eps) = (2usize, 2u32, 0.05f64);

    let cert: Certificate = verify_theorem1(&trace, m, k, eps).expect("simulation succeeds");

    println!(
        "instance: geometric cascade, n = {} jobs, m = {m}, k = {k}, eps = {eps}",
        cert.n
    );
    println!("RR speed (eta = 2k(1+10eps)): {:.3}", cert.speed);
    println!("gamma = k(k/eps)^(k-1):       {:.3}", cert.gamma);
    println!();
    println!("RR^k (sum of flow^k):  {:.4}", cert.rr_power_sum);
    println!("sum alpha_j:           {:.4}", cert.alpha_sum);
    println!("m * integral beta:     {:.4}", cert.beta_mass);
    println!("dual objective:        {:.4}", cert.dual_objective);
    println!();
    let r = &cert.report;
    println!(
        "Lemma 1 (sum alpha >= (1/2-eps) RR^k):    ok={} slack={:+.4}",
        r.lemma1.ok, r.lemma1.slack
    );
    println!(
        "Lemma 2 (beta mass <= (1/2-2eps) RR^k):   ok={} slack={:+.4}",
        r.lemma2.ok, r.lemma2.slack
    );
    println!(
        "gap     (dual obj >= 1.5 eps RR^k):       ok={} slack={:+.4}",
        r.gap.ok, r.gap.slack
    );
    println!(
        "dual feasibility: {} points checked, {} violations, worst slack {:+.4}",
        r.feasibility.checked, r.feasibility.violations, r.feasibility.worst_slack
    );
    println!(
        "Lemma 3 samples: {}/{} ok   Lemma 4 samples: {}/{} ok",
        r.lemma3.checked - r.lemma3.violations,
        r.lemma3.checked,
        r.lemma4.checked - r.lemma4.violations,
        r.lemma4.checked
    );
    println!(
        "most negative alpha_j: {:.4} (allowed; see tf-core docs)",
        r.min_alpha
    );
    println!();
    if cert.certified() {
        println!(
            "CERTIFIED: on this instance, RR at speed {:.2} has l{}-norm competitive\n\
             ratio at most {:.2} against any speed-1 schedule (Theorem 1's bound).",
            cert.speed, k, cert.implied_ratio_bound
        );
    } else {
        println!("NOT certified — some inequality failed (see slacks above).");
    }
}

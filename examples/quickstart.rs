//! Quickstart: simulate Round Robin and a clairvoyant baseline on a small
//! instance and compare the flow-time norms the paper studies.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use temporal_fairness_rr::prelude::*;

fn main() {
    // Five jobs: (arrival, size). Job 0 is large; shorts arrive during it.
    let trace = Trace::from_pairs([(0.0, 8.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0), (6.0, 3.0)])
        .expect("valid trace");

    println!(
        "instance: {} jobs, total work {}",
        trace.len(),
        trace.total_size()
    );
    println!();

    // One machine, unit speed: RR vs SRPT vs FCFS. `Simulation` is the
    // builder front door; defaults are one unit-speed machine.
    for (name, sched) in [
        (
            "RR",
            Simulation::of(&trace)
                .policy(&mut RoundRobin::new())
                .run()
                .unwrap(),
        ),
        (
            "SRPT",
            Simulation::of(&trace)
                .policy(&mut Srpt::new())
                .run()
                .unwrap(),
        ),
        (
            "FCFS",
            Simulation::of(&trace)
                .policy(&mut Fcfs::new())
                .run()
                .unwrap(),
        ),
    ] {
        println!("{name:>5}:");
        for j in trace.jobs() {
            println!(
                "    job {} (r={}, p={}): completes {:.3}, flow {:.3}",
                j.id, j.arrival, j.size, sched.completion[j.id as usize], sched.flow[j.id as usize]
            );
        }
        println!(
            "    l1 = {:.3}   l2 = {:.3}   max = {:.3}",
            sched.flow_norm(1.0),
            sched.flow_norm(2.0),
            sched.flow_norm(f64::INFINITY)
        );
        println!();
    }

    // The paper's speed augmentation: RR with a (4+eps)-speed machine is
    // O(1)-competitive for the l2 norm (Theorem 1, k=2).
    let rr_fast = Simulation::of(&trace)
        .policy(&mut RoundRobin::new())
        .speed(4.4)
        .run()
        .unwrap();
    println!(
        "RR at speed 4.4: l2 = {:.3} (speed-1 SRPT l2 = {:.3})",
        rr_fast.flow_norm(2.0),
        Simulation::of(&trace)
            .policy(&mut Srpt::new())
            .run()
            .unwrap()
            .flow_norm(2.0),
    );

    // And a certified lower bound on what ANY schedule could do:
    let lb = lk_lower_bound(&trace, 1, 2);
    println!("certified lower bound on the l2 norm: {:.3}", lb.norm(2.0));
}

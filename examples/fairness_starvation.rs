//! The paper's motivating scenario: a long job competing with a saturating
//! stream of short jobs. SRPT minimizes average flow but *starves* the
//! long job; RR keeps every job progressing — temporal fairness.
//!
//! ```text
//! cargo run --example fairness_starvation
//! ```

use temporal_fairness_rr::metrics::{flow_stats, instantaneous_fairness};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::workload::adversarial::srpt_starvation;

fn main() {
    // One job of size 30 at t=0; 150 unit jobs arriving back-to-back.
    let trace = srpt_starvation(30.0, 1.0, 150, 1.0);
    let cfg = MachineConfig::new(1);

    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "policy", "mean", "variance", "p99", "max", "meanJain"
    );
    for p in [
        Policy::Rr,
        Policy::Srpt,
        Policy::Sjf,
        Policy::Setf,
        Policy::Fcfs,
    ] {
        let mut alloc = p.make();
        let s = simulate(&trace, alloc.as_mut(), cfg, SimOptions::with_profile()).unwrap();
        let st = flow_stats(&s.flow);
        let fairness = instantaneous_fairness(s.profile.as_ref().unwrap());
        println!(
            "{:<6} {:>10.2} {:>12.2} {:>10.2} {:>10.2} {:>10.3}",
            p.to_string(),
            st.mean,
            st.variance,
            st.p99,
            st.max,
            fairness.mean_jain()
        );
    }

    println!();
    let mut srpt = Srpt::new();
    let s = simulate(&trace, &mut srpt, cfg, SimOptions::default()).unwrap();
    println!(
        "under SRPT the long job waits for the entire stream: flow {:.1} (size 30)",
        s.flow[0]
    );
    let mut rr = RoundRobin::new();
    let s = simulate(&trace, &mut rr, cfg, SimOptions::default()).unwrap();
    println!(
        "under RR it always holds its fair share:        flow {:.1}",
        s.flow[0]
    );
    println!();
    println!("This is why the l2 norm matters: it charges the variance that");
    println!("the l1 norm ignores, and the paper proves RR handles it with");
    println!("O(1) speed augmentation (Theorem 1).");
}

//! A cluster front-end scenario: compare migratory RR (the paper's model)
//! with immediate-dispatch RR under different routing rules, and render a
//! small schedule as an ASCII Gantt chart.
//!
//! ```text
//! cargo run --release --example cluster_dispatch
//! ```

use temporal_fairness_rr::dispatch::{simulate_dispatch, DispatchRule};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::simcore::gantt::render_gantt;

fn main() {
    // A bursty workload on a 3-machine cluster.
    let workload = PoissonWorkload::new(
        150,
        0.95,
        3,
        SizeDist::Bimodal {
            small: 1.0,
            large: 12.0,
            p_large: 0.12,
        },
        7,
    );
    let trace = workload.generate();
    let m = 3usize;

    // Migratory RR — the paper's fractional model.
    let mut rr = RoundRobin::new();
    let migratory = simulate(
        &trace,
        &mut rr,
        MachineConfig::new(m),
        SimOptions::default(),
    )
    .unwrap();

    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "scheduler", "l1", "l2", "max"
    );
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>10.1}",
        "migratory RR",
        migratory.flow_norm(1.0),
        migratory.flow_norm(2.0),
        migratory.flow_norm(f64::INFINITY)
    );
    for rule in [
        DispatchRule::Cyclic,
        DispatchRule::LeastWork,
        DispatchRule::Random { seed: 3 },
    ] {
        let out = simulate_dispatch(&trace, rule, Policy::Rr, m, 1.0).unwrap();
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.1}",
            format!("dispatch {}", rule.label()),
            out.schedule.flow_norm(1.0),
            out.schedule.flow_norm(2.0),
            out.schedule.flow_norm(f64::INFINITY)
        );
    }

    // Gantt view of a small prefix under migratory RR.
    println!("\nFirst 10 jobs under migratory RR (McNaughton realization):");
    let small =
        Trace::from_pairs(trace.jobs().iter().take(10).map(|j| (j.arrival, j.size))).unwrap();
    let mut rr = RoundRobin::new();
    let sched = simulate(
        &small,
        &mut rr,
        MachineConfig::new(m),
        SimOptions::with_profile(),
    )
    .unwrap();
    print!("{}", render_gantt(sched.profile.as_ref().unwrap(), 72));
    println!("\n(glyph = job id; '.' = idle; fractional RR shares realized by");
    println!(" the wrap-around rule, so jobs hop machines but never overlap.)");
}

//! Mine your own worst case: hill-climb over small instances to find the
//! trace that maximizes RR's *certified* competitive ratio (exact OPT in
//! the denominator — no estimates), then inspect it as a Gantt chart.
//!
//! ```text
//! cargo run --release --example worst_case_miner
//! ```

use temporal_fairness_rr::harness::hunt::{hunt, true_ratio, HuntConfig};
use temporal_fairness_rr::prelude::*;
use temporal_fairness_rr::simcore::gantt::render_gantt;

fn main() {
    let cfg = HuntConfig {
        speed: 1.0,
        k: 2,
        steps: 300,
        restarts: 4,
        ..Default::default()
    };
    println!(
        "searching instances with <= {} jobs, sizes <= {}, arrivals <= {} ...",
        cfg.max_jobs, cfg.max_size, cfg.max_arrival
    );
    let res = hunt(Policy::Rr, &cfg);

    println!(
        "\nworst certified l2 ratio found for RR at speed 1: {:.4} ({} instances evaluated)",
        res.ratio, res.evaluated
    );
    println!(
        "restart bests: {:?}",
        res.restart_ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("\nthe mined instance (arrival, size):");
    for j in res.trace.jobs() {
        println!("  job {}: ({}, {})", j.id, j.arrival, j.size);
    }

    // Show what RR does on it.
    let mut rr = RoundRobin::new();
    let sched = simulate(
        &res.trace,
        &mut rr,
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    println!("\nRR schedule (McNaughton view):");
    print!("{}", render_gantt(sched.profile.as_ref().unwrap(), 64));

    // And how much speed fixes it.
    println!("\nratio of the same instance as RR speeds up:");
    for s in [1.0, 1.5, 2.0, 3.0, 4.4] {
        let r = true_ratio(&res.trace, Policy::Rr, &HuntConfig { speed: s, ..cfg }).unwrap();
        println!("  speed {s:>4}: {r:.4}");
    }
    println!("\n(Theorem 1 promises O(1) at 4+eps for l2 — watch the column collapse.)");
}

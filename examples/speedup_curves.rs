//! The paper's Section 1.2 foil, live: the *same* Round Robin that
//! Theorem 1 certifies on identical machines provably fails for the ℓ2
//! norm once jobs have arbitrary speed-up curves — sequential phases make
//! equal sharing wasteful.
//!
//! ```text
//! cargo run --release --example speedup_curves
//! ```

use temporal_fairness_rr::speedup::families::seq_swarm_overlapped;
use temporal_fairness_rr::speedup::{simulate_speedup, Equi, GreedyPar, LapsCurves};

fn main() {
    println!("One parallelizable job + a swarm of tiny sequential jobs.");
    println!("Sequential phases run at machine speed with ZERO processors,");
    println!("so they cost the optimum nothing — but EQUI (=RR) still gives");
    println!("each of them an equal share.\n");

    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "dilution", "n", "EQUI l2", "LAPS l2", "greedy l2", "EQUI/g"
    );
    for d in [4.0, 16.0, 64.0] {
        let par_work = 4.0;
        let seq_len = par_work / d;
        let swarm = 8;
        let horizon = 1.2 * par_work * (4.0 * swarm as f64 + 1.0);
        let rounds = (horizon / (seq_len / 4.0)).ceil() as usize;
        let t = seq_swarm_overlapped(swarm, seq_len, par_work, rounds, 4);

        let equi = simulate_speedup(&t, &mut Equi, 1.0, 1.0);
        let laps = simulate_speedup(&t, &mut LapsCurves::new(0.5), 1.0, 1.0);
        let greedy = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
        println!(
            "{:>10} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
            d,
            t.len(),
            equi.flow_norm(2.0),
            laps.flow_norm(2.0),
            greedy.flow_norm(2.0),
            equi.flow_norm(2.0) / greedy.flow_norm(2.0),
        );
    }

    println!();
    println!("The EQUI/greedy ratio grows ~sqrt(dilution) — no constant speed");
    println!("fixes it in this model [15]. On standard identical machines the");
    println!("same algorithm is (4+eps)-speed O(1)-competitive for l2 — that");
    println!("contrast is exactly what makes the paper's Theorem 1 interesting.");
}

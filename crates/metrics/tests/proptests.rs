//! Property tests for metric invariants.

use proptest::prelude::*;
use tf_metrics::{flow_stats, jain_index, lk_norm, normalized_lk_norm, percentile};

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e4, 1..200)
}

proptest! {
    /// Jain index is always in (0, 1], and 1 exactly for constant vectors.
    #[test]
    fn jain_bounds(x in arb_sample()) {
        let j = jain_index(&x);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "{j}");
    }

    #[test]
    fn jain_constant_vectors(v in 0.01f64..100.0, n in 1usize..50) {
        let x = vec![v; n];
        prop_assert!((jain_index(&x) - 1.0).abs() < 1e-12);
    }

    /// Jain is scale-invariant.
    #[test]
    fn jain_scale_invariant(x in arb_sample(), c in 0.1f64..100.0) {
        let scaled: Vec<f64> = x.iter().map(|&v| v * c).collect();
        let a = jain_index(&x);
        let b = jain_index(&scaled);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Norm sandwich: max ≤ lk ≤ sum, and norms decrease in k.
    #[test]
    fn norm_sandwich(x in arb_sample()) {
        let linf = lk_norm(&x, f64::INFINITY);
        let l1 = lk_norm(&x, 1.0);
        for k in [1.0, 2.0, 3.0, 6.0] {
            let lk = lk_norm(&x, k);
            prop_assert!(lk <= l1 * (1.0 + 1e-9) + 1e-9);
            prop_assert!(lk >= linf * (1.0 - 1e-9) - 1e-9, "k={k}: {lk} < {linf}");
        }
    }

    /// lk norms are absolutely homogeneous: ||c·x|| = c·||x||.
    #[test]
    fn norm_homogeneous(x in arb_sample(), c in 0.1f64..10.0) {
        let scaled: Vec<f64> = x.iter().map(|&v| v * c).collect();
        for k in [1.0, 2.0, 4.0, f64::INFINITY] {
            let a = lk_norm(&scaled, k);
            let b = c * lk_norm(&x, k);
            prop_assert!((a - b).abs() <= 1e-6 * b.max(1.0), "k={k}: {a} vs {b}");
        }
    }

    /// Normalized norms are monotone in k (power-mean inequality).
    #[test]
    fn normalized_norm_monotone(x in arb_sample()) {
        let mut prev = 0.0;
        for k in [1.0, 2.0, 3.0, 5.0, 9.0] {
            let cur = normalized_lk_norm(&x, k);
            prop_assert!(cur >= prev - 1e-6 * cur.max(1.0), "k={k}: {cur} < {prev}");
            prev = cur;
        }
    }

    /// Percentiles are monotone in q and bracketed by min/max.
    #[test]
    fn percentile_monotone(x in arb_sample()) {
        let stats = flow_stats(&x);
        let mut prev = stats.min;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = percentile(&x, q);
            prop_assert!(p >= prev - 1e-9);
            prop_assert!(p >= stats.min - 1e-9 && p <= stats.max + 1e-9);
            prev = p;
        }
    }

    /// flow_stats internal consistency: mean within [min, max], std² ≈ var,
    /// total = mean·n.
    #[test]
    fn stats_consistency(x in arb_sample()) {
        let s = flow_stats(&x);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!((s.std_dev * s.std_dev - s.variance).abs() <= 1e-6 * s.variance.max(1.0));
        prop_assert!((s.total - s.mean * s.n as f64).abs() <= 1e-6 * s.total.max(1.0));
        prop_assert!(s.p50 <= s.p90 + 1e-9 && s.p90 <= s.p99 + 1e-9 && s.p99 <= s.max + 1e-9);
    }
}

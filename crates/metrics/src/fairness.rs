//! Instantaneous fairness measures.
//!
//! The paper's premise: RR is the canonical *instantaneously fair* policy
//! ("giving an equal share of the machine(s) to all jobs at all times",
//! which "coincides with maximizing the minimum fairness"). This module
//! quantifies that claim on recorded profiles so experiment E8 can show RR
//! at Jain index exactly 1 and priority policies well below it.

use serde::{Deserialize, Serialize};
use tf_simcore::Profile;

/// Jain's fairness index of an allocation vector:
/// `(Σ x)² / (n · Σ x²)`, in `(0, 1]`, equal to 1 iff all entries are
/// equal. An all-zero vector yields 1.0 (vacuously fair).
pub fn jain_index(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 1.0;
    }
    let sum: f64 = x.iter().sum();
    let sq: f64 = x.iter().map(|&v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (x.len() as f64 * sq)
}

/// One point of the fairness time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessPoint {
    /// Segment start time.
    pub t: f64,
    /// Duration the allocation was in force.
    pub duration: f64,
    /// Number of alive jobs.
    pub n_alive: usize,
    /// Jain index of the per-job rate vector.
    pub jain: f64,
    /// Minimum rate among alive jobs (max-min fairness looks at this).
    pub min_rate: f64,
}

/// The fairness trajectory of a whole schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessSeries {
    /// One point per profile segment.
    pub points: Vec<FairnessPoint>,
}

impl FairnessSeries {
    /// Duration-weighted average Jain index over segments with at least two
    /// alive jobs (a single job is trivially "fair"; including such
    /// segments would flatter unfair policies).
    pub fn mean_jain(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for p in &self.points {
            if p.n_alive >= 2 {
                num += p.jain * p.duration;
                den += p.duration;
            }
        }
        if den == 0.0 {
            1.0
        } else {
            num / den
        }
    }

    /// Worst (minimum) Jain index over contended segments.
    pub fn min_jain(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.n_alive >= 2)
            .map(|p| p.jain)
            .fold(1.0, f64::min)
    }

    /// Total time during which some alive job was completely starved
    /// (rate 0) while others ran.
    pub fn starvation_time(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.n_alive >= 2 && p.min_rate <= 1e-12)
            .map(|p| p.duration)
            .sum()
    }
}

/// Longest contiguous *service-denial* interval per job: the maximum
/// stretch of time during which the job was alive but received zero rate.
/// This is the quantitative form of "starving for service" from the
/// paper's introduction — a job making no progress at all, however long
/// its eventual flow turns out to be. Indexed by job id; jobs that never
/// appear get 0.
pub fn job_starvation(profile: &Profile, n_jobs: usize) -> Vec<f64> {
    let mut worst = vec![0.0f64; n_jobs];
    let mut streak = vec![0.0f64; n_jobs];
    for seg in profile.segments() {
        for &(id, rate) in seg.rates {
            let i = id as usize;
            if i >= n_jobs {
                continue;
            }
            if rate <= 1e-12 {
                streak[i] += seg.duration();
                worst[i] = worst[i].max(streak[i]);
            } else {
                streak[i] = 0.0;
            }
        }
    }
    worst
}

/// Compute the instantaneous fairness series of a recorded profile.
pub fn instantaneous_fairness(profile: &Profile) -> FairnessSeries {
    let points = profile
        .segments()
        .map(|seg| {
            let rates: Vec<f64> = seg.rates.iter().map(|&(_, r)| r).collect();
            FairnessPoint {
                t: seg.t0,
                duration: seg.duration(),
                n_alive: rates.len(),
                jain: jain_index(&rates),
                min_rate: rates.iter().fold(f64::INFINITY, |a, &r| a.min(r)),
            }
        })
        .collect();
    FairnessSeries { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_simcore::profile::Segment;

    #[test]
    fn jain_basics() {
        assert_eq!(jain_index(&[1.0, 1.0, 1.0]), 1.0);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        // n-way: one active of n → 1/n.
        let mut v = vec![0.0; 10];
        v[3] = 2.0;
        assert!((jain_index(&v) - 0.1).abs() < 1e-12);
    }

    fn seg(t0: f64, t1: f64, rates: &[(u32, f64)]) -> Segment {
        Segment {
            t0,
            t1,
            rates: rates.to_vec(),
        }
    }

    #[test]
    fn series_from_profile() {
        let p = Profile::from_segments(
            vec![
                seg(0.0, 1.0, &[(0, 0.5), (1, 0.5)]), // fair
                seg(1.0, 3.0, &[(0, 1.0), (1, 0.0)]), // starving job 1
                seg(3.0, 4.0, &[(1, 1.0)]),           // single job: skipped
            ],
            1,
            1.0,
        );
        let s = instantaneous_fairness(&p);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.points[0].jain, 1.0);
        assert!((s.points[1].jain - 0.5).abs() < 1e-12);
        // Weighted mean over contended time: (1·1 + 0.5·2)/3.
        assert!((s.mean_jain() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.min_jain() - 0.5).abs() < 1e-12);
        assert!((s.starvation_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rr_profile_is_perfectly_fair() {
        // Simulate RR inline (equal shares by construction).
        use tf_simcore::{simulate, AliveJob, MachineConfig, RateAllocator, SimOptions, Trace};
        struct Rr;
        impl RateAllocator for Rr {
            fn name(&self) -> &'static str {
                "RR"
            }
            fn allocate(
                &mut self,
                _: f64,
                alive: &[AliveJob],
                cfg: &MachineConfig,
                rates: &mut [f64],
            ) {
                rates.fill(cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0));
            }
        }
        let t = Trace::from_pairs([(0.0, 2.0), (0.5, 1.0), (1.0, 4.0)]).unwrap();
        let sched = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let series = instantaneous_fairness(sched.profile.as_ref().unwrap());
        assert_eq!(series.mean_jain(), 1.0);
        assert_eq!(series.min_jain(), 1.0);
        assert_eq!(series.starvation_time(), 0.0);
    }

    #[test]
    fn job_starvation_tracks_longest_zero_streak() {
        let p = Profile::from_segments(
            vec![
                seg(0.0, 1.0, &[(0, 1.0), (1, 0.0)]),
                seg(1.0, 3.0, &[(0, 1.0), (1, 0.0)]), // streak continues: 3
                seg(3.0, 4.0, &[(0, 0.0), (1, 1.0)]), // job1 breaks; job0 starves 1
                seg(4.0, 5.0, &[(1, 0.0)]),           // job1 starves again: 1
            ],
            1,
            1.0,
        );
        let s = job_starvation(&p, 2);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        // Out-of-range ids are ignored; absent jobs get 0.
        let s = job_starvation(&p, 3);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn empty_series_defaults() {
        let s = FairnessSeries { points: vec![] };
        assert_eq!(s.mean_jain(), 1.0);
        assert_eq!(s.starvation_time(), 0.0);
    }
}

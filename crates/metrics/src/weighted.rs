//! Weighted flow-time objectives.
//!
//! The paper's setting is unweighted, but its technique lineage is the
//! weighted-flow dual-fitting framework of Anand–Garg–Kumar \[1\], and
//! Section 1.2 remarks that potential-function/dual-fitting analyses
//! usually need a *weighted* RR. These helpers make the weighted
//! objectives measurable so experiment E17 can compare RR against its
//! weighted variant on weighted instances.

/// `Σ_j w_j · F_j^k` — the weighted k-th power sum.
pub fn weighted_flow_power_sum(flows: &[f64], weights: &[f64], k: f64) -> f64 {
    debug_assert_eq!(flows.len(), weights.len());
    flows
        .iter()
        .zip(weights)
        .map(|(&f, &w)| w * f.powf(k))
        .sum()
}

/// The weighted ℓk norm `(Σ_j w_j F_j^k)^{1/k}`; `k = ∞` gives
/// `max_j w_j^{?}`… weights do not compose with max, so for `k = ∞` this
/// returns the maximum flow among jobs with positive weight.
pub fn weighted_lk_norm(flows: &[f64], weights: &[f64], k: f64) -> f64 {
    if flows.is_empty() {
        return 0.0;
    }
    if k.is_infinite() {
        flows
            .iter()
            .zip(weights)
            .filter(|&(_, &w)| w > 0.0)
            .map(|(&f, _)| f)
            .fold(0.0, f64::max)
    } else {
        weighted_flow_power_sum(flows, weights, k).powf(1.0 / k)
    }
}

/// Weighted mean flow `Σ w_j F_j / Σ w_j` (0 for empty/zero weights).
pub fn weighted_mean_flow(flows: &[f64], weights: &[f64]) -> f64 {
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return 0.0;
    }
    weighted_flow_power_sum(flows, weights, 1.0) / wsum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_sums_and_norms() {
        let f = [3.0, 4.0];
        let w = [2.0, 1.0];
        assert_eq!(weighted_flow_power_sum(&f, &w, 1.0), 10.0);
        assert_eq!(weighted_flow_power_sum(&f, &w, 2.0), 2.0 * 9.0 + 16.0);
        assert!((weighted_lk_norm(&f, &w, 2.0) - (34.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let f = [1.0, 2.0, 5.0];
        let w = [1.0; 3];
        for k in [1.0, 2.0, 3.0] {
            assert!(
                (weighted_lk_norm(&f, &w, k) - crate::lk_norm(&f, k)).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn infinity_ignores_zero_weight_jobs() {
        let f = [10.0, 3.0];
        let w = [0.0, 1.0];
        assert_eq!(weighted_lk_norm(&f, &w, f64::INFINITY), 3.0);
    }

    #[test]
    fn weighted_mean() {
        let f = [2.0, 6.0];
        let w = [3.0, 1.0];
        assert_eq!(weighted_mean_flow(&f, &w), 3.0);
        assert_eq!(weighted_mean_flow(&f, &[0.0, 0.0]), 0.0);
        assert_eq!(weighted_mean_flow(&[], &[]), 0.0);
    }
}

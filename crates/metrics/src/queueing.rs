//! Closed-form queueing-theory reference values.
//!
//! RR on one machine *is* processor sharing, and PS/FCFS single-server
//! queues have textbook steady-state formulas. Comparing the simulator's
//! long-run averages against them is an independent, implementation-free
//! correctness check (experiment E18): any systematic engine bias would
//! show up as a deviation from these constants.
//!
//! Conventions: arrival rate `λ`, service requirement `S` with mean
//! `E[S]` and second moment `E[S²]`, utilization `ρ = λ·E[S] < 1`,
//! unit-speed server.

/// Mean sojourn (flow) time in an M/G/1 **processor-sharing** queue:
/// `E[T] = E[S] / (1 − ρ)` — famously insensitive to the service
/// distribution beyond its mean.
pub fn mg1_ps_mean_flow(lambda: f64, mean_s: f64) -> f64 {
    let rho = lambda * mean_s;
    assert!(
        (0.0..1.0).contains(&rho),
        "PS formula needs rho in [0,1), got {rho}"
    );
    mean_s / (1.0 - rho)
}

/// Conditional mean sojourn of a size-`x` job in M/G/1-PS:
/// `E[T(x)] = x / (1 − ρ)` (every job's expected slowdown is the same —
/// PS's proportional fairness).
pub fn mg1_ps_mean_flow_of_size(lambda: f64, mean_s: f64, x: f64) -> f64 {
    let rho = lambda * mean_s;
    assert!((0.0..1.0).contains(&rho));
    x / (1.0 - rho)
}

/// Mean sojourn in an M/G/1 **FCFS** queue (Pollaczek–Khinchine):
/// `E[T] = E[S] + λ·E[S²] / (2(1 − ρ))`.
pub fn mg1_fcfs_mean_flow(lambda: f64, mean_s: f64, second_moment_s: f64) -> f64 {
    let rho = lambda * mean_s;
    assert!(
        (0.0..1.0).contains(&rho),
        "FCFS formula needs rho in [0,1), got {rho}"
    );
    mean_s + lambda * second_moment_s / (2.0 * (1.0 - rho))
}

/// Mean sojourn in an M/M/1 queue (exponential sizes, any
/// work-conserving non-size-based discipline — FCFS, PS, LCFS all agree):
/// `E[T] = 1 / (μ − λ)` with `μ = 1/E[S]`.
pub fn mm1_mean_flow(lambda: f64, mean_s: f64) -> f64 {
    let mu = 1.0 / mean_s;
    assert!(lambda < mu, "unstable: lambda {lambda} >= mu {mu}");
    1.0 / (mu - lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_agree_where_they_must() {
        // Exponential S with mean 2: E[S²] = 2·mean² = 8.
        let (lambda, mean) = (0.3, 2.0);
        let mm1 = mm1_mean_flow(lambda, mean);
        let ps = mg1_ps_mean_flow(lambda, mean);
        let fcfs = mg1_fcfs_mean_flow(lambda, mean, 2.0 * mean * mean);
        // For M/M/1, PS and FCFS means coincide with 1/(mu-lambda).
        assert!((mm1 - ps).abs() < 1e-12);
        assert!((mm1 - fcfs).abs() < 1e-12);
        assert!((mm1 - 5.0).abs() < 1e-12); // 1/(0.5-0.3)
    }

    #[test]
    fn deterministic_sizes_favor_fcfs() {
        // Deterministic S: E[S²] = mean² (half the exponential's) → FCFS
        // beats PS (which is distribution-insensitive).
        let (lambda, mean) = (0.4, 1.0);
        let fcfs = mg1_fcfs_mean_flow(lambda, mean, mean * mean);
        let ps = mg1_ps_mean_flow(lambda, mean);
        assert!(fcfs < ps);
    }

    #[test]
    fn conditional_slowdown_is_uniform() {
        let (lambda, mean) = (0.25, 2.0);
        let s1 = mg1_ps_mean_flow_of_size(lambda, mean, 1.0);
        let s4 = mg1_ps_mean_flow_of_size(lambda, mean, 4.0);
        assert!((s4 / s1 - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overload() {
        mm1_mean_flow(1.0, 2.0);
    }
}

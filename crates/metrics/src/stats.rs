//! Distributional statistics of flow times.

use serde::{Deserialize, Serialize};

/// Summary statistics of a flow-time (or any non-negative) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Sample size.
    pub n: usize,
    /// Sum of values (total flow when fed flow times).
    pub total: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (the quantity the paper's intro quotes the OS
    /// textbook about minimizing).
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Linear-interpolated percentile of a sample (`q ∈ [0, 1]`). Returns 0
/// for an empty sample.
///
/// NaN values are **ignored** (a NaN flow is a sentinel for "never
/// completed", not an order statistic); an all-NaN sample behaves as
/// empty. ±∞ participates normally. An earlier revision sorted with
/// `partial_cmp().unwrap()` and panicked on the first NaN.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    if lo == hi {
        // Exact order statistic: skip interpolation, whose `inf · 0`
        // would turn an infinite sample value into NaN.
        return sorted[lo];
    }
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compute [`FlowStats`] for a sample. Returns an all-zero struct for an
/// empty sample.
///
/// NaN values are **ignored** and do not count toward `n` (see
/// [`percentile`] for the rationale); an all-NaN sample behaves as empty.
/// An earlier revision panicked on the first NaN via
/// `partial_cmp().unwrap()` in the percentile sort.
pub fn flow_stats(values: &[f64]) -> FlowStats {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    let n = sorted.len();
    if n == 0 {
        return FlowStats {
            n: 0,
            total: 0.0,
            mean: 0.0,
            variance: 0.0,
            std_dev: 0.0,
            min: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    let total: f64 = sorted.iter().sum();
    let mean = total / n as f64;
    let variance = sorted.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    sorted.sort_by(f64::total_cmp);
    FlowStats {
        n,
        total,
        mean,
        variance,
        std_dev: variance.sqrt(),
        min: sorted[0],
        p50: percentile_sorted(&sorted, 0.5),
        p90: percentile_sorted(&sorted, 0.9),
        p99: percentile_sorted(&sorted, 0.99),
        max: sorted[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = flow_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.total, 10.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Out-of-range q clamps.
        assert_eq!(percentile(&[1.0, 2.0], 2.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -1.0), 1.0);
    }

    #[test]
    fn unordered_input_is_fine() {
        let s = flow_stats(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn empty_sample() {
        let s = flow_stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let s = flow_stats(&[4.0; 10]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.p99, 4.0);
    }

    /// Regression: both of these panicked before the `total_cmp` fix —
    /// `partial_cmp().unwrap()` on the first NaN comparison. NaN samples
    /// are now ignored and do not count toward `n`.
    #[test]
    fn nan_samples_are_ignored_not_panics() {
        let s = flow_stats(&[3.0, f64::NAN, 1.0, f64::NAN, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.total, 6.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(percentile(&[5.0, f64::NAN, 1.0], 0.5), 3.0);
    }

    #[test]
    fn all_nan_behaves_as_empty() {
        let s = flow_stats(&[f64::NAN, f64::NAN]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(percentile(&[f64::NAN], 0.9), 0.0);
    }

    #[test]
    fn infinities_participate_in_order_statistics() {
        let s = flow_stats(&[1.0, f64::INFINITY, 2.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Finite values mixed with NaN and +∞ in arbitrary positions.
    fn arb_mixed() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(
            (0.0f64..1e6, 0u8..6).prop_map(|(x, tag)| match tag {
                4 => f64::NAN,
                5 => f64::INFINITY,
                _ => x,
            }),
            0..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Over mixed samples: no panic, and the result equals the stats
        /// of the NaN-filtered sample.
        #[test]
        fn mixed_samples_match_filtered(v in arb_mixed(), q in 0.0f64..1.0) {
            let filtered: Vec<f64> = v.iter().copied().filter(|x| !x.is_nan()).collect();
            let s = flow_stats(&v);
            let f = flow_stats(&filtered);
            prop_assert_eq!(s.n, filtered.len());
            // Bitwise equality, field by field: same retained values, same
            // arithmetic (NaN-valued moments from ∞ samples still match).
            for (a, b) in [
                (s.total, f.total),
                (s.mean, f.mean),
                (s.variance, f.variance),
                (s.std_dev, f.std_dev),
                (s.min, f.min),
                (s.p50, f.p50),
                (s.p90, f.p90),
                (s.p99, f.p99),
                (s.max, f.max),
            ] {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(
                percentile(&v, q).to_bits(),
                percentile(&filtered, q).to_bits()
            );
        }

        /// Percentiles are monotone in q and bracketed by min/max on
        /// mixed samples with at least one non-NaN value.
        #[test]
        fn percentile_monotone_on_mixed(v in arb_mixed()) {
            prop_assume!(v.iter().any(|x| !x.is_nan()));
            let s = flow_stats(&v);
            let mut prev = f64::NEG_INFINITY;
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let p = percentile(&v, q);
                prop_assert!(!p.is_nan());
                prop_assert!(p >= prev);
                prev = p;
            }
            prop_assert_eq!(percentile(&v, 0.0), s.min);
            prop_assert_eq!(percentile(&v, 1.0), s.max);
        }
    }
}

//! Distributional statistics of flow times.

use serde::{Deserialize, Serialize};

/// Summary statistics of a flow-time (or any non-negative) sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Sample size.
    pub n: usize,
    /// Sum of values (total flow when fed flow times).
    pub total: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (the quantity the paper's intro quotes the OS
    /// textbook about minimizing).
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Linear-interpolated percentile of a sample (`q ∈ [0, 1]`). Returns 0
/// for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, q)
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compute [`FlowStats`] for a sample. Returns an all-zero struct for an
/// empty sample.
pub fn flow_stats(values: &[f64]) -> FlowStats {
    let n = values.len();
    if n == 0 {
        return FlowStats {
            n: 0,
            total: 0.0,
            mean: 0.0,
            variance: 0.0,
            std_dev: 0.0,
            min: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    let total: f64 = values.iter().sum();
    let mean = total / n as f64;
    let variance = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    FlowStats {
        n,
        total,
        mean,
        variance,
        std_dev: variance.sqrt(),
        min: sorted[0],
        p50: percentile_sorted(&sorted, 0.5),
        p90: percentile_sorted(&sorted, 0.9),
        p99: percentile_sorted(&sorted, 0.99),
        max: sorted[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = flow_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.total, 10.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Out-of-range q clamps.
        assert_eq!(percentile(&[1.0, 2.0], 2.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -1.0), 1.0);
    }

    #[test]
    fn unordered_input_is_fine() {
        let s = flow_stats(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn empty_sample() {
        let s = flow_stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let s = flow_stats(&[4.0; 10]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.p99, 4.0);
    }
}

#![deny(missing_docs)]

//! # tf-metrics — flow-time objectives and fairness measures
//!
//! The quantities the paper reasons about, computable from schedules:
//!
//! * [`lk_norm`] / [`flow_power_sum`] — the ℓk-norm of flow time
//!   `(Σ_j F_j^k)^{1/k}` (k = ∞ gives max flow), the paper's objective;
//! * [`flow_stats`] — mean / variance / percentiles / max of flow times,
//!   quantifying the Silberschatz–Galvin–Gagne "predictable response time"
//!   criterion quoted in the introduction;
//! * [`jain_index`] and [`fairness`] — *instantaneous* fairness: how evenly
//!   a schedule splits the machines among alive jobs at each instant (RR is
//!   1.0 by construction);
//! * [`stretch`] — slowdown `F_j / p_j` statistics.
//! * [`streaming`] — mergeable one-pass accumulators
//!   ([`StreamingFlowStats`], [`StreamingNorm`], [`TDigest`]) computing
//!   the same objectives without materialising the flow vector, for the
//!   bounded-memory streaming engine.

pub mod fairness;
pub mod norms;
pub mod occupancy;
pub mod queueing;
pub mod stats;
pub mod streaming;
pub mod stretch;
pub mod weighted;

pub use fairness::{instantaneous_fairness, jain_index, job_starvation, FairnessSeries};
pub use norms::{flow_power_sum, lk_norm, normalized_lk_norm};
pub use occupancy::{alive_series, occupancy_stats, OccupancyStats};
pub use queueing::{mg1_fcfs_mean_flow, mg1_ps_mean_flow, mg1_ps_mean_flow_of_size, mm1_mean_flow};
pub use stats::{flow_stats, percentile, FlowStats};
pub use streaming::{StreamingFlowStats, StreamingMoments, StreamingNorm, TDigest};
pub use stretch::{stretch_stats, StretchStats};
pub use weighted::{weighted_flow_power_sum, weighted_lk_norm, weighted_mean_flow};

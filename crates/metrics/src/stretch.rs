//! Stretch (slowdown) statistics: flow time relative to job size.

use serde::{Deserialize, Serialize};
use tf_simcore::{Schedule, Trace};

/// Stretch summary: `stretch_j = F_j / p_j` — how much worse a job did than
/// having a dedicated unit-speed machine. Big stretch on small jobs is the
/// signature of unfair head-of-line blocking; big stretch on large jobs is
/// the signature of starvation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StretchStats {
    /// Mean stretch.
    pub mean: f64,
    /// Maximum stretch.
    pub max: f64,
    /// Id of the job attaining the max.
    pub argmax: u32,
    /// Mean stretch among the smallest quartile of jobs (by size).
    pub mean_small_quartile: f64,
    /// Mean stretch among the largest quartile of jobs (by size).
    pub mean_large_quartile: f64,
}

/// Compute stretch statistics for a schedule. Returns `None` on an empty
/// instance.
pub fn stretch_stats(trace: &Trace, sched: &Schedule) -> Option<StretchStats> {
    let n = trace.len();
    if n == 0 {
        return None;
    }
    let stretches: Vec<f64> = trace
        .jobs()
        .iter()
        .map(|j| sched.flow[j.id as usize] / j.size)
        .collect();
    let mean = stretches.iter().sum::<f64>() / n as f64;
    let (argmax, &max) = stretches
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;

    let mut by_size: Vec<u32> = (0..n as u32).collect();
    by_size.sort_by(|&a, &b| trace.job(a).size.partial_cmp(&trace.job(b).size).unwrap());
    let q = (n / 4).max(1);
    let small: f64 = by_size[..q]
        .iter()
        .map(|&i| stretches[i as usize])
        .sum::<f64>()
        / q as f64;
    let large: f64 = by_size[n - q..]
        .iter()
        .map(|&i| stretches[i as usize])
        .sum::<f64>()
        / q as f64;

    Some(StretchStats {
        mean,
        max,
        argmax: argmax as u32,
        mean_small_quartile: small,
        mean_large_quartile: large,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_simcore::MachineConfig;

    fn sched(trace: &Trace, completions: &[f64]) -> Schedule {
        Schedule {
            policy: "test".into(),
            cfg: MachineConfig::new(1),
            completion: completions.to_vec(),
            flow: trace
                .jobs()
                .iter()
                .map(|j| completions[j.id as usize] - j.arrival)
                .collect(),
            profile: None,
            events: 0,
            stats: Default::default(),
        }
    }

    #[test]
    fn stretch_of_dedicated_machine_is_one() {
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = sched(&t, &[2.0]);
        let st = stretch_stats(&t, &s).unwrap();
        assert_eq!(st.mean, 1.0);
        assert_eq!(st.max, 1.0);
    }

    #[test]
    fn head_of_line_blocking_shows_on_small_jobs() {
        // Big job (size 10) served first, tiny job (size 0.1) waits.
        let t = Trace::from_pairs([(0.0, 10.0), (0.0, 0.1)]).unwrap();
        let s = sched(&t, &[10.0, 10.1]);
        let st = stretch_stats(&t, &s).unwrap();
        assert!(st.max > 100.0);
        assert_eq!(st.argmax, 1);
        assert!(st.mean_small_quartile > st.mean_large_quartile);
    }

    #[test]
    fn starvation_shows_on_large_jobs() {
        // Tiny jobs served immediately, big job starved.
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 10.0)]).unwrap();
        let s = sched(&t, &[1.0, 2.0, 3.0, 130.0]);
        let st = stretch_stats(&t, &s).unwrap();
        assert_eq!(st.argmax, 3);
        assert!(st.mean_large_quartile > st.mean_small_quartile);
    }

    #[test]
    fn empty_instance() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = sched(&t, &[]);
        assert!(stretch_stats(&t, &s).is_none());
    }
}

//! Mergeable streaming accumulators: flow-time statistics without the
//! completion vector.
//!
//! The materialised path ([`crate::flow_stats`], [`crate::lk_norm`])
//! needs every flow time in memory; at 10⁷+ jobs that vector is the
//! dominant allocation. These accumulators consume completions one at a
//! time in O(1)/O(compression) state and **merge**, so per-chunk partials
//! can be combined across threads or checkpoints:
//!
//! * [`StreamingMoments`] — count/total/min/max plus Welford mean and
//!   M2, merged with the Chan et al. parallel update. Exactly the moment
//!   set of [`crate::FlowStats`].
//! * [`StreamingNorm`] — the running ℓk power sum in the same
//!   max-factored form as [`crate::lk_norm`] (`Σ(v/max)^k` with the sum
//!   rescaled whenever a new maximum appears), so it stays finite
//!   whenever the maximum is.
//! * [`TDigest`] — a small t-digest-style quantile sketch (uniform
//!   weight-capped centroids) for p50/p90/p99 with bounded rank error.
//! * [`StreamingFlowStats`] — the three combined; `finish()` yields a
//!   [`crate::FlowStats`] whose moment fields agree with the
//!   materialised computation to floating-point accumulation order, and
//!   whose percentiles carry the digest's rank-error bound.
//!
//! NaN semantics match the (post-fix) materialised path: NaN samples are
//! ignored and do not count toward `n`.

use crate::stats::FlowStats;
use serde::{Deserialize, Serialize};

/// Running count/total/min/max and Welford mean/variance of a sample.
/// Push is O(1); merge is the Chan et al. pairwise combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    n: u64,
    total: f64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        StreamingMoments {
            n: 0,
            total: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one sample (NaN is ignored).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        self.total += v;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another accumulator into this one (Chan et al. parallel
    /// variance update); order-insensitive up to floating-point rounding.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples absorbed (NaN excluded).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (÷n, matching [`crate::flow_stats`]; 0 when
    /// empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (0 when empty, matching [`crate::flow_stats`]).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty, matching [`crate::flow_stats`]).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Running ℓk norm in max-factored form: tracks `max` and
/// `Σ (v_i / max)^k`, rescaling the sum by `(old_max/new_max)^k` whenever
/// a new maximum arrives. Every term is ≤ 1, so the sum never overflows
/// — the streaming counterpart of [`crate::lk_norm`]'s overflow fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingNorm {
    k: f64,
    n: u64,
    max: f64,
    /// `Σ (v_i / max)^k` over all pushed values (0 while `max == 0`).
    scaled_sum: f64,
}

impl StreamingNorm {
    /// An empty accumulator for the ℓk norm (`k = ∞` tracks the max).
    pub fn new(k: f64) -> Self {
        StreamingNorm {
            k,
            n: 0,
            max: 0.0,
            scaled_sum: 0.0,
        }
    }

    /// The exponent this accumulator was built for.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Samples absorbed (NaN excluded).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Absorb one (non-negative) sample; NaN is ignored.
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.n += 1;
        if self.k.is_infinite() {
            self.max = self.max.max(v);
            return;
        }
        if v > self.max {
            if self.max > 0.0 {
                self.scaled_sum *= (self.max / v).powf(self.k);
            }
            self.max = v;
            self.scaled_sum += 1.0; // (v/v)^k
        } else if self.max > 0.0 {
            self.scaled_sum += (v / self.max).powf(self.k);
        }
        // v ≤ max == 0 contributes 0 to the power sum.
    }

    /// Fold another accumulator (same `k`) into this one.
    ///
    /// # Panics
    /// If the exponents differ.
    pub fn merge(&mut self, other: &StreamingNorm) {
        assert_eq!(
            self.k.to_bits(),
            other.k.to_bits(),
            "cannot merge ℓ{} into ℓ{}",
            other.k,
            self.k
        );
        self.n += other.n;
        if self.k.is_infinite() || other.max <= 0.0 {
            self.max = self.max.max(other.max);
            return;
        }
        if other.max > self.max {
            if self.max > 0.0 {
                self.scaled_sum *= (self.max / other.max).powf(self.k);
            }
            self.max = other.max;
            self.scaled_sum += other.scaled_sum;
        } else {
            self.scaled_sum += other.scaled_sum * (other.max / self.max).powf(self.k);
        }
    }

    /// The ℓk norm of everything pushed so far:
    /// `max · (Σ(v/max)^k)^{1/k}` (the max itself for `k = ∞`).
    pub fn value(&self) -> f64 {
        if self.k.is_infinite() || self.max <= 0.0 {
            return self.max;
        }
        self.max * self.scaled_sum.powf(1.0 / self.k)
    }

    /// The normalized ℓk norm (÷ `n^{1/k}` inside the root), the
    /// streaming counterpart of [`crate::normalized_lk_norm`].
    pub fn normalized_value(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        if self.k.is_infinite() || self.max <= 0.0 {
            return self.max;
        }
        self.max * (self.scaled_sum / self.n as f64).powf(1.0 / self.k)
    }
}

/// A t-digest-style quantile sketch: centroids `(mean, weight)` kept
/// sorted, each capped at `⌈n / compression⌉` weight (uniform scale
/// function), with new values buffered and folded in batches. Rank error
/// for mid quantiles is O(n / compression); tails are exact-ish because
/// min/max are tracked separately by [`StreamingFlowStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TDigest {
    compression: usize,
    /// Sorted by mean.
    centroids: Vec<(f64, f64)>,
    buffer: Vec<f64>,
    count: u64,
}

impl TDigest {
    /// A sketch with the given compression (≥ 8; number of retained
    /// centroids is ~compression, memory O(compression)).
    pub fn new(compression: usize) -> Self {
        let compression = compression.max(8);
        TDigest {
            compression,
            centroids: Vec::with_capacity(compression + 1),
            buffer: Vec::with_capacity(4 * compression),
            count: 0,
        }
    }

    /// Samples absorbed (NaN excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorb one sample (NaN ignored); amortized O(log c) per push.
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.buffer.push(v);
        if self.buffer.len() >= 4 * self.compression {
            self.compress();
        }
    }

    /// Fold another sketch into this one.
    pub fn merge(&mut self, other: &TDigest) {
        self.count += other.count;
        self.buffer.extend_from_slice(&other.buffer);
        // Re-absorb the other's centroids as weighted points.
        let mut merged: Vec<(f64, f64)> =
            Vec::with_capacity(self.centroids.len() + other.centroids.len() + self.buffer.len());
        merged.append(&mut self.centroids);
        merged.extend(other.centroids.iter().copied());
        merged.extend(self.buffer.drain(..).map(|v| (v, 1.0)));
        self.fold(merged);
    }

    /// Flush the buffer into the centroid set.
    fn compress(&mut self) {
        let mut merged: Vec<(f64, f64)> =
            Vec::with_capacity(self.centroids.len() + self.buffer.len());
        merged.append(&mut self.centroids);
        merged.extend(self.buffer.drain(..).map(|v| (v, 1.0)));
        self.fold(merged);
    }

    /// Rebuild the centroid list from weighted points: sort by mean, then
    /// greedily merge neighbours while staying under the per-centroid
    /// weight cap.
    fn fold(&mut self, mut points: Vec<(f64, f64)>) {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = points.iter().map(|&(_, w)| w).sum();
        let cap = (total / self.compression as f64).ceil().max(1.0);
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.compression + 1);
        for (m, w) in points {
            match out.last_mut() {
                Some((lm, lw)) if *lw + w <= cap => {
                    let nw = *lw + w;
                    *lm += (m - *lm) * w / nw;
                    *lw = nw;
                }
                _ => out.push((m, w)),
            }
        }
        self.centroids = out;
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) by midpoint
    /// interpolation across the cumulative centroid weights. Returns 0
    /// for an empty sketch.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if !self.buffer.is_empty() {
            self.compress();
        }
        if self.centroids.is_empty() {
            return 0.0;
        }
        let total: f64 = self.centroids.iter().map(|&(_, w)| w).sum();
        let target = q.clamp(0.0, 1.0) * total;
        // Cumulative weight up to each centroid's midpoint.
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.centroids[0].0;
        for (i, &(m, w)) in self.centroids.iter().enumerate() {
            let mid = cum + w / 2.0;
            if target < mid {
                if i == 0 {
                    return m;
                }
                let frac = (target - prev_mid) / (mid - prev_mid);
                return prev_mean + frac * (m - prev_mean);
            }
            cum += w;
            prev_mid = mid;
            prev_mean = m;
        }
        self.centroids.last().expect("non-empty").0
    }
}

/// All of [`crate::FlowStats`], streaming: Welford moments plus a
/// quantile sketch, consuming one flow time per completed job. Mergeable
/// across chunks; the merge is traced as a `metrics.merge` span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingFlowStats {
    /// Moment accumulator (count, total, mean, variance, min, max).
    pub moments: StreamingMoments,
    /// Quantile sketch for p50/p90/p99.
    pub digest: TDigest,
}

impl Default for StreamingFlowStats {
    fn default() -> Self {
        Self::new(128)
    }
}

impl StreamingFlowStats {
    /// An empty accumulator with the given digest compression.
    pub fn new(compression: usize) -> Self {
        StreamingFlowStats {
            moments: StreamingMoments::new(),
            digest: TDigest::new(compression),
        }
    }

    /// Absorb one flow time (NaN ignored, matching
    /// [`crate::flow_stats`]).
    pub fn push(&mut self, flow: f64) {
        self.moments.push(flow);
        self.digest.push(flow);
    }

    /// Samples absorbed.
    pub fn n(&self) -> u64 {
        self.moments.n()
    }

    /// Fold another accumulator into this one. Emits a `metrics.merge`
    /// tf-obs span when tracing is enabled.
    pub fn merge(&mut self, other: &StreamingFlowStats) {
        let mut span = tf_obs::span!("metrics", "merge");
        if tf_obs::enabled() {
            span.arg("n_left", self.n() as f64);
            span.arg("n_right", other.n() as f64);
        }
        self.moments.merge(&other.moments);
        self.digest.merge(&other.digest);
    }

    /// The summary so far. Moment fields (`n`, `total`, `mean`,
    /// `variance`, `std_dev`, `min`, `max`) are exact up to accumulation
    /// order; `p50`/`p90`/`p99` carry the digest's rank-error bound.
    pub fn finish(&mut self) -> FlowStats {
        FlowStats {
            n: self.moments.n() as usize,
            total: self.moments.total(),
            mean: self.moments.mean(),
            variance: self.moments.variance(),
            std_dev: self.moments.std_dev(),
            min: self.moments.min(),
            p50: self.digest.quantile(0.5),
            p90: self.digest.quantile(0.9),
            p99: self.digest.quantile(0.99),
            max: self.moments.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{lk_norm, normalized_lk_norm};
    use crate::stats::flow_stats;

    fn pseudo_sample(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic LCG-ish sample mixing magnitudes.
        let mut x = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                (u * 6.0).exp() // log-uniform over ~[1, 400]
            })
            .collect()
    }

    #[test]
    fn moments_match_flow_stats() {
        let v = pseudo_sample(10_000, 7);
        let mut acc = StreamingMoments::new();
        for &x in &v {
            acc.push(x);
        }
        let exact = flow_stats(&v);
        assert_eq!(acc.n() as usize, exact.n);
        assert!((acc.total() - exact.total).abs() / exact.total < 1e-12);
        assert!((acc.mean() - exact.mean).abs() / exact.mean < 1e-12);
        assert!((acc.variance() - exact.variance).abs() / exact.variance < 1e-9);
        assert_eq!(acc.min(), exact.min);
        assert_eq!(acc.max(), exact.max);
    }

    #[test]
    fn moments_merge_equals_single_pass() {
        let v = pseudo_sample(5_000, 3);
        let (a, b) = v.split_at(1_700);
        let mut left = StreamingMoments::new();
        let mut right = StreamingMoments::new();
        let mut whole = StreamingMoments::new();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        for &x in &v {
            whole.push(x);
        }
        left.merge(&right);
        assert_eq!(left.n(), whole.n());
        assert!((left.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() / whole.variance() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());

        // Merging into an empty accumulator is the identity.
        let mut empty = StreamingMoments::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let before = whole;
        whole.merge(&StreamingMoments::new());
        assert_eq!(whole, before);
    }

    #[test]
    fn norm_matches_lk_norm_including_huge_values() {
        for k in [1.0, 2.0, 3.0, 6.0] {
            let mut v = pseudo_sample(2_000, 11);
            v.push(1e60); // the overflow regime of the naive evaluation
            let mut acc = StreamingNorm::new(k);
            for &x in &v {
                acc.push(x);
            }
            let exact = lk_norm(&v, k);
            assert!(acc.value().is_finite());
            assert!(
                (acc.value() - exact).abs() / exact < 1e-9,
                "k={k}: {} vs {exact}",
                acc.value()
            );
            let nexact = normalized_lk_norm(&v, k);
            assert!((acc.normalized_value() - nexact).abs() / nexact < 1e-9);
        }
        // k = ∞ tracks the max.
        let mut acc = StreamingNorm::new(f64::INFINITY);
        for x in [1.0, 5.0, 2.0] {
            acc.push(x);
        }
        assert_eq!(acc.value(), 5.0);
        assert_eq!(acc.normalized_value(), 5.0);
    }

    #[test]
    fn norm_merge_equals_single_pass() {
        let v = pseudo_sample(3_000, 19);
        let (a, b) = v.split_at(900);
        for k in [2.0, 4.0] {
            let mut left = StreamingNorm::new(k);
            let mut right = StreamingNorm::new(k);
            let mut whole = StreamingNorm::new(k);
            for &x in a {
                left.push(x);
            }
            for &x in b {
                right.push(x);
            }
            for &x in &v {
                whole.push(x);
            }
            left.merge(&right);
            assert_eq!(left.n(), whole.n());
            assert!(
                (left.value() - whole.value()).abs() / whole.value() < 1e-9,
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn norm_merge_rejects_mismatched_k() {
        let mut a = StreamingNorm::new(2.0);
        a.merge(&StreamingNorm::new(3.0));
    }

    #[test]
    fn norm_handles_zeros_and_empty() {
        let mut acc = StreamingNorm::new(2.0);
        assert_eq!(acc.value(), 0.0);
        assert_eq!(acc.normalized_value(), 0.0);
        acc.push(0.0);
        acc.push(0.0);
        assert_eq!(acc.value(), 0.0);
        acc.push(3.0);
        acc.push(4.0);
        assert!((acc.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn digest_quantiles_have_bounded_rank_error() {
        let n = 50_000;
        let v = pseudo_sample(n, 23);
        let mut d = TDigest::new(128);
        for &x in &v {
            d.push(x);
        }
        let mut sorted = v.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let est = d.quantile(q);
            // Rank of the estimate in the true sample.
            let rank = sorted.partition_point(|&x| x < est) as f64 / n as f64;
            assert!(
                (rank - q).abs() < 0.02,
                "q={q}: estimate {est} has rank {rank}"
            );
        }
    }

    #[test]
    fn digest_merge_preserves_count_and_accuracy() {
        let v = pseudo_sample(20_000, 31);
        let (a, b) = v.split_at(8_000);
        let mut da = TDigest::new(128);
        let mut db = TDigest::new(128);
        for &x in a {
            da.push(x);
        }
        for &x in b {
            db.push(x);
        }
        da.merge(&db);
        assert_eq!(da.count(), v.len() as u64);
        let mut sorted = v.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9] {
            let est = da.quantile(q);
            let rank = sorted.partition_point(|&x| x < est) as f64 / v.len() as f64;
            assert!((rank - q).abs() < 0.03, "q={q}: rank {rank}");
        }
    }

    #[test]
    fn digest_memory_is_bounded() {
        let mut d = TDigest::new(64);
        for i in 0..100_000 {
            d.push((i % 977) as f64);
        }
        assert!(d.centroids.len() <= 2 * 64, "{}", d.centroids.len());
        assert!(d.buffer.len() < 4 * 64);
    }

    #[test]
    fn digest_small_samples_are_near_exact() {
        let mut d = TDigest::new(128);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            d.push(x);
        }
        assert_eq!(d.count(), 5);
        let p50 = d.quantile(0.5);
        assert!((2.0..=4.0).contains(&p50), "{p50}");
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 5.0);
        let mut empty = TDigest::new(64);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn flow_stats_accumulator_matches_materialised() {
        let v = pseudo_sample(30_000, 41);
        let mut acc = StreamingFlowStats::new(256);
        for &x in &v {
            acc.push(x);
        }
        let got = acc.finish();
        let exact = flow_stats(&v);
        assert_eq!(got.n, exact.n);
        assert!((got.mean - exact.mean).abs() / exact.mean < 1e-12);
        assert!((got.variance - exact.variance).abs() / exact.variance < 1e-9);
        assert_eq!(got.min, exact.min);
        assert_eq!(got.max, exact.max);
        for (est, truth) in [
            (got.p50, exact.p50),
            (got.p90, exact.p90),
            (got.p99, exact.p99),
        ] {
            assert!(
                (est - truth).abs() / truth < 0.05,
                "estimate {est} vs {truth}"
            );
        }
    }

    #[test]
    fn nan_is_ignored_everywhere() {
        let mut acc = StreamingFlowStats::new(64);
        acc.push(1.0);
        acc.push(f64::NAN);
        acc.push(3.0);
        assert_eq!(acc.n(), 2);
        let s = acc.finish();
        assert_eq!(s.n, 2);
        assert_eq!(s.total, 4.0);
        let mut norm = StreamingNorm::new(2.0);
        norm.push(f64::NAN);
        assert_eq!(norm.n(), 0);
        assert_eq!(norm.value(), 0.0);
    }

    #[test]
    fn serde_roundtrip_for_checkpointing() {
        let mut acc = StreamingFlowStats::new(64);
        for &x in &pseudo_sample(1_000, 5) {
            acc.push(x);
        }
        let json = serde_json::to_string(&acc).unwrap();
        let mut back: StreamingFlowStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, acc);
        assert_eq!(back.finish(), acc.finish());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::norms::lk_norm;
    use crate::stats::{flow_stats, percentile};
    use proptest::prelude::*;

    fn arb_values() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec((-6.0f64..60.0).prop_map(|e| 10f64.powf(e)), 1..200)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streaming moments agree with the materialised `flow_stats` to
        /// 1e-9 relative error over ~66 orders of magnitude, under any
        /// split-and-merge.
        #[test]
        fn moments_agree_with_materialised(v in arb_values(), split in 0usize..200) {
            let split = split.min(v.len());
            let exact = flow_stats(&v);
            let mut a = StreamingMoments::new();
            let mut b = StreamingMoments::new();
            for &x in &v[..split] { a.push(x); }
            for &x in &v[split..] { b.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.n() as usize, exact.n);
            prop_assert!((a.total() - exact.total).abs() <= 1e-9 * exact.total.abs());
            prop_assert!((a.mean() - exact.mean).abs() <= 1e-9 * exact.mean.abs());
            // Welford vs two-pass variance: both stable; allow scale-aware
            // slack since catastrophic ranges make the variance itself huge.
            let scale = exact.variance.abs().max(exact.mean * exact.mean);
            prop_assert!((a.variance() - exact.variance).abs() <= 1e-6 * scale.max(1e-300));
            prop_assert_eq!(a.min(), exact.min);
            prop_assert_eq!(a.max(), exact.max);
        }

        /// Streaming ℓk norm agrees with the max-factored materialised
        /// norm to 1e-9 relative error, under any split-and-merge.
        #[test]
        fn norm_agrees_with_materialised(
            v in arb_values(), split in 0usize..200, k in 1u32..10) {
            let split = split.min(v.len());
            let kf = f64::from(k);
            let exact = lk_norm(&v, kf);
            let mut a = StreamingNorm::new(kf);
            let mut b = StreamingNorm::new(kf);
            for &x in &v[..split] { a.push(x); }
            for &x in &v[split..] { b.push(x); }
            a.merge(&b);
            prop_assert!(a.value().is_finite());
            prop_assert!((a.value() - exact).abs() <= 1e-9 * exact,
                         "k={k}: {} vs {}", a.value(), exact);
        }

        /// Digest quantile estimates respect the rank-error bound of the
        /// uniform scale function: |rank(est) − q| ≤ max(3, 2n/c)/n.
        #[test]
        fn digest_rank_error_bound(v in arb_values(), q in 0.0f64..1.0) {
            let n = v.len();
            let mut d = TDigest::new(64);
            for &x in &v { d.push(x); }
            let est = d.quantile(q);
            let mut sorted = v.clone();
            sorted.sort_by(f64::total_cmp);
            let below = sorted.partition_point(|&x| x < est);
            let at_or_below = sorted.partition_point(|&x| x <= est);
            let target = q * n as f64;
            let slack = (3.0f64).max(2.0 * n as f64 / 64.0);
            // target must lie within slack of the estimate's rank range.
            prop_assert!(
                target >= below as f64 - slack && target <= at_or_below as f64 + slack,
                "q={q}: est {est} has rank range [{below}, {at_or_below}], target {target}"
            );
            // The estimate stays inside the sample range.
            prop_assert!(est >= percentile(&v, 0.0) && est <= percentile(&v, 1.0));
        }
    }
}

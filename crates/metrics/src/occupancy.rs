//! Occupancy analytics over recorded profiles: alive-count trajectory,
//! busy periods, and the overloaded/underloaded time split the paper's
//! analysis (Section 3.2) decomposes over.

use serde::{Deserialize, Serialize};
use tf_simcore::Profile;

/// Aggregate occupancy statistics of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyStats {
    /// Total busy time (some job alive).
    pub busy_time: f64,
    /// Number of maximal busy periods (idle gaps separate them).
    pub busy_periods: usize,
    /// Longest busy period.
    pub longest_busy_period: f64,
    /// Time-average alive count over busy time.
    pub mean_alive: f64,
    /// Peak alive count.
    pub peak_alive: usize,
    /// Fraction of busy time that is *overloaded* (`n_t ≥ m`) — the `T_o`
    /// regime of the dual construction.
    pub overloaded_fraction: f64,
}

/// Compute occupancy statistics from a profile. Returns `None` for an
/// empty profile.
pub fn occupancy_stats(profile: &Profile) -> Option<OccupancyStats> {
    let first = profile.first()?;
    let mut busy_time = 0.0;
    let mut alive_time_weighted = 0.0;
    let mut overloaded_time = 0.0;
    let mut peak = 0usize;
    let mut periods = 0usize;
    let mut longest = 0.0f64;
    let mut current_period = 0.0f64;
    let mut prev_end = first.t0;

    for seg in profile.segments() {
        let d = seg.duration();
        busy_time += d;
        alive_time_weighted += seg.n_alive() as f64 * d;
        if seg.overloaded(profile.m) {
            overloaded_time += d;
        }
        peak = peak.max(seg.n_alive());
        if seg.t0 > prev_end + 1e-9 {
            // Idle gap: close the previous period.
            periods += 1;
            longest = longest.max(current_period);
            current_period = 0.0;
        }
        current_period += d;
        prev_end = seg.t1;
    }
    periods += 1;
    longest = longest.max(current_period);

    Some(OccupancyStats {
        busy_time,
        busy_periods: periods,
        longest_busy_period: longest,
        mean_alive: alive_time_weighted / busy_time,
        peak_alive: peak,
        overloaded_fraction: overloaded_time / busy_time,
    })
}

/// The alive-count trajectory as `(t, n_t)` step points (one per segment
/// start), for plotting or export.
pub fn alive_series(profile: &Profile) -> Vec<(f64, usize)> {
    profile.segments().map(|s| (s.t0, s.n_alive())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_simcore::profile::Segment;

    fn seg(t0: f64, t1: f64, n: usize) -> Segment {
        Segment {
            t0,
            t1,
            rates: (0..n as u32).map(|i| (i, 1.0 / n as f64)).collect(),
        }
    }

    #[test]
    fn stats_with_gap() {
        let p = Profile::from_segments(
            vec![seg(0.0, 2.0, 2), seg(2.0, 3.0, 1), seg(5.0, 6.0, 3)],
            2,
            1.0,
        );
        let s = occupancy_stats(&p).unwrap();
        assert_eq!(s.busy_time, 4.0);
        assert_eq!(s.busy_periods, 2);
        assert_eq!(s.longest_busy_period, 3.0);
        // Time-weighted alive: (2·2 + 1·1 + 3·1)/4 = 2.0.
        assert!((s.mean_alive - 2.0).abs() < 1e-12);
        assert_eq!(s.peak_alive, 3);
        // Overloaded (n ≥ 2): segments 1 and 3 → 3 of 4 time units.
        assert!((s.overloaded_fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = Profile::new(1, 1.0);
        assert!(occupancy_stats(&p).is_none());
        assert!(alive_series(&p).is_empty());
    }

    #[test]
    fn series_matches_segments() {
        let p = Profile::from_segments(vec![seg(0.0, 1.0, 1), seg(1.0, 2.0, 4)], 1, 1.0);
        assert_eq!(alive_series(&p), vec![(0.0, 1), (1.0, 4)]);
    }

    #[test]
    fn real_rr_run() {
        use tf_simcore::{simulate, AliveJob, MachineConfig, RateAllocator, SimOptions, Trace};
        struct Rr;
        impl RateAllocator for Rr {
            fn name(&self) -> &'static str {
                "RR"
            }
            fn allocate(
                &mut self,
                _: f64,
                alive: &[AliveJob],
                cfg: &MachineConfig,
                rates: &mut [f64],
            ) {
                rates.fill(cfg.speed * (cfg.m as f64 / alive.len() as f64).min(1.0));
            }
        }
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0), (10.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Rr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let st = occupancy_stats(s.profile.as_ref().unwrap()).unwrap();
        assert_eq!(st.busy_periods, 2);
        assert_eq!(st.peak_alive, 2);
        assert!((st.busy_time - 4.0).abs() < 1e-9);
        assert_eq!(st.overloaded_fraction, 1.0); // m=1: always overloaded
    }
}

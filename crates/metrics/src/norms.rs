//! ℓk-norms of flow time.

/// `Σ_j v_j^k` — the k-th power sum the paper's dual-fitting analysis
/// bounds directly (it compares `RR^k` to `OPT^k` and takes k-th roots at
/// the end).
///
/// The sum is at least `max_j v_j^k`, so for large `k` or large flows the
/// *value itself* can exceed `f64::MAX` and saturate to `inf` — that is a
/// property of the quantity, not an evaluation artifact. Ratio code that
/// only needs the k-th *root* of a power-sum quotient should prefer
/// [`lk_norm`], which evaluates in max-factored form and stays finite
/// whenever the maximum is.
pub fn flow_power_sum(values: &[f64], k: f64) -> f64 {
    values.iter().map(|&v| v.powf(k)).sum()
}

/// `Σ_j (v_j / max)^k` with `max = max_j v_j` — the scale-free part of
/// the max-factored norm. Every term is in `[0, 1]`, so the sum is in
/// `[1, n]` and never overflows. Returns 0 for an all-zero or empty
/// input.
fn scaled_power_sum(values: &[f64], k: f64) -> (f64, f64) {
    let max = values.iter().fold(0.0f64, |a, &v| a.max(v));
    if max <= 0.0 {
        return (0.0, 0.0);
    }
    let sum = values.iter().map(|&v| (v / max).powf(k)).sum();
    (max, sum)
}

/// The ℓk norm `(Σ_j v_j^k)^{1/k}`; `k = ∞` yields the maximum.
/// `k = 1` is total flow time, `k = 2` the paper's headline objective.
///
/// Evaluated in max-factored form `max · (Σ_j (v_j/max)^k)^{1/k}` so the
/// result is finite whenever the maximum is — the naive
/// `flow_power_sum(..).powf(1/k)` overflows to `inf` for large `k` or
/// large flows (e.g. `[1e60]` at `k = 6`), which silently corrupted
/// large-k ratio tables.
pub fn lk_norm(values: &[f64], k: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if k.is_infinite() {
        values.iter().fold(0.0, |a, &v| a.max(v))
    } else {
        let (max, sum) = scaled_power_sum(values, k);
        max * sum.powf(1.0 / k)
    }
}

/// The ℓk norm normalized by `n^{1/k}` — a per-job "typical flow at the
/// k-th moment", comparable across instance sizes. For k=1 this is the
/// average flow time; as k→∞ it approaches the max.
///
/// Uses the same max-factored form as [`lk_norm`], dividing the scaled
/// power sum by `n` *before* the root, so the normalization never
/// evaluates `inf / inf`.
pub fn normalized_lk_norm(values: &[f64], k: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if k.is_infinite() {
        lk_norm(values, k)
    } else {
        let (max, sum) = scaled_power_sum(values, k);
        max * (sum / values.len() as f64).powf(1.0 / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_values() {
        let v = [3.0, 4.0];
        assert_eq!(lk_norm(&v, 1.0), 7.0);
        assert!((lk_norm(&v, 2.0) - 5.0).abs() < 1e-12);
        assert_eq!(lk_norm(&v, f64::INFINITY), 4.0);
        assert!((flow_power_sum(&v, 3.0) - 91.0).abs() < 1e-12);
    }

    #[test]
    fn norms_are_monotone_in_k_after_normalization() {
        // Power-mean inequality: normalized ℓk is nondecreasing in k.
        let v = [1.0, 2.0, 3.0, 10.0];
        let mut prev = 0.0;
        for k in [1.0, 1.5, 2.0, 3.0, 8.0] {
            let cur = normalized_lk_norm(&v, k);
            assert!(cur >= prev - 1e-12, "k={k}: {cur} < {prev}");
            prev = cur;
        }
        assert!(normalized_lk_norm(&v, f64::INFINITY) >= prev - 1e-12);
    }

    #[test]
    fn empty_input() {
        assert_eq!(lk_norm(&[], 2.0), 0.0);
        assert_eq!(lk_norm(&[], f64::INFINITY), 0.0);
        assert_eq!(normalized_lk_norm(&[], 1.0), 0.0);
    }

    #[test]
    fn single_value_all_norms_equal() {
        for k in [1.0, 2.0, 5.0, f64::INFINITY] {
            assert!((lk_norm(&[7.5], k) - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_l1_is_the_mean() {
        let v = [2.0, 4.0, 6.0];
        assert!((normalized_lk_norm(&v, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn linf_dominates_and_lk_approaches_it() {
        let v = [1.0, 2.0, 9.0];
        let linf = lk_norm(&v, f64::INFINITY);
        let l16 = normalized_lk_norm(&v, 16.0);
        assert!(l16 <= linf + 1e-9);
        assert!(linf - l16 < 2.0); // high k hugs the max
    }

    /// Regression: the naive `(Σ v^k)^{1/k}` evaluation overflowed to
    /// `inf` here even though the norm (= 1e60 for a single value) is
    /// perfectly representable.
    #[test]
    fn huge_single_value_stays_finite() {
        let got = lk_norm(&[1e60], 6.0);
        assert!(got.is_finite(), "lk_norm([1e60], 6) = {got}");
        assert!((got - 1e60).abs() / 1e60 < 1e-12);
        assert!(normalized_lk_norm(&[1e60], 6.0).is_finite());
    }

    /// Extreme magnitudes and exponents: finite, dominated by ℓ∞, and
    /// converging to it as k grows.
    #[test]
    fn extreme_magnitudes_agree_with_linf_as_k_grows() {
        let v = [1e80, 3e79, 2.5e80, 1e-3, 7e78];
        let linf = lk_norm(&v, f64::INFINITY);
        let mut prev_gap = f64::INFINITY;
        for k in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let norm = lk_norm(&v, k);
            assert!(norm.is_finite(), "k={k}: {norm}");
            // ℓk ≥ ℓ∞ always; the unnormalized gap above ℓ∞ shrinks
            // toward 0 as k → ∞ (it is ≤ max·(n^{1/k}−1)).
            assert!(norm >= linf * (1.0 - 1e-12), "k={k}");
            let gap = norm / linf - 1.0;
            assert!(gap <= prev_gap + 1e-12, "k={k}: gap {gap} > {prev_gap}");
            prev_gap = gap;
        }
        assert!(prev_gap < 0.05, "l64 should hug the max: gap {prev_gap}");
    }

    #[test]
    fn all_zero_values_give_zero() {
        assert_eq!(lk_norm(&[0.0, 0.0], 3.0), 0.0);
        assert_eq!(normalized_lk_norm(&[0.0, 0.0], 3.0), 0.0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Magnitudes spanning ~90 orders, including the overflow regime of
    /// the old evaluation.
    fn arb_values() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec((-10.0f64..80.0).prop_map(|e| 10f64.powf(e)), 1..12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// For k ∈ 1..64 over magnitudes up to 1e80: the norm is finite,
        /// sits between ℓ∞ and n^{1/k}·ℓ∞, and the normalized norm is
        /// nondecreasing in k (power-mean inequality) while never
        /// exceeding ℓ∞.
        #[test]
        fn lk_norm_finite_and_monotone_normalized(v in arb_values()) {
            let linf = lk_norm(&v, f64::INFINITY);
            let mut prev = 0.0f64;
            for k in 1..=64u32 {
                let kf = f64::from(k);
                let norm = lk_norm(&v, kf);
                prop_assert!(norm.is_finite(), "k={k}: {norm}");
                prop_assert!(norm >= linf * (1.0 - 1e-9), "k={k}: {norm} < linf {linf}");
                let cap = linf * (v.len() as f64).powf(1.0 / kf);
                prop_assert!(norm <= cap * (1.0 + 1e-9), "k={k}: {norm} > cap {cap}");

                let nn = normalized_lk_norm(&v, kf);
                prop_assert!(nn.is_finite(), "k={k}: normalized {nn}");
                prop_assert!(nn >= prev * (1.0 - 1e-9),
                             "k={k}: normalized {nn} < previous {prev}");
                prop_assert!(nn <= linf * (1.0 + 1e-9), "k={k}: normalized {nn} > linf");
                prev = nn;
            }
            prop_assert!(linf >= prev * (1.0 - 1e-9));
        }

        /// Factored evaluation agrees with the naive one wherever the
        /// naive one does not overflow.
        #[test]
        fn matches_naive_evaluation_in_range(
            v in prop::collection::vec(0.0f64..100.0, 1..10), k in 1u32..8) {
            let kf = f64::from(k);
            let naive = flow_power_sum(&v, kf).powf(1.0 / kf);
            let factored = lk_norm(&v, kf);
            prop_assert!((naive - factored).abs() <= 1e-9 * (1.0 + naive),
                         "k={k}: naive {naive} vs factored {factored}");
        }
    }
}

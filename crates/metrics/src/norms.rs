//! ℓk-norms of flow time.

/// `Σ_j v_j^k` — the k-th power sum the paper's dual-fitting analysis
/// bounds directly (it compares `RR^k` to `OPT^k` and takes k-th roots at
/// the end).
pub fn flow_power_sum(values: &[f64], k: f64) -> f64 {
    values.iter().map(|&v| v.powf(k)).sum()
}

/// The ℓk norm `(Σ_j v_j^k)^{1/k}`; `k = ∞` yields the maximum.
/// `k = 1` is total flow time, `k = 2` the paper's headline objective.
pub fn lk_norm(values: &[f64], k: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if k.is_infinite() {
        values.iter().fold(0.0, |a, &v| a.max(v))
    } else {
        flow_power_sum(values, k).powf(1.0 / k)
    }
}

/// The ℓk norm normalized by `n^{1/k}` — a per-job "typical flow at the
/// k-th moment", comparable across instance sizes. For k=1 this is the
/// average flow time; as k→∞ it approaches the max.
pub fn normalized_lk_norm(values: &[f64], k: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if k.is_infinite() {
        lk_norm(values, k)
    } else {
        lk_norm(values, k) / (values.len() as f64).powf(1.0 / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_values() {
        let v = [3.0, 4.0];
        assert_eq!(lk_norm(&v, 1.0), 7.0);
        assert!((lk_norm(&v, 2.0) - 5.0).abs() < 1e-12);
        assert_eq!(lk_norm(&v, f64::INFINITY), 4.0);
        assert!((flow_power_sum(&v, 3.0) - 91.0).abs() < 1e-12);
    }

    #[test]
    fn norms_are_monotone_in_k_after_normalization() {
        // Power-mean inequality: normalized ℓk is nondecreasing in k.
        let v = [1.0, 2.0, 3.0, 10.0];
        let mut prev = 0.0;
        for k in [1.0, 1.5, 2.0, 3.0, 8.0] {
            let cur = normalized_lk_norm(&v, k);
            assert!(cur >= prev - 1e-12, "k={k}: {cur} < {prev}");
            prev = cur;
        }
        assert!(normalized_lk_norm(&v, f64::INFINITY) >= prev - 1e-12);
    }

    #[test]
    fn empty_input() {
        assert_eq!(lk_norm(&[], 2.0), 0.0);
        assert_eq!(lk_norm(&[], f64::INFINITY), 0.0);
        assert_eq!(normalized_lk_norm(&[], 1.0), 0.0);
    }

    #[test]
    fn single_value_all_norms_equal() {
        for k in [1.0, 2.0, 5.0, f64::INFINITY] {
            assert!((lk_norm(&[7.5], k) - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_l1_is_the_mean() {
        let v = [2.0, 4.0, 6.0];
        assert!((normalized_lk_norm(&v, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn linf_dominates_and_lk_approaches_it() {
        let v = [1.0, 2.0, 9.0];
        let linf = lk_norm(&v, f64::INFINITY);
        let l16 = normalized_lk_norm(&v, 16.0);
        assert!(l16 <= linf + 1e-9);
        assert!(linf - l16 < 2.0); // high k hugs the max
    }
}

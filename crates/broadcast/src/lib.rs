#![warn(missing_docs)]

//! # tf-broadcast — the broadcast scheduling setting
//!
//! The paper's Section 1.2 names two environments where RR's ℓ2 behavior
//! breaks: arbitrary speed-up curves (see `tf-speedup`) and **broadcast
//! scheduling**, "the closely related broadcast scheduling setting, \[where\]
//! jobs asking for the same data can be processed simultaneously. … RR is
//! O(1)-speed O(1)-competitive for the ℓ1-norm in both settings \[12\],
//! \[but\] not O(1)-competitive even with any O(1)-speed for the ℓ2-norm
//! \[15\]."
//!
//! Model (standard pull-based, fractional): a single server of speed `s`
//! holds `P` pages, page `p` of length `ℓ_p`. Requests `(page, time)`
//! arrive online; the server splits its bandwidth across pages,
//! `Σ_p x_p(t) ≤ s`; a request completes once its page has received `ℓ_p`
//! units of transmission *since the request arrived*. One transmission
//! stream simultaneously serves every outstanding request for the page —
//! broadcast's defining non-conservation of work.
//!
//! Policies ([`policy`]):
//! * [`PerPageRR`] — equal bandwidth per *distinct requested page* (the
//!   direct RR analogue on pages);
//! * [`PerRequestRR`] — bandwidth proportional to each page's outstanding
//!   request count (RR on requests, the `BEQUI` flavor);
//! * [`Lwf`] — Longest Wait First, the classical broadcast heuristic:
//!   full bandwidth to the page with the largest total accumulated wait;
//! * [`Mrf`] — Most Requests First.
//!
//! Experiment E16 measures the broadcast gain (work transmitted vs work
//! requested), the ℓ1/ℓ2 policy comparison, and the dilution contrast
//! between the two RR flavors.

pub mod engine;
pub mod policy;
pub mod workload;

pub use engine::{simulate_broadcast, BroadcastSchedule};
pub use policy::{BroadcastPolicy, Lwf, Mrf, PageView, PerPageRR, PerRequestRR};
pub use workload::{BroadcastInstance, Request};

//! Bandwidth-allocation policies over pages with outstanding requests.

/// Aggregated view of one page with outstanding requests, handed to
/// policies at allocation time.
#[derive(Debug, Clone, Copy)]
pub struct PageView {
    /// Page index.
    pub page: u32,
    /// Page length `ℓ_p`.
    pub len: f64,
    /// Number of outstanding requests.
    pub outstanding: usize,
    /// Sum of waiting times of the outstanding requests at `now`
    /// (`Σ_r (now − t_r)`).
    pub total_wait: f64,
    /// Earliest outstanding arrival.
    pub earliest_arrival: f64,
}

/// A broadcast bandwidth policy: split server speed `s` across the active
/// pages. `rates` arrives zeroed; feasibility is `rates[i] ≥ 0`,
/// `Σ rates[i] ≤ s`.
pub trait BroadcastPolicy {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Fill `rates[i]` for `pages[i]` at time `now`.
    fn allocate(&mut self, now: f64, pages: &[PageView], speed: f64, rates: &mut [f64]);

    /// Like [`tf_simcore`-style review hints]: duration after which the
    /// allocation may change absent arrivals/completions (e.g. LWF
    /// priority crossings). `None` = stable until the next event.
    fn review_in(&self, _now: f64, _pages: &[PageView], _speed: f64) -> Option<f64> {
        None
    }
}

/// RR over *pages*: every page with at least one outstanding request gets
/// an equal bandwidth share — the direct analogue of the paper's RR with
/// "jobs" = distinct requested pages.
#[derive(Debug, Default, Clone, Copy)]
pub struct PerPageRR;

impl BroadcastPolicy for PerPageRR {
    fn name(&self) -> &'static str {
        "RR/page"
    }

    fn allocate(&mut self, _now: f64, pages: &[PageView], speed: f64, rates: &mut [f64]) {
        if pages.is_empty() {
            return;
        }
        rates.fill(speed / pages.len() as f64);
    }
}

/// RR over *requests*: bandwidth proportional to each page's outstanding
/// request count (every request gets an equal "virtual share", shares for
/// the same page pool together). The `BEQUI` flavor.
#[derive(Debug, Default, Clone, Copy)]
pub struct PerRequestRR;

impl BroadcastPolicy for PerRequestRR {
    fn name(&self) -> &'static str {
        "RR/request"
    }

    fn allocate(&mut self, _now: f64, pages: &[PageView], speed: f64, rates: &mut [f64]) {
        let total: usize = pages.iter().map(|p| p.outstanding).sum();
        if total == 0 {
            return;
        }
        for (r, p) in rates.iter_mut().zip(pages) {
            *r = speed * p.outstanding as f64 / total as f64;
        }
    }
}

/// Longest Wait First: full bandwidth to the page whose outstanding
/// requests have the largest total accumulated waiting time — the
/// classical broadcast policy. Total waits grow at slope `outstanding`,
/// so the argmax can flip between events; [`BroadcastPolicy::review_in`]
/// reports the earliest crossing.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lwf;

impl Lwf {
    fn leader(pages: &[PageView]) -> Option<usize> {
        pages
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.total_wait
                    .partial_cmp(&b.1.total_wait)
                    .unwrap()
                    .then_with(|| b.1.page.cmp(&a.1.page)) // lower page wins ties
            })
            .map(|(i, _)| i)
    }
}

impl BroadcastPolicy for Lwf {
    fn name(&self) -> &'static str {
        "LWF"
    }

    fn allocate(&mut self, _now: f64, pages: &[PageView], speed: f64, rates: &mut [f64]) {
        if let Some(i) = Self::leader(pages) {
            rates[i] = speed;
        }
    }

    fn review_in(&self, _now: f64, pages: &[PageView], _speed: f64) -> Option<f64> {
        let leader = Self::leader(pages)?;
        let lw = &pages[leader];
        // Another page j catches up when
        // total_wait_j + slope_j·dt = total_wait_l + slope_l·dt.
        let mut best: Option<f64> = None;
        for (i, p) in pages.iter().enumerate() {
            if i == leader {
                continue;
            }
            let slope_gain = p.outstanding as f64 - lw.outstanding as f64;
            if slope_gain > 1e-12 {
                let dt = (lw.total_wait - p.total_wait) / slope_gain;
                if dt > 1e-12 {
                    best = Some(best.map_or(dt, |b: f64| b.min(dt)));
                }
            }
        }
        best
    }
}

/// Most Requests First: full bandwidth to the page with the most
/// outstanding requests (throughput-greedy baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct Mrf;

impl BroadcastPolicy for Mrf {
    fn name(&self) -> &'static str {
        "MRF"
    }

    fn allocate(&mut self, _now: f64, pages: &[PageView], speed: f64, rates: &mut [f64]) {
        if let Some((i, _)) = pages.iter().enumerate().max_by(|a, b| {
            a.1.outstanding
                .cmp(&b.1.outstanding)
                .then_with(|| b.1.page.cmp(&a.1.page))
        }) {
            rates[i] = speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(specs: &[(usize, f64)]) -> Vec<PageView> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(outstanding, total_wait))| PageView {
                page: i as u32,
                len: 1.0,
                outstanding,
                total_wait,
                earliest_arrival: 0.0,
            })
            .collect()
    }

    #[test]
    fn per_page_rr_splits_equally() {
        let p = pages(&[(1, 0.0), (9, 0.0)]);
        let mut r = vec![0.0; 2];
        PerPageRR.allocate(0.0, &p, 2.0, &mut r);
        assert_eq!(r, vec![1.0, 1.0]);
    }

    #[test]
    fn per_request_rr_weights_by_count() {
        let p = pages(&[(1, 0.0), (3, 0.0)]);
        let mut r = vec![0.0; 2];
        PerRequestRR.allocate(0.0, &p, 1.0, &mut r);
        assert!((r[0] - 0.25).abs() < 1e-12);
        assert!((r[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lwf_serves_longest_wait_and_predicts_crossing() {
        let p = pages(&[(1, 5.0), (3, 2.0)]);
        let mut r = vec![0.0; 2];
        Lwf.allocate(0.0, &p, 1.0, &mut r);
        assert_eq!(r, vec![1.0, 0.0]);
        // Page 1 gains wait at slope 3 vs 1 → catches up after
        // (5−2)/(3−1) = 1.5.
        let rev = Lwf.review_in(0.0, &p, 1.0).unwrap();
        assert!((rev - 1.5).abs() < 1e-9);
    }

    #[test]
    fn lwf_no_review_when_leader_grows_fastest() {
        let p = pages(&[(5, 9.0), (1, 2.0)]);
        assert!(Lwf.review_in(0.0, &p, 1.0).is_none());
    }

    #[test]
    fn mrf_serves_most_requested() {
        let p = pages(&[(2, 9.0), (7, 0.0)]);
        let mut r = vec![0.0; 2];
        Mrf.allocate(0.0, &p, 1.5, &mut r);
        assert_eq!(r, vec![0.0, 1.5]);
    }
}

//! Event-driven broadcast simulation.
//!
//! Between events (request arrivals, request completions, policy reviews)
//! page transmission rates are constant; each outstanding request `r` for
//! page `p` completes when the page has transmitted `ℓ_p` since `t_r`, so
//! the earliest completion is computed analytically. The server transmits
//! a page at one rate for *all* its outstanding requests simultaneously —
//! the broadcast non-conservation of work.

use crate::policy::{BroadcastPolicy, PageView};
use crate::workload::BroadcastInstance;

/// Output of a broadcast simulation.
#[derive(Debug, Clone)]
pub struct BroadcastSchedule {
    /// Policy name.
    pub policy: String,
    /// Server speed.
    pub speed: f64,
    /// Completion time per request (index = position in
    /// [`BroadcastInstance::requests`]).
    pub completion: Vec<f64>,
    /// Flow time per request.
    pub flow: Vec<f64>,
    /// Total bandwidth actually transmitted (≤ requested work; the gap is
    /// the broadcast gain).
    pub transmitted: f64,
    /// Engine events processed.
    pub events: u64,
}

impl BroadcastSchedule {
    /// `Σ_r F_r^k`.
    pub fn flow_power_sum(&self, k: f64) -> f64 {
        self.flow.iter().map(|&f| f.powf(k)).sum()
    }

    /// ℓk norm of the request flow vector (`k = ∞` for max).
    pub fn flow_norm(&self, k: f64) -> f64 {
        if k.is_infinite() {
            self.flow.iter().fold(0.0, |a, &f| a.max(f))
        } else {
            self.flow_power_sum(k).powf(1.0 / k)
        }
    }
}

/// One outstanding request's live state.
struct Outstanding {
    request: usize, // index into instance.requests()
    arrival: f64,
    remaining: f64, // page-units still to receive
}

const REL_EPS: f64 = 1e-9;
const ABS_EPS: f64 = 1e-12;

/// Simulate `policy` on `instance` with a server of speed `speed`.
///
/// # Panics
/// If the policy over-allocates bandwidth or the configuration is
/// degenerate.
pub fn simulate_broadcast(
    instance: &BroadcastInstance,
    policy: &mut dyn BroadcastPolicy,
    speed: f64,
) -> BroadcastSchedule {
    assert!(speed > 0.0 && speed.is_finite());
    let reqs = instance.requests();
    let n = reqs.len();
    let mut completion = vec![f64::NAN; n];
    let mut flow = vec![f64::NAN; n];

    // Active pages: page -> outstanding requests (in arrival order).
    let n_pages = instance.page_len().len();
    let mut outstanding: Vec<Vec<Outstanding>> = (0..n_pages).map(|_| Vec::new()).collect();
    let mut active_pages: Vec<u32> = Vec::new(); // sorted, pages with requests

    let mut next_arrival = 0usize;
    let mut time = 0.0f64;
    let mut events = 0u64;
    let mut transmitted = 0.0f64;
    let mut done = 0usize;

    let mut views: Vec<PageView> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();

    while done < n {
        // Admit arrivals.
        while next_arrival < n && reqs[next_arrival].arrival <= time {
            let r = reqs[next_arrival];
            let p = r.page as usize;
            if outstanding[p].is_empty() {
                let pos = active_pages.partition_point(|&q| q < r.page);
                active_pages.insert(pos, r.page);
            }
            outstanding[p].push(Outstanding {
                request: next_arrival,
                arrival: r.arrival,
                remaining: instance.len_of(r.page),
            });
            next_arrival += 1;
            events += 1;
        }
        if active_pages.is_empty() {
            time = reqs[next_arrival].arrival; // done < n ⇒ arrivals remain
            continue;
        }

        views.clear();
        views.extend(active_pages.iter().map(|&pg| {
            let outs = &outstanding[pg as usize];
            PageView {
                page: pg,
                len: instance.len_of(pg),
                outstanding: outs.len(),
                total_wait: outs.iter().map(|o| time - o.arrival).sum(),
                earliest_arrival: outs.iter().map(|o| o.arrival).fold(f64::INFINITY, f64::min),
            }
        }));
        rates.clear();
        rates.resize(views.len(), 0.0);
        policy.allocate(time, &views, speed, &mut rates);
        let total: f64 = rates.iter().sum();
        assert!(
            total <= speed * (1.0 + REL_EPS) + ABS_EPS,
            "policy {} over-allocated bandwidth",
            policy.name()
        );

        // Earliest event.
        let mut dt = f64::INFINITY;
        let mut arrival_snap = None;
        if next_arrival < n {
            let d = reqs[next_arrival].arrival - time;
            if d < dt {
                dt = d;
                arrival_snap = Some(reqs[next_arrival].arrival);
            }
        }
        for (v, &x) in views.iter().zip(&rates) {
            if x > ABS_EPS {
                // Earliest completion on this page: the oldest request has
                // the least remaining (monotone in arrival order).
                let min_rem = outstanding[v.page as usize]
                    .iter()
                    .map(|o| o.remaining)
                    .fold(f64::INFINITY, f64::min);
                let d = min_rem / x;
                if d < dt {
                    dt = d;
                    arrival_snap = None;
                }
            }
        }
        if let Some(rev) = policy.review_in(time, &views, speed) {
            let rev = rev.max(ABS_EPS);
            if rev < dt {
                dt = rev;
                arrival_snap = None;
            }
        }
        assert!(dt.is_finite(), "stalled broadcast: no rate, no arrivals");

        // Advance.
        for (v, &x) in views.iter().zip(&rates) {
            if x <= 0.0 {
                continue;
            }
            let w = x * dt;
            transmitted += w;
            for o in outstanding[v.page as usize].iter_mut() {
                o.remaining -= w;
            }
        }
        time = arrival_snap.unwrap_or(time + dt);
        events += 1;

        // Complete satisfied requests; deactivate empty pages.
        for v in &views {
            let p = v.page as usize;
            let len = instance.len_of(v.page);
            outstanding[p].retain(|o| {
                if o.remaining <= len * REL_EPS + ABS_EPS {
                    completion[o.request] = time;
                    flow[o.request] = time - o.arrival;
                    done += 1;
                    false
                } else {
                    true
                }
            });
            if outstanding[p].is_empty() {
                if let Ok(pos) = active_pages.binary_search(&v.page) {
                    active_pages.remove(pos);
                }
            }
        }
    }

    BroadcastSchedule {
        policy: policy.name().to_string(),
        speed,
        completion,
        flow,
        transmitted,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lwf, Mrf, PerPageRR, PerRequestRR};
    use crate::workload::{BroadcastInstance, Request};

    fn inst(page_len: &[f64], reqs: &[(u32, f64)]) -> BroadcastInstance {
        BroadcastInstance::new(
            page_len.to_vec(),
            reqs.iter()
                .map(|&(page, arrival)| Request { page, arrival })
                .collect(),
        )
    }

    #[test]
    fn single_request_single_page() {
        let i = inst(&[2.0], &[(0, 1.0)]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        assert!((s.completion[0] - 3.0).abs() < 1e-9);
        assert!((s.transmitted - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_requests_share_one_transmission() {
        // Five requests for the same unit page at t=0: one transmission
        // satisfies all — total transmitted = 1, everyone's flow = 1.
        let i = inst(&[1.0], &[(0, 0.0); 5]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        for r in 0..5 {
            assert!((s.flow[r] - 1.0).abs() < 1e-9);
        }
        assert!((s.transmitted - 1.0).abs() < 1e-9);
        assert!((i.requested_work() - 5.0).abs() < 1e-9); // 5x gain
    }

    #[test]
    fn late_joiner_needs_a_full_page_after_its_arrival() {
        // Page length 2 at rate 1; request A at 0 (done at 2), request B
        // at 1 — it has only seen 1 unit by t=2 and needs 2 since t=1 →
        // completes at 3 (the cyclic re-broadcast).
        let i = inst(&[2.0], &[(0, 0.0), (0, 1.0)]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        assert!((s.completion[0] - 2.0).abs() < 1e-9);
        assert!((s.completion[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_page_rr_splits_between_pages() {
        // Two unit pages, one request each at t=0, speed 1: each at rate
        // 1/2 → both complete at 2.
        let i = inst(&[1.0, 1.0], &[(0, 0.0), (1, 0.0)]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        assert!((s.completion[0] - 2.0).abs() < 1e-9);
        assert!((s.completion[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_request_rr_favors_popular_pages() {
        // Page 0 has 3 requests, page 1 has 1: page 0 at rate 3/4 finishes
        // at 4/3; page 1 at 1/4 then full rate: 1/4·(4/3) = 1/3 done, then
        // rate 1 for 2/3 → completes at 2.
        let i = inst(&[1.0, 1.0], &[(0, 0.0), (0, 0.0), (0, 0.0), (1, 0.0)]);
        let s = simulate_broadcast(&i, &mut PerRequestRR, 1.0);
        for r in 0..3 {
            assert!((s.completion[r] - 4.0 / 3.0).abs() < 1e-9);
        }
        assert!((s.completion[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lwf_switches_at_crossings() {
        // Page 0: one request at t=0. Page 1: three requests at t=1.
        // At t=1: waits are 1 vs 0, slopes 1 vs 3 → crossing at t=1.5.
        // LWF serves page 0 until its completion at t=1 (page len 1,
        // full rate from 0) — so page 0 is done before any contest.
        let i = inst(&[1.0, 1.0], &[(0, 0.0), (1, 1.0), (1, 1.0), (1, 1.0)]);
        let s = simulate_broadcast(&i, &mut Lwf, 1.0);
        assert!((s.completion[0] - 1.0).abs() < 1e-9);
        for r in 1..4 {
            assert!((s.completion[r] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mrf_can_starve_singletons() {
        // A lone request for page 0 vs repeated 2-batches for fresh pages:
        // MRF always prefers the batches.
        let i = BroadcastInstance::new(
            vec![1.0, 1.0, 1.0, 1.0],
            vec![
                Request {
                    page: 0,
                    arrival: 0.0,
                },
                Request {
                    page: 1,
                    arrival: 0.0,
                },
                Request {
                    page: 1,
                    arrival: 0.0,
                },
                Request {
                    page: 2,
                    arrival: 1.0,
                },
                Request {
                    page: 2,
                    arrival: 1.0,
                },
                Request {
                    page: 3,
                    arrival: 2.0,
                },
                Request {
                    page: 3,
                    arrival: 2.0,
                },
            ],
        );
        let s = simulate_broadcast(&i, &mut Mrf, 1.0);
        // Page 0's lone request waits for all three batches.
        assert!(s.flow[0] > 3.0 - 1e-9, "{}", s.flow[0]);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let i = inst(&[1.0], &[(0, 0.0), (0, 10.0)]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        assert!((s.completion[0] - 1.0).abs() < 1e-9);
        assert!((s.completion[1] - 11.0).abs() < 1e-9);
        assert!((s.transmitted - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speed_scales_everything() {
        let i = inst(&[3.0], &[(0, 0.0)]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 3.0);
        assert!((s.completion[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let i = BroadcastInstance::new(vec![1.0], vec![]);
        let s = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        assert!(s.flow.is_empty());
        assert_eq!(s.transmitted, 0.0);
    }
}

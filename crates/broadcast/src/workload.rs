//! Broadcast instances: pages and request streams.

use serde::{Deserialize, Serialize};

/// A request for one page at one time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Requested page index (into the instance's page-length table).
    pub page: u32,
    /// Arrival time.
    pub arrival: f64,
}

/// A validated broadcast instance: page lengths plus arrival-sorted
/// requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastInstance {
    page_len: Vec<f64>,
    requests: Vec<Request>,
}

impl BroadcastInstance {
    /// Build an instance.
    ///
    /// # Panics
    /// If a page length is non-positive/non-finite, a request names a
    /// missing page, or an arrival is negative/non-finite.
    pub fn new(page_len: Vec<f64>, mut requests: Vec<Request>) -> Self {
        for (p, &l) in page_len.iter().enumerate() {
            assert!(l.is_finite() && l > 0.0, "page {p}: bad length {l}");
        }
        for r in &requests {
            assert!(
                (r.page as usize) < page_len.len(),
                "request names missing page {}",
                r.page
            );
            assert!(
                r.arrival.is_finite() && r.arrival >= 0.0,
                "bad arrival {}",
                r.arrival
            );
        }
        requests.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        BroadcastInstance { page_len, requests }
    }

    /// Page lengths.
    pub fn page_len(&self) -> &[f64] {
        &self.page_len
    }

    /// Length of page `p`.
    pub fn len_of(&self, page: u32) -> f64 {
        self.page_len[page as usize]
    }

    /// Requests, arrival-sorted.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn n_requests(&self) -> usize {
        self.requests.len()
    }

    /// Total *requested* work `Σ_r ℓ_{page(r)}` — the work a unicast
    /// server would do. The broadcast server may do far less; the ratio is
    /// the broadcast gain.
    pub fn requested_work(&self) -> f64 {
        self.requests.iter().map(|r| self.len_of(r.page)).sum()
    }

    /// **Hot/cold workload**: a hot page receives batches of `batch`
    /// simultaneous requests every `period`; `cold` cold pages each get a
    /// lone request, packed at interval `0.6·period` so cold service
    /// overlaps hot transmissions and the pages genuinely contend
    /// (combined offered bandwidth ≈ 1/period + 1/(0.6·period) > 1/period
    /// — transiently above capacity at period ≤ 2.6, so queues form and
    /// policies differ). All pages unit length.
    pub fn hot_cold(batches: usize, batch: usize, period: f64, cold: usize) -> Self {
        let mut page_len = vec![1.0]; // page 0 = hot
        let mut requests = Vec::new();
        for b in 0..batches {
            for _ in 0..batch {
                requests.push(Request {
                    page: 0,
                    arrival: b as f64 * period,
                });
            }
        }
        for c in 0..cold {
            page_len.push(1.0);
            requests.push(Request {
                page: (c + 1) as u32,
                arrival: 0.3 * period + c as f64 * 0.6 * period,
            });
        }
        BroadcastInstance::new(page_len, requests)
    }

    /// **Dilution family** (experiment E16): one *victim* request for a
    /// long page (length `victim_len`, page 0) at `t = 0`, plus `rounds`
    /// batches of `swarm` simultaneous requests for a fresh unit page per
    /// batch, every time unit. Each batch costs any schedule 1 unit of
    /// bandwidth no matter how many requests it contains — so a per-page
    /// scheduler treats the swarm as one peer while a per-request
    /// scheduler lets it crowd out the victim by a factor `≈ swarm`.
    pub fn dilution(victim_len: f64, swarm: usize, rounds: usize) -> Self {
        let mut page_len = vec![victim_len];
        let mut requests = vec![Request {
            page: 0,
            arrival: 0.0,
        }];
        for round in 0..rounds {
            page_len.push(1.0);
            for _ in 0..swarm {
                requests.push(Request {
                    page: (round + 1) as u32,
                    arrival: round as f64,
                });
            }
        }
        BroadcastInstance::new(page_len, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_requests_and_counts_work() {
        let i = BroadcastInstance::new(
            vec![2.0, 1.0],
            vec![
                Request {
                    page: 1,
                    arrival: 3.0,
                },
                Request {
                    page: 0,
                    arrival: 1.0,
                },
            ],
        );
        assert_eq!(i.requests()[0].page, 0);
        assert_eq!(i.requested_work(), 3.0);
        assert_eq!(i.len_of(0), 2.0);
    }

    #[test]
    fn hot_cold_shape() {
        let i = BroadcastInstance::hot_cold(3, 4, 2.0, 2);
        assert_eq!(i.n_requests(), 3 * 4 + 2);
        assert_eq!(i.page_len().len(), 3);
    }

    #[test]
    fn dilution_shape() {
        let i = BroadcastInstance::dilution(8.0, 5, 3);
        assert_eq!(i.n_requests(), 1 + 5 * 3);
        assert_eq!(i.page_len().len(), 4);
        assert_eq!(i.len_of(0), 8.0);
    }

    #[test]
    #[should_panic(expected = "missing page")]
    fn rejects_unknown_page() {
        BroadcastInstance::new(
            vec![1.0],
            vec![Request {
                page: 3,
                arrival: 0.0,
            }],
        );
    }
}

//! Property tests for the broadcast engine.

use proptest::prelude::*;
use tf_broadcast::{
    simulate_broadcast, BroadcastInstance, BroadcastPolicy, Lwf, Mrf, PerPageRR, PerRequestRR,
    Request,
};

fn arb_instance() -> impl Strategy<Value = BroadcastInstance> {
    (1usize..5).prop_flat_map(|n_pages| {
        let pages = prop::collection::vec(0.2f64..4.0, n_pages..=n_pages);
        let reqs = prop::collection::vec(
            ((0..n_pages as u32), 0.0f64..20.0)
                .prop_map(|(page, arrival)| Request { page, arrival }),
            1..30,
        );
        (pages, reqs).prop_map(|(p, r)| BroadcastInstance::new(p, r))
    })
}

fn policies() -> Vec<Box<dyn BroadcastPolicy>> {
    vec![
        Box::new(PerPageRR),
        Box::new(PerRequestRR),
        Box::new(Lwf),
        Box::new(Mrf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request completes with flow at least ℓ_p / speed, and the
    /// server never transmits more than the unicast (requested) work.
    #[test]
    fn completion_flow_and_gain_invariants(i in arb_instance(), s in 0.5f64..3.0) {
        for mut p in policies() {
            let sched = simulate_broadcast(&i, p.as_mut(), s);
            for (ri, r) in i.requests().iter().enumerate() {
                prop_assert!(sched.completion[ri].is_finite(), "{}: incomplete", p.name());
                prop_assert!(
                    sched.flow[ri] >= i.len_of(r.page) / s - 1e-9,
                    "{}: flow below physical minimum", p.name()
                );
            }
            prop_assert!(
                sched.transmitted <= i.requested_work() + 1e-6,
                "{}: transmitted {} > requested {}",
                p.name(), sched.transmitted, i.requested_work()
            );
        }
    }

    /// Batched duplicates are free: doubling every request (same pages,
    /// same times) changes no completion time under per-page RR and LWF,
    /// and transmits no extra bandwidth.
    #[test]
    fn duplicates_are_free_for_page_aggregating_policies(i in arb_instance()) {
        let doubled = BroadcastInstance::new(
            i.page_len().to_vec(),
            i.requests().iter().flat_map(|&r| [r, r]).collect(),
        );
        let a = simulate_broadcast(&i, &mut PerPageRR, 1.0);
        let b = simulate_broadcast(&doubled, &mut PerPageRR, 1.0);
        prop_assert!((a.transmitted - b.transmitted).abs() < 1e-6);
        // The doubled instance's completions are a two-fold copy.
        let mut orig = a.completion.clone();
        let mut dup: Vec<f64> = b.completion.iter().step_by(2).copied().collect();
        orig.sort_by(|x, y| x.partial_cmp(y).unwrap());
        dup.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in orig.iter().zip(&dup) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// More speed never hurts the RR flavors (oblivious shares).
    #[test]
    fn rr_flavors_speed_monotone(i in arb_instance()) {
        for which in 0..2 {
            let mut p1: Box<dyn BroadcastPolicy> =
                if which == 0 { Box::new(PerPageRR) } else { Box::new(PerRequestRR) };
            let mut p2: Box<dyn BroadcastPolicy> =
                if which == 0 { Box::new(PerPageRR) } else { Box::new(PerRequestRR) };
            let slow = simulate_broadcast(&i, p1.as_mut(), 1.0);
            let fast = simulate_broadcast(&i, p2.as_mut(), 2.0);
            for ri in 0..i.n_requests() {
                prop_assert!(fast.completion[ri] <= slow.completion[ri] + 1e-6);
            }
        }
    }
}

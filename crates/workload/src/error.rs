//! Typed validation errors for workload parameters.
//!
//! Mirrors the simulator's [`tf_simcore::SimError`] style: every rejected
//! parameter gets its own variant carrying the offending value, so a bad
//! config fails loudly at construction instead of poisoning a multi-hour
//! run with `inf` arrival times (the pre-fix behaviour of
//! `Poisson { rate: 0.0 }`) or NaN sizes.

use std::fmt;

/// Errors raised by workload-parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// An arrival rate must be finite and positive.
    BadRate(f64),
    /// An inter-arrival (or batch) interval must be finite and positive.
    BadInterval(f64),
    /// A diurnal cycle period must be finite and positive.
    BadPeriod(f64),
    /// A diurnal amplitude must lie in `[0, 1)`: at `amplitude ≥ 1` the
    /// instantaneous rate `base·(1 + a·sin)` goes negative and the
    /// thinning acceptance probability is nonsensical.
    BadAmplitude(f64),
    /// A size-distribution parameter was rejected.
    BadSizeParam {
        /// Distribution label (e.g. `"pareto"`).
        dist: &'static str,
        /// Parameter name (e.g. `"alpha"`).
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An empirical histogram was malformed (message says how).
    BadHistogram(String),
    /// A Markov-modulated process needs at least one state with a
    /// positive rate; all rates finite and non-negative.
    BadMmpp(String),
    /// A stream bound must be finite and positive.
    BadBound(f64),
    /// The requested open stream never terminates: a duration bound over
    /// an arrival process that emits unbounded jobs in finite time
    /// (`AllAtOnce`).
    UnboundedStream,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadRate(r) => {
                write!(f, "arrival rate {r} must be finite and positive")
            }
            WorkloadError::BadInterval(i) => {
                write!(f, "arrival interval {i} must be finite and positive")
            }
            WorkloadError::BadPeriod(p) => {
                write!(f, "diurnal period {p} must be finite and positive")
            }
            WorkloadError::BadAmplitude(a) => {
                write!(f, "diurnal amplitude {a} must lie in [0, 1)")
            }
            WorkloadError::BadSizeParam { dist, param, value } => {
                write!(
                    f,
                    "size distribution {dist}: parameter {param} = {value} is invalid"
                )
            }
            WorkloadError::BadHistogram(msg) => write!(f, "bad histogram: {msg}"),
            WorkloadError::BadMmpp(msg) => write!(f, "bad MMPP: {msg}"),
            WorkloadError::BadBound(b) => {
                write!(f, "stream bound {b} must be finite and positive")
            }
            WorkloadError::UnboundedStream => {
                write!(
                    f,
                    "duration-bounded stream over an all-at-once arrival process never terminates"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_value() {
        assert!(WorkloadError::BadRate(0.0).to_string().contains('0'));
        assert!(WorkloadError::BadAmplitude(1.5).to_string().contains("1.5"));
        let e = WorkloadError::BadSizeParam {
            dist: "pareto",
            param: "alpha",
            value: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("pareto") && s.contains("alpha") && s.contains("0.5"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(WorkloadError::UnboundedStream);
        assert!(!e.to_string().is_empty());
    }
}

//! Named adversarial instance families.
//!
//! These are the deterministic constructions behind the lower bounds the
//! paper states or cites, plus the motivating starvation example from its
//! introduction. Each generator documents which experiment uses it.

use tf_simcore::{Trace, TraceBuilder};

/// `n` equal jobs of size `size` arriving together at `t = 0` — the
/// maximum-sharing instance. Under RR on one speed-`s` machine all jobs
/// finish simultaneously at `n·size/s`, so `Σ F² = n³·size²/s²`, whereas
/// serving them in any fixed order gives `Σ (j·size)² ≈ n³·size²/3`:
/// batches cost RR a constant factor `3/s²`, the textbook warm-up case.
pub fn equal_batch(n: usize, size: f64) -> Trace {
    let mut b = TraceBuilder::new();
    for _ in 0..n {
        b.push(0.0, size);
    }
    b.build().expect("valid batch")
}

/// One long job (size `long_size`) released at `t = 0`, then a periodic
/// stream of short jobs (size `short_size`, one every `short_size/load`
/// time units, `count` of them). At `load = 1` the shorts alone saturate a
/// unit-speed machine.
///
/// * Under **SRPT** at speed 1 the long job *starves* until the stream
///   ends: every short has less remaining work. Its flow is
///   `≈ count·short_size + long_size`.
/// * Under **RR** the long job always holds its `1/n_t` share and finishes
///   in time `O(long_size)` — the temporal-fairness motivation from the
///   paper's introduction (experiment E7).
pub fn srpt_starvation(long_size: f64, short_size: f64, count: usize, load: f64) -> Trace {
    let gap = short_size / load;
    let mut b = TraceBuilder::new();
    b.push(0.0, long_size);
    for i in 0..count {
        b.push(i as f64 * gap, short_size);
    }
    b.build().expect("valid starvation instance")
}

/// The **geometric cascade** driving RR's low-speed blow-up (experiment
/// E3): `levels + 1` phases; phase `ℓ` releases `2^ℓ` jobs of size
/// `2^(levels−ℓ)`, spread evenly across its window. Every phase carries
/// equal total work `2^levels`, and windows have length
/// `2^levels / load`, so the offered load is `load` throughout.
///
/// Early phases contain *few, huge* jobs; later phases flood the system
/// with *many, small* ones. RR dilutes the old huge jobs' share by every
/// newly arrived small job, multiplying their flow times — and the ℓk norm
/// (k ≥ 2) is dominated by exactly those stragglers. A clairvoyant
/// scheduler clears each phase inside its own window. Total job count is
/// `2^(levels+1) − 1`.
pub fn geometric_cascade(levels: u32, load: f64) -> Trace {
    assert!(load > 0.0);
    let window = ((2f64).powi(levels as i32) / load).ceil();
    let mut b = TraceBuilder::new();
    for level in 0..=levels {
        let count = 1usize << level;
        let size = (2f64).powi((levels - level) as i32);
        let t0 = level as f64 * window;
        for i in 0..count {
            // Arrivals floored to integers: the whole family stays
            // integral so the LP lower bound applies exactly.
            b.push((t0 + i as f64 * window / count as f64).floor(), size);
        }
    }
    b.build().expect("valid cascade")
}

/// The **geometric burst**: all `levels + 1` size classes arrive together
/// at `t = 0`; class `ℓ` holds `ratio^ℓ` jobs of size `ratio^(levels−ℓ)`
/// (equal total work per class). This is the natural finite approximation
/// of the recursive constructions behind RR's cited lower bounds: in one
/// busy period, RR time-shares across all scales so the few huge jobs pay
/// an age penalty for every smaller class, while SRPT clears classes
/// smallest-first. The measured ℓ2 ratio grows with `levels` at speed 1
/// and stays above 1 for speeds below ≈ 3/2 (experiment E3).
pub fn geometric_burst(levels: u32, ratio: u32) -> Trace {
    assert!(ratio >= 2);
    let mut b = TraceBuilder::new();
    for level in 0..=levels {
        let count = (ratio as usize).pow(level);
        let size = (ratio as f64).powi((levels - level) as i32);
        for _ in 0..count {
            b.push(0.0, size);
        }
    }
    b.build().expect("valid burst")
}

/// A critically-loaded stream of equal jobs: `n` jobs of size 1, one
/// arriving every `1/load` time units. At `load` near 1 on a unit-speed
/// machine the alive population under RR builds up; speeding RR up drains
/// it. Used in the speed-sweep experiment (E4) as the "congestion ramp"
/// counterpart of [`geometric_cascade`].
pub fn critical_stream(n: usize, load: f64) -> Trace {
    let gap = 1.0 / load;
    let mut b = TraceBuilder::new();
    for i in 0..n {
        b.push(i as f64 * gap, 1.0);
    }
    b.build().expect("valid stream")
}

/// Two interleaved job classes with a shared deadline structure:
/// `pairs` big jobs of size `big` arrive at `0, big, 2·big, …` while each
/// big job's slot also receives `per_big` small jobs of size
/// `big/per_big`. Keeps the machine exactly busy while forcing any fair
/// scheduler to time-share classes — a stress case for the ℓk trade-off
/// between finishing bigs (variance) and smalls (mean).
pub fn interleaved_classes(pairs: usize, big: f64, per_big: usize) -> Trace {
    let small = big / per_big as f64;
    let mut b = TraceBuilder::new();
    for i in 0..pairs {
        let t0 = i as f64 * 2.0 * big;
        b.push(t0, big);
        for j in 0..per_big {
            b.push(t0 + j as f64 * small, small);
        }
    }
    b.build().expect("valid interleaved instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_batch_shape() {
        let t = equal_batch(5, 2.0);
        assert_eq!(t.len(), 5);
        assert!(t.jobs().iter().all(|j| j.arrival == 0.0 && j.size == 2.0));
    }

    #[test]
    fn starvation_instance_saturates() {
        let t = srpt_starvation(10.0, 1.0, 50, 1.0);
        assert_eq!(t.len(), 51);
        // Shorts arrive back to back: gap = size.
        let shorts: Vec<_> = t.jobs().iter().filter(|j| j.size == 1.0).collect();
        assert_eq!(shorts.len(), 50);
        for w in shorts.windows(2) {
            assert!((w[1].arrival - w[0].arrival - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cascade_counts_and_work() {
        let levels = 4;
        let t = geometric_cascade(levels, 0.9);
        assert_eq!(t.len(), (1 << (levels + 1)) - 1);
        // Every level contributes 2^levels work.
        let per_level = (2f64).powi(levels as i32);
        assert!((t.total_size() - per_level * (levels + 1) as f64).abs() < 1e-9);
        // Offered load ≈ 0.9 over the arrival span plus one window
        // (window length is ceiled to keep arrivals integral).
        let window = (per_level / 0.9).ceil();
        let horizon = window * (levels + 1) as f64;
        assert!((t.total_size() / horizon - 0.9).abs() < 0.05);
        assert!(t.is_integral(1e-9));
    }

    #[test]
    fn cascade_big_jobs_come_first() {
        let t = geometric_cascade(3, 1.0);
        assert_eq!(t.job(0).size, 8.0);
        let last = t.job((t.len() - 1) as u32);
        assert_eq!(last.size, 1.0);
    }

    #[test]
    fn burst_counts_and_sizes() {
        let t = geometric_burst(3, 2);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert!(t.jobs().iter().all(|j| j.arrival == 0.0));
        // Equal work per class: 4 classes × 8.
        assert!((t.total_size() - 32.0).abs() < 1e-12);
        assert_eq!(t.max_size(), 8.0);
        let units = t.jobs().iter().filter(|j| j.size == 1.0).count();
        assert_eq!(units, 8);
    }

    #[test]
    fn critical_stream_spacing() {
        let t = critical_stream(4, 0.5);
        let arrivals: Vec<f64> = t.jobs().iter().map(|j| j.arrival).collect();
        assert_eq!(arrivals, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn interleaved_classes_work_balance() {
        let t = interleaved_classes(3, 4.0, 4);
        assert_eq!(t.len(), 3 * 5);
        // Per slot: one big (4.0) + 4 smalls (1.0 each) = 8.0 work per 8.0
        // time → exactly critical.
        assert!((t.total_size() - 24.0).abs() < 1e-12);
    }
}

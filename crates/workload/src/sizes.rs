//! Job-size distributions with reproducible hand-rolled samplers.

use crate::error::WorkloadError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A job-size distribution. All variants have finite mean (required to
/// target a utilization); Pareto requires `alpha > 1` for that reason.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every job has exactly this size.
    Deterministic(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean job size.
        mean: f64,
    },
    /// Pareto with shape `alpha > 1` and scale (minimum) `min`:
    /// `P(X > x) = (min/x)^alpha`. The heavy-tailed regime `alpha ∈ (1, 2]`
    /// is where fairness questions bite (a few huge jobs among many small).
    Pareto {
        /// Shape (tail) parameter, `> 1` for a finite mean.
        alpha: f64,
        /// Scale (minimum size).
        min: f64,
    },
    /// `size = small` with probability `1 − p_large`, else `large` — the
    /// sharpest "mice and elephants" mix.
    Bimodal {
        /// Mouse size.
        small: f64,
        /// Elephant size.
        large: f64,
        /// Probability of an elephant.
        p_large: f64,
    },
    /// Lognormal: `exp(mu + sigma·Z)` with standard normal `Z`.
    LogNormal {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
    },
}

impl SizeDist {
    /// Check every parameter, rejecting configurations whose samples would
    /// not be finite positive sizes (or whose mean — used to target a
    /// utilization — is not finite): `Pareto { alpha ≤ 1 }` has an
    /// infinite mean, `Exponential { mean: 0.0 }` emits zero sizes, NaN
    /// anywhere poisons the whole trace.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let bad = |dist, param, value: f64| WorkloadError::BadSizeParam { dist, param, value };
        let finite_pos = |v: f64| v.is_finite() && v > 0.0;
        match *self {
            SizeDist::Deterministic(p) => {
                if !finite_pos(p) {
                    return Err(bad("deterministic", "size", p));
                }
            }
            SizeDist::Uniform { lo, hi } => {
                if !finite_pos(lo) {
                    return Err(bad("uniform", "lo", lo));
                }
                if !hi.is_finite() || hi < lo {
                    return Err(bad("uniform", "hi", hi));
                }
            }
            SizeDist::Exponential { mean } => {
                if !finite_pos(mean) {
                    return Err(bad("exponential", "mean", mean));
                }
            }
            SizeDist::Pareto { alpha, min } => {
                if !alpha.is_finite() || alpha <= 1.0 {
                    return Err(bad("pareto", "alpha", alpha));
                }
                if !finite_pos(min) {
                    return Err(bad("pareto", "min", min));
                }
            }
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => {
                if !finite_pos(small) {
                    return Err(bad("bimodal", "small", small));
                }
                if !finite_pos(large) {
                    return Err(bad("bimodal", "large", large));
                }
                if !(0.0..=1.0).contains(&p_large) {
                    return Err(bad("bimodal", "p_large", p_large));
                }
            }
            SizeDist::LogNormal { mu, sigma } => {
                if !mu.is_finite() {
                    return Err(bad("lognormal", "mu", mu));
                }
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(bad("lognormal", "sigma", sigma));
                }
            }
        }
        Ok(())
    }

    /// Expected job size.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Deterministic(p) => p,
            SizeDist::Uniform { lo, hi } => 0.5 * (lo + hi),
            SizeDist::Exponential { mean } => mean,
            SizeDist::Pareto { alpha, min } => {
                debug_assert!(alpha > 1.0, "Pareto needs alpha > 1 for finite mean");
                alpha * min / (alpha - 1.0)
            }
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => small * (1.0 - p_large) + large * p_large,
            SizeDist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }

    /// Draw one size. Guaranteed positive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            SizeDist::Deterministic(p) => p,
            SizeDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            SizeDist::Exponential { mean } => {
                let u: f64 = open01(rng);
                -mean * u.ln()
            }
            SizeDist::Pareto { alpha, min } => {
                let u: f64 = open01(rng);
                min * u.powf(-1.0 / alpha)
            }
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => {
                if rng.gen::<f64>() < p_large {
                    large
                } else {
                    small
                }
            }
            SizeDist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
        }
    }

    /// Short label for tables (e.g. `"pareto(1.5)"`).
    pub fn label(&self) -> String {
        match *self {
            SizeDist::Deterministic(p) => format!("det({p})"),
            SizeDist::Uniform { lo, hi } => format!("unif[{lo},{hi}]"),
            SizeDist::Exponential { mean } => format!("exp({mean})"),
            SizeDist::Pareto { alpha, .. } => format!("pareto({alpha})"),
            SizeDist::Bimodal { p_large, .. } => format!("bimodal(p={p_large})"),
            SizeDist::LogNormal { sigma, .. } => format!("lognorm(σ={sigma})"),
        }
    }
}

/// Uniform draw from the open interval `(0, 1)` — safe to pass to `ln` and
/// negative powers.
fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Standard normal via Box–Muller (keeps us off extra dependencies and
/// stable across `rand` versions).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(d: SizeDist, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_samples_positive() {
        let dists = [
            SizeDist::Deterministic(2.0),
            SizeDist::Uniform { lo: 0.5, hi: 1.5 },
            SizeDist::Exponential { mean: 1.0 },
            SizeDist::Pareto {
                alpha: 1.5,
                min: 0.5,
            },
            SizeDist::Bimodal {
                small: 1.0,
                large: 50.0,
                p_large: 0.05,
            },
            SizeDist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for d in dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) > 0.0, "{d:?}");
            }
        }
    }

    #[test]
    fn empirical_means_match_theory() {
        // Light-tailed: tight tolerance.
        for d in [
            SizeDist::Deterministic(3.0),
            SizeDist::Uniform { lo: 1.0, hi: 3.0 },
            SizeDist::Exponential { mean: 2.0 },
            SizeDist::Bimodal {
                small: 1.0,
                large: 10.0,
                p_large: 0.2,
            },
        ] {
            let m = empirical_mean(d, 200_000);
            assert!(
                (m - d.mean()).abs() / d.mean() < 0.02,
                "{d:?}: {m} vs {}",
                d.mean()
            );
        }
        // Heavy-tailed: looser.
        let p = SizeDist::Pareto {
            alpha: 2.5,
            min: 1.0,
        };
        let m = empirical_mean(p, 400_000);
        assert!(
            (m - p.mean()).abs() / p.mean() < 0.05,
            "{m} vs {}",
            p.mean()
        );
        let l = SizeDist::LogNormal {
            mu: 0.0,
            sigma: 0.5,
        };
        let m = empirical_mean(l, 200_000);
        assert!(
            (m - l.mean()).abs() / l.mean() < 0.03,
            "{m} vs {}",
            l.mean()
        );
    }

    #[test]
    fn pareto_tail_exponent() {
        // P(X > 2·min) should be 2^-alpha.
        let d = SizeDist::Pareto {
            alpha: 2.0,
            min: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let over = (0..n).filter(|_| d.sample(&mut rng) > 2.0).count() as f64 / n as f64;
        assert!((over - 0.25).abs() < 0.01, "{over}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = SizeDist::Uniform { lo: 2.0, hi: 5.0 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn determinism_with_seed() {
        let d = SizeDist::Exponential { mean: 1.0 };
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        use crate::error::WorkloadError;
        for good in [
            SizeDist::Deterministic(2.0),
            SizeDist::Uniform { lo: 1.0, hi: 1.0 },
            SizeDist::Exponential { mean: 0.5 },
            SizeDist::Pareto {
                alpha: 1.5,
                min: 0.5,
            },
            SizeDist::Bimodal {
                small: 1.0,
                large: 100.0,
                p_large: 0.0,
            },
            SizeDist::LogNormal {
                mu: -1.0,
                sigma: 0.0,
            },
        ] {
            assert!(good.validate().is_ok(), "{good:?}");
        }
        for bad in [
            SizeDist::Deterministic(0.0),
            SizeDist::Deterministic(f64::NAN),
            SizeDist::Uniform { lo: 0.0, hi: 1.0 },
            SizeDist::Uniform { lo: 2.0, hi: 1.0 },
            SizeDist::Exponential { mean: 0.0 },
            SizeDist::Exponential {
                mean: f64::INFINITY,
            },
            // alpha = 1 has infinite mean: no utilization can be targeted.
            SizeDist::Pareto {
                alpha: 1.0,
                min: 1.0,
            },
            SizeDist::Pareto {
                alpha: 2.0,
                min: 0.0,
            },
            SizeDist::Bimodal {
                small: 1.0,
                large: 2.0,
                p_large: 1.5,
            },
            SizeDist::Bimodal {
                small: -1.0,
                large: 2.0,
                p_large: 0.5,
            },
            SizeDist::LogNormal {
                mu: f64::NAN,
                sigma: 1.0,
            },
            SizeDist::LogNormal {
                mu: 0.0,
                sigma: -1.0,
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(WorkloadError::BadSizeParam { .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(SizeDist::Deterministic(1.0).label(), "det(1)");
        assert!(SizeDist::Pareto {
            alpha: 1.5,
            min: 1.0
        }
        .label()
        .contains("1.5"));
    }
}

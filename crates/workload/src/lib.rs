#![warn(missing_docs)]

//! # tf-workload — instance generation for the experiment suite
//!
//! The paper proves worst-case guarantees over *all* instances; an
//! empirical reproduction needs concrete instance families that (a) stress
//! the mechanisms the proof reasons about and (b) include the explicit
//! adversarial constructions behind the cited lower bounds.
//!
//! * [`SizeDist`] — job-size distributions (deterministic, uniform,
//!   exponential, Pareto heavy-tail, bimodal, lognormal), with hand-rolled
//!   samplers over `rand`'s uniform source so results are reproducible
//!   across crate versions;
//! * [`PoissonWorkload`] — the M/G/m-style random workload: Poisson
//!   arrivals at a target utilization with any size distribution;
//! * [`adversarial`] — named hard instances: equal-size batches (maximum
//!   sharing), the long-job-plus-short-stream *PS killer*, the geometric
//!   cascade driving RR's low-speed blow-up (experiment E3), and the
//!   SRPT-starvation instance motivating temporal fairness (experiment E7);
//! * [`OpenWorkload`] — *open* (streaming) workloads for the
//!   bounded-memory engine: jobs generated on the fly from Poisson, MMPP,
//!   heavy-tailed renewal, or empirical-histogram arrival processes, with
//!   per-stream seeded RNGs and count/duration bounds;
//! * [`traceio`] — JSON (de)serialization of traces and workload specs.
//!
//! All parameters are validated with typed [`WorkloadError`]s before any
//! generation ([`ArrivalProcess::validate`], [`SizeDist::validate`],
//! [`OpenWorkload::validate`]), so a NaN rate or a zero interval fails at
//! construction rather than poisoning a long run.

pub mod adversarial;
pub mod arrivals;
pub mod error;
pub mod sizes;
pub mod spec;
pub mod stream;
pub mod traceio;

pub use arrivals::ArrivalProcess;
pub use error::WorkloadError;
pub use sizes::SizeDist;
pub use spec::{PoissonWorkload, WorkloadSpec};
pub use stream::{Histogram, OpenJobStream, OpenWorkload, StreamArrivals, StreamBound};

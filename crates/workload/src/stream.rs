//! Open (streaming) workload generation.
//!
//! The closed-workload path ([`crate::WorkloadSpec`]) materialises a
//! `Vec<f64>` of arrivals up front, which caps instances at available
//! memory. An [`OpenWorkload`] instead yields jobs *on the fly* through
//! [`tf_simcore::JobSource`], so the streaming engine
//! ([`tf_simcore::simulate_stream`]) can push through 10⁷+ jobs in flat
//! memory.
//!
//! Design points:
//!
//! * **Per-stream RNGs.** Arrival gaps and job sizes draw from two
//!   independent `StdRng`s whose seeds are derived from the workload seed
//!   by splitmix64. The closed path interleaves one RNG across both
//!   draws, so changing `n` perturbs every size; here the k-th job's size
//!   is a function of `seed` and `k` alone, regardless of the bound.
//! * **Bounds.** A stream is finite by construction: either a job
//!   [`StreamBound::Count`] or a time horizon [`StreamBound::Duration`]
//!   (jobs arriving strictly before the horizon). Validation rejects the
//!   one unbounded combination (duration bound over
//!   [`ArrivalProcess::AllAtOnce`]).
//! * **Validation.** [`OpenWorkload::stream`] validates every parameter
//!   with the typed [`WorkloadError`]s, so a NaN rate fails at
//!   construction rather than 40 minutes into a 10⁷-job run.

use crate::arrivals::ArrivalProcess;
use crate::error::WorkloadError;
use crate::sizes::SizeDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tf_simcore::{JobSource, SourcedJob};

/// splitmix64 finalizer: derives independent per-stream seeds from one
/// workload seed (the standard seed-sequencing trick; a single increment
/// difference in input decorrelates the outputs).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An empirical distribution over a binned histogram: bin `i` spans
/// `[edges[i], edges[i+1])` and carries probability mass proportional to
/// `weights[i]`; sampling picks a bin by weight and a uniform point
/// within it. Used for replaying measured inter-arrival gap histograms
/// (the "empirical" stream family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges, strictly increasing, `edges[0] ≥ 0`; `len ≥ 2`.
    pub edges: Vec<f64>,
    /// Per-bin weights (`len == edges.len() − 1`), non-negative with a
    /// positive sum; need not be normalised.
    pub weights: Vec<f64>,
}

impl Histogram {
    /// A histogram from bin edges and weights.
    pub fn new(edges: Vec<f64>, weights: Vec<f64>) -> Self {
        Histogram { edges, weights }
    }

    /// Check the histogram is well-formed (see field docs).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let bad = |msg: String| Err(WorkloadError::BadHistogram(msg));
        if self.edges.len() < 2 {
            return bad(format!("need ≥ 2 edges, got {}", self.edges.len()));
        }
        if self.weights.len() != self.edges.len() - 1 {
            return bad(format!(
                "{} edges need {} weights, got {}",
                self.edges.len(),
                self.edges.len() - 1,
                self.weights.len()
            ));
        }
        if !self.edges.iter().all(|e| e.is_finite()) || self.edges[0] < 0.0 {
            return bad("edges must be finite and non-negative".into());
        }
        if self.edges.windows(2).any(|w| w[0] >= w[1]) {
            return bad("edges must be strictly increasing".into());
        }
        if !self.weights.iter().all(|w| w.is_finite() && *w >= 0.0) {
            return bad("weights must be finite and non-negative".into());
        }
        let total: f64 = self.weights.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            return bad(format!(
                "weights must have positive finite sum, got {total}"
            ));
        }
        Ok(())
    }

    /// Mean of the distribution (bin-midpoint approximation, exact for
    /// the uniform-within-bin sampling used here).
    pub fn mean(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .zip(self.edges.windows(2))
            .map(|(w, e)| w * 0.5 * (e[0] + e[1]))
            .sum::<f64>()
            / total
    }

    /// Draw one value: a weighted bin choice, then uniform within the bin.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (w, e) in self.weights.iter().zip(self.edges.windows(2)) {
            if u < *w {
                return rng.gen_range(e[0]..e[1]);
            }
            u -= w;
        }
        // Numerical spill (u == total): last non-empty bin.
        let i = self
            .weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("validated: positive total weight");
        rng.gen_range(self.edges[i]..self.edges[i + 1])
    }
}

/// Arrival process of an open stream. Extends the closed-form
/// [`ArrivalProcess`] family with processes that only make sense (or only
/// stay tractable) in streaming form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamArrivals {
    /// Any closed-form process, streamed (Poisson, periodic, batched,
    /// all-at-once, diurnal).
    Process(ArrivalProcess),
    /// Markov-modulated Poisson process: states are visited cyclically,
    /// each visit lasting an `Exp(mean_sojourn)` time during which
    /// arrivals are Poisson at that state's rate. The classic bursty
    /// overload model (e.g. an on/off source with `rates: [λ, 0]`).
    Mmpp {
        /// Per-state arrival rates; all finite and `≥ 0`, at least one
        /// `> 0`.
        rates: Vec<f64>,
        /// Mean sojourn time in each state, finite and positive.
        mean_sojourn: f64,
    },
    /// Heavy-tailed renewal process: i.i.d. Pareto inter-arrival gaps
    /// (`P(G > g) = (min_gap/g)^alpha`, `alpha > 1`) — arrival *bursts*
    /// separated by occasional very long quiet periods.
    ParetoGaps {
        /// Tail exponent of the gap distribution, `> 1` for a finite
        /// mean gap (and hence a well-defined rate).
        alpha: f64,
        /// Minimum (scale) gap, finite and positive.
        min_gap: f64,
    },
    /// Renewal process with inter-arrival gaps drawn from a measured
    /// [`Histogram`] (empirical replay).
    Empirical(Histogram),
}

impl StreamArrivals {
    /// Check every parameter (see variant docs for the constraints).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            StreamArrivals::Process(p) => p.validate(),
            StreamArrivals::Mmpp {
                rates,
                mean_sojourn,
            } => {
                if rates.is_empty() {
                    return Err(WorkloadError::BadMmpp("no states".into()));
                }
                if !rates.iter().all(|r| r.is_finite() && *r >= 0.0) {
                    return Err(WorkloadError::BadMmpp(
                        "state rates must be finite and non-negative".into(),
                    ));
                }
                if !rates.iter().any(|r| *r > 0.0) {
                    return Err(WorkloadError::BadMmpp(
                        "at least one state needs a positive rate".into(),
                    ));
                }
                if !(mean_sojourn.is_finite() && *mean_sojourn > 0.0) {
                    return Err(WorkloadError::BadMmpp(format!(
                        "mean sojourn {mean_sojourn} must be finite and positive"
                    )));
                }
                Ok(())
            }
            StreamArrivals::ParetoGaps { alpha, min_gap } => {
                if !(alpha.is_finite() && *alpha > 1.0) {
                    return Err(WorkloadError::BadRate(*alpha));
                }
                if !(min_gap.is_finite() && *min_gap > 0.0) {
                    return Err(WorkloadError::BadInterval(*min_gap));
                }
                Ok(())
            }
            StreamArrivals::Empirical(h) => {
                h.validate()?;
                if h.mean() <= 0.0 {
                    return Err(WorkloadError::BadHistogram(
                        "mean inter-arrival gap must be positive".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Long-run arrival rate (jobs per unit time); infinite for
    /// all-at-once.
    pub fn rate(&self) -> f64 {
        match self {
            StreamArrivals::Process(p) => p.rate(),
            StreamArrivals::Mmpp {
                rates,
                mean_sojourn: _,
            } => {
                // Equal mean sojourns ⇒ equal long-run state occupancy.
                rates.iter().sum::<f64>() / rates.len() as f64
            }
            StreamArrivals::ParetoGaps { alpha, min_gap } => {
                (alpha - 1.0) / (alpha * min_gap) // 1 / mean gap
            }
            StreamArrivals::Empirical(h) => 1.0 / h.mean(),
        }
    }

    /// Whether the process emits unboundedly many jobs in finite time
    /// (only [`ArrivalProcess::AllAtOnce`] does).
    fn bursts_forever_at_once(&self) -> bool {
        matches!(self, StreamArrivals::Process(ArrivalProcess::AllAtOnce))
    }
}

/// When an open stream ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamBound {
    /// Exactly this many jobs.
    Count(u64),
    /// All jobs arriving strictly before this time.
    Duration(f64),
}

impl StreamBound {
    /// Check the bound is finite and positive.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            StreamBound::Count(n) => {
                if n == 0 {
                    return Err(WorkloadError::BadBound(0.0));
                }
            }
            StreamBound::Duration(t) => {
                if !(t.is_finite() && t > 0.0) {
                    return Err(WorkloadError::BadBound(t));
                }
            }
        }
        Ok(())
    }
}

/// A fully-specified open workload: stream arrivals × sizes × bound ×
/// seed. Serializable so experiments can record exactly what they ran —
/// the streaming counterpart of [`crate::WorkloadSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenWorkload {
    /// Arrival process.
    pub arrivals: StreamArrivals,
    /// Size distribution.
    pub sizes: SizeDist,
    /// Termination bound.
    pub bound: StreamBound,
    /// RNG seed — same spec + same seed ⇒ identical stream.
    pub seed: u64,
}

impl OpenWorkload {
    /// Poisson arrivals targeting utilization `rho` on `m` unit-speed
    /// machines (`λ = ρ·m / E[p]`) — the streaming counterpart of
    /// [`crate::PoissonWorkload`].
    pub fn poisson(rho: f64, m: usize, sizes: SizeDist, bound: StreamBound, seed: u64) -> Self {
        let rate = rho * m as f64 / sizes.mean();
        OpenWorkload {
            arrivals: StreamArrivals::Process(ArrivalProcess::Poisson { rate }),
            sizes,
            bound,
            seed,
        }
    }

    /// Check every parameter, including the bound/process combination.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.arrivals.validate()?;
        self.sizes.validate()?;
        self.bound.validate()?;
        if matches!(self.bound, StreamBound::Duration(_)) && self.arrivals.bursts_forever_at_once()
        {
            return Err(WorkloadError::UnboundedStream);
        }
        Ok(())
    }

    /// Validate and open the job stream.
    pub fn stream(&self) -> Result<OpenJobStream, WorkloadError> {
        self.validate()?;
        Ok(OpenJobStream::new(self))
    }

    /// Label for tables: `"poisson sizes=exp(1) ×1000000"`-style.
    pub fn label(&self) -> String {
        let arr = match &self.arrivals {
            StreamArrivals::Process(p) => match p {
                ArrivalProcess::Poisson { .. } => "poisson".to_string(),
                ArrivalProcess::Periodic { .. } => "periodic".to_string(),
                ArrivalProcess::Batched { .. } => "batched".to_string(),
                ArrivalProcess::AllAtOnce => "all-at-once".to_string(),
                ArrivalProcess::Diurnal { .. } => "diurnal".to_string(),
            },
            StreamArrivals::Mmpp { rates, .. } => format!("mmpp({})", rates.len()),
            StreamArrivals::ParetoGaps { alpha, .. } => format!("pareto-gaps({alpha})"),
            StreamArrivals::Empirical(_) => "empirical".to_string(),
        };
        let bound = match self.bound {
            StreamBound::Count(n) => format!("×{n}"),
            StreamBound::Duration(t) => format!("horizon={t}"),
        };
        format!("{arr} sizes={} {bound}", self.sizes.label())
    }
}

/// Mutable per-variant arrival state of a running stream.
#[derive(Debug, Clone)]
enum ArrivalState {
    /// Counter for periodic/batched processes.
    Indexed { i: u64 },
    /// Current MMPP state and the time its sojourn ends.
    Mmpp { state: usize, state_end: f64 },
    /// No extra state (Poisson, all-at-once, diurnal, renewal gaps).
    None,
}

/// A running open workload: implements [`JobSource`] for
/// [`tf_simcore::simulate_stream`]. Holds O(1) state — two RNGs, the
/// clock, and a counter.
#[derive(Debug, Clone)]
pub struct OpenJobStream {
    arrivals: StreamArrivals,
    sizes: SizeDist,
    bound: StreamBound,
    arrival_rng: StdRng,
    size_rng: StdRng,
    state: ArrivalState,
    /// Arrival clock: time of the last emitted arrival.
    t: f64,
    emitted: u64,
}

impl OpenJobStream {
    fn new(w: &OpenWorkload) -> Self {
        let state = match &w.arrivals {
            StreamArrivals::Process(
                ArrivalProcess::Periodic { .. } | ArrivalProcess::Batched { .. },
            ) => ArrivalState::Indexed { i: 0 },
            StreamArrivals::Mmpp { .. } => ArrivalState::Mmpp {
                state: 0,
                state_end: 0.0, // first sojourn drawn lazily at t = 0
            },
            _ => ArrivalState::None,
        };
        OpenJobStream {
            arrivals: w.arrivals.clone(),
            sizes: w.sizes,
            bound: w.bound,
            arrival_rng: StdRng::seed_from_u64(splitmix64(w.seed ^ 0x00A5)),
            size_rng: StdRng::seed_from_u64(splitmix64(w.seed ^ 0x5A00)),
            state,
            t: 0.0,
            emitted: 0,
        }
    }

    /// Jobs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Exponential gap with rate `rate` (mirrors the closed generator's
    /// inversion sampling, including its open-interval draw).
    fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Advance the arrival clock to the next arrival and return it.
    fn next_arrival(&mut self) -> f64 {
        match &self.arrivals {
            StreamArrivals::Process(p) => match *p {
                ArrivalProcess::Poisson { rate } => {
                    self.t += Self::exp_gap(&mut self.arrival_rng, rate);
                    self.t
                }
                ArrivalProcess::Periodic { interval } => {
                    let ArrivalState::Indexed { i } = &mut self.state else {
                        unreachable!("periodic streams carry an index");
                    };
                    let t = *i as f64 * interval;
                    *i += 1;
                    self.t = t;
                    t
                }
                ArrivalProcess::Batched {
                    interval,
                    per_batch,
                } => {
                    let ArrivalState::Indexed { i } = &mut self.state else {
                        unreachable!("batched streams carry an index");
                    };
                    let per_batch = per_batch.max(1) as u64;
                    let t = (*i / per_batch) as f64 * interval;
                    *i += 1;
                    self.t = t;
                    t
                }
                ArrivalProcess::AllAtOnce => 0.0,
                ArrivalProcess::Diurnal {
                    base,
                    amplitude,
                    period,
                } => {
                    // Thinning at the peak rate, as in the closed path.
                    let lmax = base * (1.0 + amplitude);
                    loop {
                        self.t += Self::exp_gap(&mut self.arrival_rng, lmax);
                        let rate = base
                            * (1.0 + amplitude * (std::f64::consts::TAU * self.t / period).sin());
                        if self.arrival_rng.gen::<f64>() * lmax <= rate {
                            return self.t;
                        }
                    }
                }
            },
            StreamArrivals::Mmpp {
                rates,
                mean_sojourn,
            } => {
                let ArrivalState::Mmpp { state, state_end } = &mut self.state else {
                    unreachable!("MMPP streams carry modulation state");
                };
                loop {
                    if self.t >= *state_end {
                        // Sojourn over: rotate to the next state and draw
                        // its length (memoryless, so no residual to carry).
                        *state = (*state + 1) % rates.len();
                        *state_end =
                            self.t + Self::exp_gap(&mut self.arrival_rng, 1.0 / mean_sojourn);
                        continue;
                    }
                    let rate = rates[*state];
                    if rate <= 0.0 {
                        self.t = *state_end; // silent state: skip it
                        continue;
                    }
                    let cand = self.t + Self::exp_gap(&mut self.arrival_rng, rate);
                    if cand < *state_end {
                        self.t = cand;
                        return cand;
                    }
                    // No arrival before the state ends; memorylessness
                    // lets us resume fresh from the boundary.
                    self.t = *state_end;
                }
            }
            StreamArrivals::ParetoGaps { alpha, min_gap } => {
                let u: f64 = self.arrival_rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.t += min_gap * u.powf(-1.0 / alpha);
                self.t
            }
            StreamArrivals::Empirical(h) => {
                self.t += h.sample(&mut self.arrival_rng);
                self.t
            }
        }
    }
}

impl JobSource for OpenJobStream {
    fn next_job(&mut self) -> Option<SourcedJob> {
        if let StreamBound::Count(n) = self.bound {
            if self.emitted >= n {
                return None;
            }
        }
        let arrival = self.next_arrival();
        if let StreamBound::Duration(horizon) = self.bound {
            if arrival >= horizon {
                return None;
            }
        }
        let size = self.sizes.sample(&mut self.size_rng);
        self.emitted += 1;
        Some(SourcedJob::new(arrival, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &OpenWorkload) -> Vec<SourcedJob> {
        let mut s = w.stream().unwrap();
        std::iter::from_fn(|| s.next_job()).collect()
    }

    fn poisson_count(n: u64, seed: u64) -> OpenWorkload {
        OpenWorkload::poisson(
            0.9,
            1,
            SizeDist::Exponential { mean: 1.0 },
            StreamBound::Count(n),
            seed,
        )
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let w = poisson_count(500, 7);
        assert_eq!(drain(&w), drain(&w));
        let other = OpenWorkload {
            seed: 8,
            ..w.clone()
        };
        assert_ne!(drain(&w), drain(&other));
    }

    #[test]
    fn sizes_are_independent_of_the_bound() {
        // Per-stream RNGs: job k's size must not depend on how many jobs
        // the stream is bounded to (the closed path interleaves one RNG
        // and loses this property).
        let short = drain(&poisson_count(50, 3));
        let long = drain(&poisson_count(500, 3));
        for (a, b) in short.iter().zip(&long) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn count_and_duration_bounds_hold() {
        let w = poisson_count(123, 1);
        assert_eq!(drain(&w).len(), 123);

        let w = OpenWorkload {
            bound: StreamBound::Duration(50.0),
            ..w
        };
        let jobs = drain(&w);
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.arrival < 50.0));
        // ρ=0.9, unit mean sizes ⇒ λ=0.9 ⇒ ≈45 jobs in 50 time units.
        assert!((20..=80).contains(&jobs.len()), "{}", jobs.len());
    }

    #[test]
    fn arrivals_are_monotone_and_sizes_positive_across_families() {
        let families = [
            StreamArrivals::Process(ArrivalProcess::Poisson { rate: 2.0 }),
            StreamArrivals::Process(ArrivalProcess::Periodic { interval: 0.5 }),
            StreamArrivals::Process(ArrivalProcess::Batched {
                interval: 1.0,
                per_batch: 3,
            }),
            StreamArrivals::Process(ArrivalProcess::Diurnal {
                base: 2.0,
                amplitude: 0.5,
                period: 20.0,
            }),
            StreamArrivals::Mmpp {
                rates: vec![4.0, 0.0, 1.0],
                mean_sojourn: 5.0,
            },
            StreamArrivals::ParetoGaps {
                alpha: 1.8,
                min_gap: 0.1,
            },
            StreamArrivals::Empirical(Histogram::new(
                vec![0.0, 0.5, 1.0, 4.0],
                vec![5.0, 3.0, 1.0],
            )),
        ];
        for arr in families {
            let w = OpenWorkload {
                arrivals: arr.clone(),
                sizes: SizeDist::Pareto {
                    alpha: 1.7,
                    min: 0.2,
                },
                bound: StreamBound::Count(2_000),
                seed: 11,
            };
            let jobs = drain(&w);
            assert_eq!(jobs.len(), 2_000, "{arr:?}");
            let mut prev = 0.0;
            for j in &jobs {
                assert!(j.arrival >= prev, "{arr:?}");
                assert!(j.size > 0.0 && j.size.is_finite(), "{arr:?}");
                prev = j.arrival;
            }
        }
    }

    #[test]
    fn long_run_rates_match_rate_across_families() {
        let families = [
            StreamArrivals::Process(ArrivalProcess::Poisson { rate: 2.0 }),
            StreamArrivals::Mmpp {
                rates: vec![3.0, 1.0],
                mean_sojourn: 2.0,
            },
            StreamArrivals::ParetoGaps {
                alpha: 2.5,
                min_gap: 0.3,
            },
            StreamArrivals::Empirical(Histogram::new(vec![0.0, 1.0, 2.0], vec![1.0, 1.0])),
        ];
        for arr in families {
            let expect = arr.rate();
            let w = OpenWorkload {
                arrivals: arr.clone(),
                sizes: SizeDist::Deterministic(1.0),
                bound: StreamBound::Count(200_000),
                seed: 5,
            };
            let jobs = drain(&w);
            let measured = jobs.len() as f64 / jobs.last().unwrap().arrival;
            assert!(
                (measured - expect).abs() / expect < 0.05,
                "{arr:?}: measured {measured}, expected {expect}"
            );
        }
    }

    #[test]
    fn mmpp_is_actually_bursty() {
        // On/off source: arrivals cluster in the on-state, so the gap
        // variance is far above the Poisson variance at the same mean rate.
        let w = OpenWorkload {
            arrivals: StreamArrivals::Mmpp {
                rates: vec![8.0, 0.0],
                mean_sojourn: 10.0,
            },
            sizes: SizeDist::Deterministic(1.0),
            bound: StreamBound::Count(50_000),
            seed: 2,
        };
        let jobs = drain(&w);
        let gaps: Vec<f64> = jobs
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        // Exponential gaps would have var ≈ mean²; bursty gaps are far
        // over-dispersed.
        assert!(var > 3.0 * mean * mean, "var {var}, mean {mean}");
    }

    #[test]
    fn validation_rejects_bad_streams() {
        let base = poisson_count(10, 0);
        assert!(base.validate().is_ok());

        let bad = OpenWorkload {
            arrivals: StreamArrivals::Process(ArrivalProcess::Poisson { rate: 0.0 }),
            ..base.clone()
        };
        assert_eq!(bad.stream().err(), Some(WorkloadError::BadRate(0.0)));

        let bad = OpenWorkload {
            arrivals: StreamArrivals::Mmpp {
                rates: vec![],
                mean_sojourn: 1.0,
            },
            ..base.clone()
        };
        assert!(matches!(bad.stream(), Err(WorkloadError::BadMmpp(_))));

        let bad = OpenWorkload {
            arrivals: StreamArrivals::Mmpp {
                rates: vec![0.0, 0.0],
                mean_sojourn: 1.0,
            },
            ..base.clone()
        };
        assert!(matches!(bad.stream(), Err(WorkloadError::BadMmpp(_))));

        let bad = OpenWorkload {
            arrivals: StreamArrivals::ParetoGaps {
                alpha: 1.0,
                min_gap: 1.0,
            },
            ..base.clone()
        };
        assert!(bad.stream().is_err());

        let bad = OpenWorkload {
            arrivals: StreamArrivals::Empirical(Histogram::new(vec![1.0, 0.5], vec![1.0])),
            ..base.clone()
        };
        assert!(matches!(bad.stream(), Err(WorkloadError::BadHistogram(_))));

        let bad = OpenWorkload {
            bound: StreamBound::Count(0),
            ..base.clone()
        };
        assert_eq!(bad.stream().err(), Some(WorkloadError::BadBound(0.0)));

        let bad = OpenWorkload {
            bound: StreamBound::Duration(f64::NAN),
            ..base.clone()
        };
        assert!(bad.stream().is_err());

        // The one genuinely unbounded combination.
        let bad = OpenWorkload {
            arrivals: StreamArrivals::Process(ArrivalProcess::AllAtOnce),
            bound: StreamBound::Duration(10.0),
            ..base.clone()
        };
        assert_eq!(bad.stream().err(), Some(WorkloadError::UnboundedStream));
        // …while the count-bounded form is fine.
        let ok = OpenWorkload {
            arrivals: StreamArrivals::Process(ArrivalProcess::AllAtOnce),
            ..base
        };
        assert_eq!(drain(&ok).len(), 10);
    }

    #[test]
    fn histogram_sampling_respects_bins_and_mean() {
        let h = Histogram::new(vec![0.0, 1.0, 2.0, 10.0], vec![2.0, 1.0, 1.0]);
        h.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut sum = 0.0;
        let mut first_bin = 0usize;
        for _ in 0..n {
            let x = h.sample(&mut rng);
            assert!((0.0..10.0).contains(&x));
            sum += x;
            if x < 1.0 {
                first_bin += 1;
            }
        }
        // Mean: (2·0.5 + 1·1.5 + 1·6)/4 = 2.125.
        assert!((sum / n as f64 - h.mean()).abs() < 0.05);
        assert!((h.mean() - 2.125).abs() < 1e-12);
        // First bin holds half the mass.
        assert!((first_bin as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let w = OpenWorkload {
            arrivals: StreamArrivals::Mmpp {
                rates: vec![2.0, 0.5],
                mean_sojourn: 4.0,
            },
            sizes: SizeDist::Exponential { mean: 1.0 },
            bound: StreamBound::Duration(100.0),
            seed: 42,
        };
        let s = serde_json::to_string(&w).unwrap();
        let back: OpenWorkload = serde_json::from_str(&s).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn labels_are_informative() {
        let w = poisson_count(1000, 0);
        let l = w.label();
        assert!(l.contains("poisson") && l.contains("1000"), "{l}");
    }
}

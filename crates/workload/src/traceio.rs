//! Trace and workload-spec (de)serialization.
//!
//! JSON is the interchange format: traces are small (≤ a few thousand
//! jobs), and human-inspectable fixtures beat opaque binaries for a
//! research artifact.

use crate::spec::WorkloadSpec;
use std::fs;
use std::io;
use std::path::Path;
use tf_simcore::Trace;

/// Write a trace as pretty-printed JSON.
pub fn save_trace<P: AsRef<Path>>(trace: &Trace, path: P) -> io::Result<()> {
    let json = serde_json::to_string_pretty(trace).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Read a trace back from JSON.
pub fn load_trace<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Write a workload spec as pretty-printed JSON.
pub fn save_spec<P: AsRef<Path>>(spec: &WorkloadSpec, path: P) -> io::Result<()> {
    let json = serde_json::to_string_pretty(spec).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Read a workload spec back from JSON.
pub fn load_spec<P: AsRef<Path>>(path: P) -> io::Result<WorkloadSpec> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::sizes::SizeDist;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tf-workload-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn trace_roundtrip() {
        let t = Trace::from_pairs([(0.0, 1.0), (2.5, 3.25)]).unwrap();
        let path = tmp("trace.json");
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spec_roundtrip() {
        let s = WorkloadSpec {
            n: 10,
            arrivals: ArrivalProcess::Poisson { rate: 1.5 },
            sizes: SizeDist::Pareto {
                alpha: 2.0,
                min: 1.0,
            },
            seed: 123,
        };
        let path = tmp("spec.json");
        save_spec(&s, &path).unwrap();
        let back = load_spec(&path).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.generate(), back.generate());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_trace("/nonexistent/definitely/missing.json").is_err());
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}

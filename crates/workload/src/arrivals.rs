//! Arrival processes.

use crate::error::WorkloadError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How job arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process with the given rate (jobs per unit time):
    /// i.i.d. exponential inter-arrival gaps.
    Poisson {
        /// Arrival rate (jobs per unit time).
        rate: f64,
    },
    /// Deterministic arrivals every `interval` time units.
    Periodic {
        /// Gap between consecutive arrivals.
        interval: f64,
    },
    /// `per_batch` simultaneous arrivals every `interval` time units —
    /// maximizes instantaneous contention.
    Batched {
        /// Gap between batches.
        interval: f64,
        /// Simultaneous arrivals per batch.
        per_batch: usize,
    },
    /// All jobs arrive at time 0.
    AllAtOnce,
    /// Non-homogeneous Poisson with a sinusoidal ("diurnal") rate:
    /// `λ(t) = base · (1 + amplitude·sin(2πt/period))`, sampled by
    /// thinning. Models the day/night load cycles real clusters see.
    Diurnal {
        /// Mean arrival rate (jobs per unit time).
        base: f64,
        /// Relative swing, in `[0, 1)` (0 = plain Poisson).
        amplitude: f64,
        /// Cycle length.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Check every parameter, rejecting values that would silently produce
    /// garbage arrivals: `Poisson { rate: 0.0 }` yields `inf` arrival
    /// times, a zero `interval` collapses all batches onto t=0, and a
    /// diurnal `amplitude ≥ 1` makes the instantaneous rate negative
    /// (nonsensical thinning acceptance probabilities).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let finite_pos = |v: f64| v.is_finite() && v > 0.0;
        match *self {
            ArrivalProcess::Poisson { rate } => {
                if !finite_pos(rate) {
                    return Err(WorkloadError::BadRate(rate));
                }
            }
            ArrivalProcess::Periodic { interval } | ArrivalProcess::Batched { interval, .. } => {
                if !finite_pos(interval) {
                    return Err(WorkloadError::BadInterval(interval));
                }
            }
            ArrivalProcess::AllAtOnce => {}
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                if !finite_pos(base) {
                    return Err(WorkloadError::BadRate(base));
                }
                if !(0.0..1.0).contains(&amplitude) {
                    return Err(WorkloadError::BadAmplitude(amplitude));
                }
                if !finite_pos(period) {
                    return Err(WorkloadError::BadPeriod(period));
                }
            }
        }
        Ok(())
    }

    /// Generate `n` arrival times (non-decreasing, starting at 0).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0.0;
                for _ in 0..n {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate;
                    out.push(t);
                }
            }
            ArrivalProcess::Periodic { interval } => {
                for i in 0..n {
                    out.push(i as f64 * interval);
                }
            }
            ArrivalProcess::Batched {
                interval,
                per_batch,
            } => {
                let per_batch = per_batch.max(1);
                for i in 0..n {
                    out.push((i / per_batch) as f64 * interval);
                }
            }
            ArrivalProcess::AllAtOnce => {
                out.resize(n, 0.0);
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                // Thinning: draw from a Poisson process at the peak rate
                // λ_max = base·(1+amplitude), accept each point with
                // probability λ(t)/λ_max.
                let lmax = base * (1.0 + amplitude);
                let mut t = 0.0;
                while out.len() < n {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / lmax;
                    let rate =
                        base * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
                    if rng.gen::<f64>() * lmax <= rate {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Long-run arrival rate (jobs per unit time); infinite for
    /// [`ArrivalProcess::AllAtOnce`].
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Periodic { interval } => 1.0 / interval,
            ArrivalProcess::Batched {
                interval,
                per_batch,
            } => {
                // `generate()` clamps `per_batch` to 1; clamp identically
                // here so load/ρ computations never divide by a rate the
                // generator cannot produce (per_batch = 0 used to report
                // rate 0 while the generator emitted one job per interval).
                per_batch.max(1) as f64 / interval
            }
            ArrivalProcess::AllAtOnce => f64::INFINITY,
            ArrivalProcess::Diurnal { base, .. } => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 2.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let times = p.generate(100_000, &mut rng);
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 0.5).abs() < 0.01, "{mean_gap}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn periodic_and_batched() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            ArrivalProcess::Periodic { interval: 2.0 }.generate(3, &mut rng),
            vec![0.0, 2.0, 4.0]
        );
        assert_eq!(
            ArrivalProcess::Batched {
                interval: 1.0,
                per_batch: 2
            }
            .generate(5, &mut rng),
            vec![0.0, 0.0, 1.0, 1.0, 2.0]
        );
        assert_eq!(
            ArrivalProcess::AllAtOnce.generate(3, &mut rng),
            vec![0.0; 3]
        );
    }

    #[test]
    fn diurnal_mean_rate_and_cycle_bias() {
        let p = ArrivalProcess::Diurnal {
            base: 1.0,
            amplitude: 0.8,
            period: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let times = p.generate(100_000, &mut rng);
        // Long-run rate ≈ base.
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 1.0).abs() < 0.03, "{mean_gap}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Peaks (first half of each cycle, sin > 0) must hold well over
        // half the arrivals.
        let peak =
            times.iter().filter(|&&t| (t % 100.0) < 50.0).count() as f64 / times.len() as f64;
        assert!(peak > 0.6, "no diurnal bias: {peak}");
    }

    #[test]
    fn batched_zero_per_batch_rate_matches_generator() {
        // Regression: `generate()` clamps per_batch to 1, so `rate()` must
        // report the clamped rate rather than 0 (which made downstream ρ
        // computations divide by a rate the generator never produced).
        let p = ArrivalProcess::Batched {
            interval: 2.0,
            per_batch: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let times = p.generate(3, &mut rng);
        assert_eq!(times, vec![0.0, 2.0, 4.0]); // one job per interval
        assert_eq!(p.rate(), 0.5); // 1 job / 2 time units — not 0
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        use crate::error::WorkloadError;
        assert!(ArrivalProcess::Poisson { rate: 1.0 }.validate().is_ok());
        assert!(ArrivalProcess::AllAtOnce.validate().is_ok());
        assert!(ArrivalProcess::Diurnal {
            base: 2.0,
            amplitude: 0.0,
            period: 10.0
        }
        .validate()
        .is_ok());

        assert_eq!(
            ArrivalProcess::Poisson { rate: 0.0 }.validate(),
            Err(WorkloadError::BadRate(0.0))
        );
        assert!(ArrivalProcess::Poisson { rate: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson {
            rate: f64::INFINITY
        }
        .validate()
        .is_err());
        assert_eq!(
            ArrivalProcess::Periodic { interval: 0.0 }.validate(),
            Err(WorkloadError::BadInterval(0.0))
        );
        assert_eq!(
            ArrivalProcess::Batched {
                interval: -1.0,
                per_batch: 2
            }
            .validate(),
            Err(WorkloadError::BadInterval(-1.0))
        );
        assert_eq!(
            ArrivalProcess::Diurnal {
                base: 1.0,
                amplitude: 1.0,
                period: 10.0
            }
            .validate(),
            Err(WorkloadError::BadAmplitude(1.0))
        );
        assert!(ArrivalProcess::Diurnal {
            base: 1.0,
            amplitude: -0.1,
            period: 10.0
        }
        .validate()
        .is_err());
        assert!(matches!(
            ArrivalProcess::Diurnal {
                base: 1.0,
                amplitude: 0.5,
                period: f64::NAN
            }
            .validate(),
            Err(WorkloadError::BadPeriod(p)) if p.is_nan()
        ));
    }

    #[test]
    fn rates() {
        assert_eq!(ArrivalProcess::Poisson { rate: 3.0 }.rate(), 3.0);
        assert_eq!(ArrivalProcess::Periodic { interval: 0.5 }.rate(), 2.0);
        assert_eq!(
            ArrivalProcess::Batched {
                interval: 2.0,
                per_batch: 4
            }
            .rate(),
            2.0
        );
        assert!(ArrivalProcess::AllAtOnce.rate().is_infinite());
    }
}

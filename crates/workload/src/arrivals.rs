//! Arrival processes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How job arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process with the given rate (jobs per unit time):
    /// i.i.d. exponential inter-arrival gaps.
    Poisson {
        /// Arrival rate (jobs per unit time).
        rate: f64,
    },
    /// Deterministic arrivals every `interval` time units.
    Periodic {
        /// Gap between consecutive arrivals.
        interval: f64,
    },
    /// `per_batch` simultaneous arrivals every `interval` time units —
    /// maximizes instantaneous contention.
    Batched {
        /// Gap between batches.
        interval: f64,
        /// Simultaneous arrivals per batch.
        per_batch: usize,
    },
    /// All jobs arrive at time 0.
    AllAtOnce,
    /// Non-homogeneous Poisson with a sinusoidal ("diurnal") rate:
    /// `λ(t) = base · (1 + amplitude·sin(2πt/period))`, sampled by
    /// thinning. Models the day/night load cycles real clusters see.
    Diurnal {
        /// Mean arrival rate (jobs per unit time).
        base: f64,
        /// Relative swing, in `[0, 1)` (0 = plain Poisson).
        amplitude: f64,
        /// Cycle length.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Generate `n` arrival times (non-decreasing, starting at 0).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let mut t = 0.0;
                for _ in 0..n {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate;
                    out.push(t);
                }
            }
            ArrivalProcess::Periodic { interval } => {
                for i in 0..n {
                    out.push(i as f64 * interval);
                }
            }
            ArrivalProcess::Batched {
                interval,
                per_batch,
            } => {
                let per_batch = per_batch.max(1);
                for i in 0..n {
                    out.push((i / per_batch) as f64 * interval);
                }
            }
            ArrivalProcess::AllAtOnce => {
                out.resize(n, 0.0);
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                // Thinning: draw from a Poisson process at the peak rate
                // λ_max = base·(1+amplitude), accept each point with
                // probability λ(t)/λ_max.
                let lmax = base * (1.0 + amplitude);
                let mut t = 0.0;
                while out.len() < n {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / lmax;
                    let rate =
                        base * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
                    if rng.gen::<f64>() * lmax <= rate {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Long-run arrival rate (jobs per unit time); infinite for
    /// [`ArrivalProcess::AllAtOnce`].
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Periodic { interval } => 1.0 / interval,
            ArrivalProcess::Batched {
                interval,
                per_batch,
            } => per_batch as f64 / interval,
            ArrivalProcess::AllAtOnce => f64::INFINITY,
            ArrivalProcess::Diurnal { base, .. } => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 2.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let times = p.generate(100_000, &mut rng);
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 0.5).abs() < 0.01, "{mean_gap}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn periodic_and_batched() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            ArrivalProcess::Periodic { interval: 2.0 }.generate(3, &mut rng),
            vec![0.0, 2.0, 4.0]
        );
        assert_eq!(
            ArrivalProcess::Batched {
                interval: 1.0,
                per_batch: 2
            }
            .generate(5, &mut rng),
            vec![0.0, 0.0, 1.0, 1.0, 2.0]
        );
        assert_eq!(
            ArrivalProcess::AllAtOnce.generate(3, &mut rng),
            vec![0.0; 3]
        );
    }

    #[test]
    fn diurnal_mean_rate_and_cycle_bias() {
        let p = ArrivalProcess::Diurnal {
            base: 1.0,
            amplitude: 0.8,
            period: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let times = p.generate(100_000, &mut rng);
        // Long-run rate ≈ base.
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 1.0).abs() < 0.03, "{mean_gap}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Peaks (first half of each cycle, sin > 0) must hold well over
        // half the arrivals.
        let peak =
            times.iter().filter(|&&t| (t % 100.0) < 50.0).count() as f64 / times.len() as f64;
        assert!(peak > 0.6, "no diurnal bias: {peak}");
    }

    #[test]
    fn rates() {
        assert_eq!(ArrivalProcess::Poisson { rate: 3.0 }.rate(), 3.0);
        assert_eq!(ArrivalProcess::Periodic { interval: 0.5 }.rate(), 2.0);
        assert_eq!(
            ArrivalProcess::Batched {
                interval: 2.0,
                per_batch: 4
            }
            .rate(),
            2.0
        );
        assert!(ArrivalProcess::AllAtOnce.rate().is_infinite());
    }
}

//! Declarative workload specifications.

use crate::arrivals::ArrivalProcess;
use crate::error::WorkloadError;
use crate::sizes::SizeDist;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tf_simcore::{Trace, TraceBuilder};

/// A fully-specified random workload: arrivals × sizes × count × seed.
/// Serializable so experiments can record exactly what they ran.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Size distribution.
    pub sizes: SizeDist,
    /// RNG seed — same spec + same seed ⇒ identical trace.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Check arrival and size parameters without generating anything.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.arrivals.validate()?;
        self.sizes.validate()
    }

    /// Generate the trace after validating the spec, returning a typed
    /// error instead of emitting garbage (e.g. `Poisson { rate: 0.0 }`
    /// used to silently produce `inf` arrival times).
    pub fn try_generate(&self) -> Result<Trace, WorkloadError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let arrivals = self.arrivals.generate(self.n, &mut rng);
        let mut b = TraceBuilder::new();
        for a in arrivals {
            b.push(a, self.sizes.sample(&mut rng));
        }
        Ok(b.build().expect("validated spec generates valid jobs"))
    }

    /// Generate the trace.
    ///
    /// # Panics
    /// On invalid parameters (with the typed [`WorkloadError`] in the
    /// message); use [`WorkloadSpec::try_generate`] to handle them.
    pub fn generate(&self) -> Trace {
        self.try_generate().expect("invalid workload spec")
    }

    /// Label for tables: `"n=100 poisson pareto(1.5)"`-style.
    pub fn label(&self) -> String {
        format!("n={} {}", self.n, self.sizes.label())
    }
}

/// Convenience constructor for the most common experiment workload:
/// Poisson arrivals targeting utilization `rho` on `m` unit-speed machines.
///
/// With mean size `E[p]` and `m` machines, the arrival rate is
/// `λ = ρ·m / E[p]` so that offered load is `ρ` of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonWorkload {
    /// Number of jobs.
    pub n: usize,
    /// Target utilization (fraction of `m` unit-speed machines).
    pub rho: f64,
    /// Machine count the load is scaled for.
    pub m: usize,
    /// Size distribution.
    pub sizes: SizeDist,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonWorkload {
    /// A Poisson workload at utilization `rho` of `m` machines.
    pub fn new(n: usize, rho: f64, m: usize, sizes: SizeDist, seed: u64) -> Self {
        PoissonWorkload {
            n,
            rho,
            m,
            sizes,
            seed,
        }
    }

    /// The equivalent explicit [`WorkloadSpec`].
    pub fn spec(&self) -> WorkloadSpec {
        let rate = self.rho * self.m as f64 / self.sizes.mean();
        WorkloadSpec {
            n: self.n,
            arrivals: ArrivalProcess::Poisson { rate },
            sizes: self.sizes,
            seed: self.seed,
        }
    }

    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        self.spec().generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec {
            n: 50,
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            sizes: SizeDist::Exponential { mean: 1.0 },
            seed: 9,
        };
        assert_eq!(spec.generate(), spec.generate());
        let other = WorkloadSpec { seed: 10, ..spec };
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn poisson_workload_hits_target_utilization() {
        let w = PoissonWorkload::new(20_000, 0.8, 4, SizeDist::Exponential { mean: 2.0 }, 3);
        let t = w.generate();
        let rho = t.utilization(4, 1.0);
        assert!((rho - 0.8).abs() < 0.05, "{rho}");
    }

    #[test]
    fn try_generate_rejects_bad_specs_with_typed_errors() {
        use crate::error::WorkloadError;
        let bad_rate = WorkloadSpec {
            n: 10,
            arrivals: ArrivalProcess::Poisson { rate: 0.0 },
            sizes: SizeDist::Exponential { mean: 1.0 },
            seed: 1,
        };
        assert_eq!(bad_rate.try_generate(), Err(WorkloadError::BadRate(0.0)));
        let bad_size = WorkloadSpec {
            sizes: SizeDist::Pareto {
                alpha: 1.0,
                min: 1.0,
            },
            ..bad_rate
        };
        // Arrivals are checked first; make them valid to reach sizes.
        let bad_size = WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            ..bad_size
        };
        assert!(matches!(
            bad_size.try_generate(),
            Err(WorkloadError::BadSizeParam { dist: "pareto", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generate_panics_loudly_on_bad_spec() {
        WorkloadSpec {
            n: 10,
            arrivals: ArrivalProcess::Poisson { rate: f64::NAN },
            sizes: SizeDist::Deterministic(1.0),
            seed: 0,
        }
        .generate();
    }

    #[test]
    fn spec_serde_roundtrip() {
        let w = PoissonWorkload::new(10, 0.5, 1, SizeDist::Deterministic(1.0), 0);
        let s = serde_json::to_string(&w).unwrap();
        let back: PoissonWorkload = serde_json::from_str(&s).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn generated_trace_is_sorted_and_positive() {
        let w = PoissonWorkload::new(
            100,
            1.2,
            2,
            SizeDist::Pareto {
                alpha: 1.8,
                min: 0.5,
            },
            17,
        );
        let t = w.generate();
        assert_eq!(t.len(), 100);
        let mut prev = 0.0;
        for j in t.jobs() {
            assert!(j.arrival >= prev);
            assert!(j.size > 0.0);
            prev = j.arrival;
        }
    }
}

//! tf-obs unit tests: no-op behaviour, deterministic ordering, sink
//! output validity (parsed back with serde_json), and ObsRegistry
//! merge semantics.
//!
//! The collector is process-global, so every test that installs a sink
//! holds `LOCK` for its whole body.

use std::sync::Mutex;

use serde::Value;
use tf_obs::{ObsRegistry, SinkSpec};

static LOCK: Mutex<()> = Mutex::new(());

/// Numeric payload of a vendored-serde JSON value.
fn num(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::UInt(u) => *u as f64,
        Value::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
}

#[test]
fn noop_sink_collects_nothing_and_flushes_nothing() {
    let _g = LOCK.lock().unwrap();
    tf_obs::install(SinkSpec::Off);
    assert!(!tf_obs::enabled());

    {
        let mut s = tf_obs::span("t", "ignored");
        s.arg("n", 1.0);
        tf_obs::counter("t", "c", 7.0);
        tf_obs::instant("t", "i");
    }
    assert!(tf_obs::take_events().is_empty());
    assert_eq!(tf_obs::flush().unwrap(), None);
    assert!(tf_obs::summary().is_empty());
}

#[test]
fn spans_record_args_and_track_seq_order() {
    let _g = LOCK.lock().unwrap();
    tf_obs::install_collect();
    assert!(tf_obs::enabled());

    {
        let _t = tf_obs::set_track(2);
        let mut s = tf_obs::span("t", "on_track_two");
        s.arg("k", 2.5);
    }
    {
        let mut s = tf_obs::span("t", "on_track_zero");
        s.arg("k", 0.5);
        tf_obs::counter("t", "steps", 11.0);
    }

    let events = tf_obs::take_events();
    // Sorted by (track, seq): track 0 first, despite being recorded second.
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].name, "on_track_zero");
    assert_eq!(events[0].track, 0);
    assert_eq!(events[1].name, "steps");
    assert_eq!(events[1].track, 0);
    assert!(events[0].seq < events[1].seq);
    assert_eq!(events[2].name, "on_track_two");
    assert_eq!(events[2].track, 2);
    assert_eq!(events[2].args, vec![("k", 2.5)]);

    tf_obs::install(SinkSpec::Off);
}

#[test]
fn track_guard_restores_previous_track() {
    let _g = LOCK.lock().unwrap();
    tf_obs::install_collect();

    {
        let _outer = tf_obs::set_track(5);
        {
            let _inner = tf_obs::set_track(9);
            tf_obs::instant("t", "inner");
        }
        tf_obs::instant("t", "outer");
    }
    tf_obs::instant("t", "main");

    let events = tf_obs::take_events();
    let tracks: Vec<(u32, &str)> = events.iter().map(|e| (e.track, e.name)).collect();
    assert_eq!(tracks, vec![(0, "main"), (5, "outer"), (9, "inner")]);

    tf_obs::install(SinkSpec::Off);
}

#[test]
fn summary_aggregates_spans_by_cat_and_name() {
    let _g = LOCK.lock().unwrap();
    tf_obs::install_collect();

    for _ in 0..3 {
        let _s = tf_obs::span("a", "x");
    }
    let _s = tf_obs::span("a", "y");
    drop(_s);
    tf_obs::counter("a", "x", 1.0); // counters are excluded from summary

    let sums = tf_obs::summary();
    assert_eq!(sums.len(), 2);
    assert_eq!((sums[0].cat, sums[0].name, sums[0].count), ("a", "x", 3));
    assert_eq!((sums[1].cat, sums[1].name, sums[1].count), ("a", "y", 1));

    // summary() is non-destructive.
    assert_eq!(tf_obs::take_events().len(), 5);
    tf_obs::install(SinkSpec::Off);
}

#[test]
fn chrome_sink_writes_parseable_trace_events() {
    let _g = LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("tf-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.trace.json");

    tf_obs::install(SinkSpec::Chrome(path.clone()));
    {
        let mut s = tf_obs::span("sim", "simulate");
        s.arg("n", 30.0);
        tf_obs::counter("sim", "steps", 42.0);
        tf_obs::instant("cache", "hit");
    }
    let written = tf_obs::flush().unwrap();
    assert_eq!(written.as_deref(), Some(path.as_path()));

    let text = std::fs::read_to_string(&path).unwrap();
    let doc: Value = serde_json::from_str(&text).unwrap();
    let evs = field(&doc, "traceEvents").as_seq().unwrap();
    assert_eq!(evs.len(), 3);
    let phases: Vec<&str> = evs
        .iter()
        .map(|e| field(e, "ph").as_str().unwrap())
        .collect();
    assert_eq!(phases, vec!["X", "C", "i"]);
    let span = &evs[0];
    assert_eq!(field(span, "name").as_str(), Some("simulate"));
    assert_eq!(field(span, "cat").as_str(), Some("sim"));
    assert_eq!(num(field(field(span, "args"), "n")), 30.0);
    // ts/dur are microsecond numbers.
    let _ = num(field(span, "ts"));
    let _ = num(field(span, "dur"));
    assert_eq!(num(field(field(&evs[1], "args"), "steps")), 42.0);

    // Flush drained the buffer; a second flush writes an empty trace.
    tf_obs::flush().unwrap();
    let doc2: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(field(&doc2, "traceEvents").as_seq().unwrap().len(), 0);

    tf_obs::install(SinkSpec::Off);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jsonl_sink_writes_one_valid_object_per_line() {
    let _g = LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("tf-obs-test-jl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.jsonl");

    tf_obs::install(SinkSpec::Jsonl(path.clone()));
    {
        let mut s = tf_obs::span("lb", "solve");
        s.arg("units", 12.0);
    }
    tf_obs::counter("lb", "relabels", 3.0);
    tf_obs::flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let span: Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(field(&span, "type").as_str(), Some("span"));
    assert_eq!(field(&span, "name").as_str(), Some("solve"));
    assert_eq!(num(field(field(&span, "args"), "units")), 12.0);
    let ctr: Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(field(&ctr, "type").as_str(), Some("counter"));
    assert_eq!(num(field(&ctr, "value")), 3.0);

    tf_obs::install(SinkSpec::Off);
    std::fs::remove_dir_all(&dir).ok();
}

/// A thread that panics mid-probe (its `SpanGuard` drops during
/// unwinding) must not wedge later probes on other threads. The
/// poisoned-lock regression proper lives in `collector.rs`'s unit
/// tests, which can poison the private `STATE` mutex directly.
#[test]
fn panicking_thread_does_not_wedge_later_spans() {
    let _g = LOCK.lock().unwrap();
    tf_obs::install_collect();

    let joined = std::thread::spawn(|| {
        let _s = tf_obs::span("t", "doomed");
        panic!("sink blew up");
    })
    .join();
    assert!(joined.is_err(), "the probe thread must have panicked");

    // Subsequent probes on the main thread must still work.
    {
        let mut s = tf_obs::span("t", "after_panic");
        s.arg("ok", 1.0);
    }
    tf_obs::counter("t", "still_counting", 4.0);

    let events = tf_obs::take_events();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"after_panic"), "events: {names:?}");
    assert!(names.contains(&"still_counting"));

    tf_obs::install(SinkSpec::Off);
    assert!(!tf_obs::enabled());
}

#[test]
fn from_env_rejects_unknown_modes() {
    // Reads only explicit env we set; TF_TRACE is absent in the test env.
    assert_eq!(SinkSpec::from_env(None, "x").unwrap(), SinkSpec::Off);
}

#[test]
fn registry_adds_merges_and_maxes() {
    let mut a = ObsRegistry::new();
    a.add("sim.steps", 10.0);
    a.add("sim.steps", 5.0);
    a.record_max("sim.peak_alive", 7.0);
    a.record_max("sim.peak_alive", 3.0);
    assert_eq!(a.get("sim.steps"), Some(15.0));
    assert_eq!(a.get("sim.peak_alive"), Some(7.0));

    let mut b = ObsRegistry::from_counters([("sim.steps", 1.0), ("mcmf.heap_pops", 100.0)]);
    b.record_max("sim.peak_alive", 9.0);

    a.merge(&b);
    assert_eq!(a.get("sim.steps"), Some(16.0));
    assert_eq!(a.get("sim.peak_alive"), Some(9.0)); // max, not sum
    assert_eq!(a.get("mcmf.heap_pops"), Some(100.0));
    assert_eq!(a.len(), 3);

    // Deterministic iteration order: sorted keys.
    let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
    assert_eq!(keys, vec!["mcmf.heap_pops", "sim.peak_alive", "sim.steps"]);
}

#[test]
fn registry_empty_and_extend() {
    let mut r = ObsRegistry::new();
    assert!(r.is_empty());
    r.extend([("a", 1.0), ("a", 2.0)]);
    assert_eq!(r.get("a"), Some(3.0));
    assert!(!r.is_empty());
}

//! Sink specifications and the serializers behind them.
//!
//! JSON is rendered by hand (the crate has no runtime dependencies): the
//! event vocabulary is closed — static names, numeric values — so the
//! writers below cover it exactly, and the unit tests parse the output
//! with `serde_json` to keep them honest.

use std::path::{Path, PathBuf};

use crate::collector::{Event, EventKind};

/// Where collected events go at [`crate::flush`] time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SinkSpec {
    /// No collection at all; probe sites take their cheap path.
    #[default]
    Off,
    /// Collect in memory for [`crate::take_events`]/[`crate::summary`];
    /// flush writes no file.
    Collect,
    /// One JSON object per line, written to the given path.
    Jsonl(PathBuf),
    /// Chrome `trace_event` JSON (loadable in `about:tracing`/Perfetto),
    /// written to the given path.
    Chrome(PathBuf),
}

impl SinkSpec {
    /// The in-memory collecting sink.
    pub fn collect() -> Self {
        SinkSpec::Collect
    }

    /// True for [`SinkSpec::Off`].
    pub fn is_off(&self) -> bool {
        matches!(self, SinkSpec::Off)
    }

    /// Output path for file-backed sinks.
    pub fn path(&self) -> Option<&Path> {
        match self {
            SinkSpec::Off | SinkSpec::Collect => None,
            SinkSpec::Jsonl(p) | SinkSpec::Chrome(p) => Some(p),
        }
    }

    /// Parse the `TF_TRACE` environment variable. Unset, empty, `off`,
    /// and `0` mean [`SinkSpec::Off`]; `jsonl` and `chrome` select the
    /// file sinks, writing to `path_override` if given, else
    /// `<default_stem>.jsonl` / `<default_stem>.trace.json`.
    pub fn from_env(
        path_override: Option<PathBuf>,
        default_stem: &str,
    ) -> Result<SinkSpec, String> {
        let mode = std::env::var("TF_TRACE").unwrap_or_default();
        match mode.as_str() {
            "" | "off" | "0" => Ok(SinkSpec::Off),
            "jsonl" => {
                Ok(SinkSpec::Jsonl(path_override.unwrap_or_else(|| {
                    PathBuf::from(format!("{default_stem}.jsonl"))
                })))
            }
            "chrome" => Ok(SinkSpec::Chrome(path_override.unwrap_or_else(|| {
                PathBuf::from(format!("{default_stem}.trace.json"))
            }))),
            other => Err(format!(
                "TF_TRACE={other:?} not recognised (expected off, jsonl, or chrome)"
            )),
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite values.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Microseconds with fixed 3-decimal nanosecond precision, as chrome
/// trace `ts`/`dur` fields expect.
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

fn push_args_object(out: &mut String, args: &[(&'static str, f64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_f64(out, *v);
    }
    out.push('}');
}

/// Render events as chrome `trace_event` JSON. Spans become complete
/// (`"ph":"X"`) events, counters `"ph":"C"`, instants `"ph":"i"`; the
/// logical track maps to `tid` so Perfetto shows one row per track.
pub fn render_chrome(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, e.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, e.cat);
        match e.kind {
            EventKind::Span => {
                out.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":");
                out.push_str(&e.track.to_string());
                out.push_str(",\"ts\":");
                push_us(&mut out, e.ts_ns);
                out.push_str(",\"dur\":");
                push_us(&mut out, e.dur_ns);
                out.push_str(",\"args\":");
                let mut args = e.args.clone();
                args.push(("seq", e.seq as f64));
                push_args_object(&mut out, &args);
            }
            EventKind::Counter => {
                out.push_str(",\"ph\":\"C\",\"pid\":1,\"tid\":");
                out.push_str(&e.track.to_string());
                out.push_str(",\"ts\":");
                push_us(&mut out, e.ts_ns);
                out.push_str(",\"args\":{");
                push_json_str(&mut out, e.name);
                out.push(':');
                push_f64(&mut out, e.value);
                out.push('}');
            }
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
                out.push_str(&e.track.to_string());
                out.push_str(",\"ts\":");
                push_us(&mut out, e.ts_ns);
                out.push_str(",\"args\":{\"seq\":");
                out.push_str(&e.seq.to_string());
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render events as JSON lines: one self-describing object per event.
pub fn render_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 112);
    for e in events {
        out.push_str("{\"type\":");
        push_json_str(
            &mut out,
            match e.kind {
                EventKind::Span => "span",
                EventKind::Instant => "instant",
                EventKind::Counter => "counter",
            },
        );
        out.push_str(",\"cat\":");
        push_json_str(&mut out, e.cat);
        out.push_str(",\"name\":");
        push_json_str(&mut out, e.name);
        out.push_str(",\"track\":");
        out.push_str(&e.track.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&e.seq.to_string());
        out.push_str(",\"ts_ns\":");
        out.push_str(&e.ts_ns.to_string());
        match e.kind {
            EventKind::Span => {
                out.push_str(",\"dur_ns\":");
                out.push_str(&e.dur_ns.to_string());
                out.push_str(",\"args\":");
                push_args_object(&mut out, &e.args);
            }
            EventKind::Counter => {
                out.push_str(",\"value\":");
                push_f64(&mut out, e.value);
            }
            EventKind::Instant => {}
        }
        out.push_str("}\n");
    }
    out
}

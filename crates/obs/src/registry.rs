//! [`ObsRegistry`] — one flat, ordered namespace for run counters.
//!
//! The workspace accumulates counters in several shapes: `SimStats` in
//! tf-simcore, the MCMF solver's phase counters in tf-lowerbound, cache
//! hit/miss tallies in the harness. Downstream code used to reach into
//! each struct by name; the registry gives them a single merge-friendly
//! `"cat.name" -> f64` map instead.

use std::collections::BTreeMap;

/// A flat, deterministic (sorted-key) map of named numeric counters.
///
/// Keys are dotted `"category.name"` strings matching the span/counter
/// naming scheme in `docs/OBSERVABILITY.md` (e.g. `"sim.steps"`,
/// `"mcmf.heap_pops"`). Values add on [`add`](ObsRegistry::add) and on
/// [`merge`](ObsRegistry::merge), except keys recorded via
/// [`record_max`](ObsRegistry::record_max), which keep the maximum.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsRegistry {
    counters: BTreeMap<String, f64>,
    max_keys: std::collections::BTreeSet<String>,
}

impl ObsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `value` to the counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, value: f64) {
        *self.counters.entry(key.to_owned()).or_insert(0.0) += value;
    }

    /// Record `value` into `key`, keeping the maximum seen. The key is
    /// marked max-combining, so [`merge`](ObsRegistry::merge) also takes
    /// the max for it (used for gauges like `sim.peak_alive`).
    pub fn record_max(&mut self, key: &str, value: f64) {
        self.max_keys.insert(key.to_owned());
        let slot = self.counters.entry(key.to_owned()).or_insert(value);
        if value > *slot {
            *slot = value;
        }
    }

    /// Fold `other` into `self`: sum-combining keys add, max-combining
    /// keys take the maximum.
    pub fn merge(&mut self, other: &ObsRegistry) {
        for k in &other.max_keys {
            self.max_keys.insert(k.clone());
        }
        for (k, v) in &other.counters {
            if self.max_keys.contains(k) {
                self.record_max(k, *v);
            } else {
                self.add(k, *v);
            }
        }
    }

    /// The value of `key`, if recorded.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.counters.get(key).copied()
    }

    /// True if no counters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Iterate `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Build a registry from an iterator of `(key, value)` pairs,
    /// summing duplicates.
    pub fn from_counters<'a, I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        let mut reg = Self::new();
        for (k, v) in pairs {
            reg.add(k, v);
        }
        reg
    }
}

impl<'a> Extend<(&'a str, f64)> for ObsRegistry {
    fn extend<I: IntoIterator<Item = (&'a str, f64)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

#![warn(missing_docs)]

//! # tf-obs — zero-cost-when-off tracing and metrics
//!
//! The workspace's observability substrate: structured **spans** (named,
//! categorized durations), **counters**, and **instant events**, collected
//! into a process-global buffer and written out through a pluggable sink —
//! no-op, JSON-lines, or the chrome-trace `trace_event` format that loads
//! directly into `about:tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! ## Cost model
//!
//! * **Feature-gated off** (`default-features = false`): [`enabled`]
//!   returns a compile-time `false`, every probe site folds to nothing,
//!   and the instrumentation is physically absent from the binary.
//! * **Runtime off** (the default build, no sink installed): each probe
//!   site costs one relaxed atomic load and a predictable branch.
//! * **Runtime on**: spans take two clock reads plus one short mutex-held
//!   buffer push. Tracing is a diagnostic mode; the hot paths it wraps
//!   (an LP solve, a simulation run, a Dijkstra phase) dwarf this cost,
//!   and the perf benches gate the *off* configurations, which are the
//!   ones production sweeps run in.
//!
//! ## Determinism
//!
//! Events carry a **logical track** (set per task by fan-out code via
//! [`set_track`], inherited by everything the task runs) and a per-track
//! sequence number. Flushing sorts by `(track, seq)`, so the *structure*
//! of a trace — which spans, on which tracks, in which order — is
//! byte-identical however many worker threads the run used. Wall-clock
//! `ts`/`dur` fields are the only nondeterministic bytes; comparison
//! tooling masks them (see `crates/harness/tests/determinism.rs`).
//!
//! ## Usage
//!
//! ```
//! tf_obs::install(tf_obs::SinkSpec::Off); // start clean for the doctest
//! tf_obs::install_collect();              // collect without a file sink
//! {
//!     let mut span = tf_obs::span("demo", "outer");
//!     span.arg("n", 3.0);
//!     tf_obs::counter("demo", "items", 3.0);
//! }
//! let events = tf_obs::take_events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "outer");
//! tf_obs::install(tf_obs::SinkSpec::Off);
//! ```
//!
//! Binaries install from the environment instead:
//! `TF_TRACE={off,jsonl,chrome}` picks the sink, and an optional explicit
//! path (the harness `--trace <path>` flag) overrides the default output
//! file. See `docs/OBSERVABILITY.md` for the span-naming scheme.

mod collector;
mod registry;
mod sink;

pub use collector::{
    counter, install, install_collect, installed, instant, set_track, span, summary, take_events,
    Event, EventKind, SpanGuard, SpanSummary, TrackGuard,
};
pub use registry::ObsRegistry;
pub use sink::{render_chrome, render_jsonl, SinkSpec};

/// True iff tracing is compiled in **and** a sink is currently installed.
/// Probe sites branch on this; with the `enabled` feature off it is a
/// compile-time `false` and the probe folds away entirely.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && collector::runtime_on()
}

/// Install the sink described by `TF_TRACE` (`off`, `jsonl`, `chrome`;
/// unset/empty/`0` mean off). `path_override` (e.g. a `--trace` flag)
/// replaces the default output path `<stem>.jsonl` / `<stem>.trace.json`.
/// Returns the installed spec, or an error message for an unknown mode.
pub fn init_from_env(
    path_override: Option<std::path::PathBuf>,
    default_stem: &str,
) -> Result<SinkSpec, String> {
    let spec = SinkSpec::from_env(path_override, default_stem)?;
    install(spec.clone());
    Ok(spec)
}

/// Drain the collected events through the installed sink, writing the
/// output file for file-backed sinks. Returns the path written, if any.
/// The buffer and per-track sequence counters are cleared either way.
pub fn flush() -> std::io::Result<Option<std::path::PathBuf>> {
    let (spec, events) = collector::drain();
    match &spec {
        SinkSpec::Off | SinkSpec::Collect => Ok(None),
        SinkSpec::Jsonl(p) => {
            std::fs::write(p, render_jsonl(&events))?;
            Ok(Some(p.clone()))
        }
        SinkSpec::Chrome(p) => {
            std::fs::write(p, render_chrome(&events))?;
            Ok(Some(p.clone()))
        }
    }
}

/// Open a span; sugar over [`span()`] so call sites read uniformly with
/// [`counter!`] and [`instant!`]. Binds the guard to the given name:
/// `let _s = tf_obs::span!("sim", "simulate");`
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::span($cat, $name)
    };
}

/// Record a numeric counter sample (no-op unless tracing is enabled).
#[macro_export]
macro_rules! counter {
    ($cat:expr, $name:expr, $value:expr) => {
        $crate::counter($cat, $name, $value)
    };
}

/// Record an instant event (no-op unless tracing is enabled).
#[macro_export]
macro_rules! instant {
    ($cat:expr, $name:expr) => {
        $crate::instant($cat, $name)
    };
}

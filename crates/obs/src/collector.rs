//! Process-global event collector.
//!
//! A single `Mutex<State>` buffers events from every thread. Each event is
//! stamped with a **logical track** (thread-local, set by fan-out code via
//! [`set_track`]) and a per-track sequence number drawn under the lock, so
//! sorting by `(track, seq)` at drain time yields an order independent of
//! OS scheduling and worker-thread count.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::sink::SinkSpec;

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named duration: `ts_ns..ts_ns + dur_ns`.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A numeric sample (`value`) at a point in time.
    Counter,
}

/// One collected record. `track`/`seq` give the deterministic order;
/// `ts_ns`/`dur_ns` are wall-clock nanoseconds since the process epoch
/// and are the only nondeterministic fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Record kind.
    pub kind: EventKind,
    /// Category, e.g. `"sim"`, `"lb"`, `"mcmf"`, `"harness"`.
    pub cat: &'static str,
    /// Event name within the category, e.g. `"dijkstra"`.
    pub name: &'static str,
    /// Logical track (0 = main; fan-outs use task-index-based tracks).
    pub track: u32,
    /// Sequence number within the track; assigned under the collector lock.
    pub seq: u64,
    /// Start time, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (spans only; 0 otherwise).
    pub dur_ns: u64,
    /// Sample value (counters only; 0.0 otherwise).
    pub value: f64,
    /// Span arguments attached via [`SpanGuard::arg`].
    pub args: Vec<(&'static str, f64)>,
}

struct State {
    spec: SinkSpec,
    events: Vec<Event>,
    /// Next sequence number per track. Persists until the next
    /// [`install`]/drain so reused tracks keep monotone sequences.
    track_seq: BTreeMap<u32, u64>,
}

static RUNTIME_ON: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State {
    spec: SinkSpec::Off,
    events: Vec::new(),
    track_seq: BTreeMap::new(),
});
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static CURRENT_TRACK: Cell<u32> = const { Cell::new(0) };
}

#[inline(always)]
pub(crate) fn runtime_on() -> bool {
    RUNTIME_ON.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Lock the collector state, recovering from a poisoned mutex.
///
/// A panic under the lock (e.g. a panicking allocator hook, or a caller
/// unwinding through a probe) poisons `STATE`; with a bare `unwrap()`
/// every later probe in the process would then panic too, turning one
/// failed task into a wedged run. The state is just a seq-counter map,
/// an event buffer, and a sink spec — all valid after any partial
/// mutation — so it is always safe to keep using.
fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install a sink, replacing the previous one. Discards any buffered
/// events and resets sequence counters; `SinkSpec::Off` disables
/// collection entirely (probe sites return to their cheap path).
pub fn install(spec: SinkSpec) {
    let mut st = state();
    RUNTIME_ON.store(
        cfg!(feature = "enabled") && !spec.is_off(),
        Ordering::Relaxed,
    );
    st.spec = spec;
    st.events.clear();
    st.track_seq.clear();
}

/// Install an in-memory collector with no file sink: events accumulate
/// for [`take_events`]/[`summary`] but [`crate::flush`] writes nothing.
/// Used by tests and by programmatic consumers of [`crate::ObsRegistry`].
pub fn install_collect() {
    install(SinkSpec::collect());
}

/// The currently installed sink spec.
pub fn installed() -> SinkSpec {
    state().spec.clone()
}

/// Take `(spec, events)` out of the collector, sorted by `(track, seq)`.
/// Sequence counters reset; the sink stays installed.
pub(crate) fn drain() -> (SinkSpec, Vec<Event>) {
    let mut st = state();
    let mut events = std::mem::take(&mut st.events);
    st.track_seq.clear();
    events.sort_by_key(|e| (e.track, e.seq));
    (st.spec.clone(), events)
}

/// Drain and return the buffered events in deterministic `(track, seq)`
/// order, without writing any file.
pub fn take_events() -> Vec<Event> {
    drain().1
}

fn next_seq(st: &mut State, track: u32) -> u64 {
    let slot = st.track_seq.entry(track).or_insert(0);
    let seq = *slot;
    *slot += 1;
    seq
}

fn push(event: Event) {
    let mut st = state();
    st.events.push(event);
}

/// RAII guard for a span; records the span event (with its duration and
/// any [`arg`](SpanGuard::arg)s) when dropped.
#[must_use = "a span measures the scope of its guard; binding to `_` drops it immediately"]
pub struct SpanGuard {
    live: bool,
    cat: &'static str,
    name: &'static str,
    track: u32,
    seq: u64,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            live: false,
            cat: "",
            name: "",
            track: 0,
            seq: 0,
            start_ns: 0,
            args: Vec::new(),
        }
    }

    /// Attach a named numeric argument, shown in the sink output.
    /// No-op on an inert (tracing-off) guard.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live || !crate::enabled() {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        push(Event {
            kind: EventKind::Span,
            cat: self.cat,
            name: self.name,
            track: self.track,
            seq: self.seq,
            ts_ns: self.start_ns,
            dur_ns,
            value: 0.0,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Open a span on the current thread's logical track. Returns an inert
/// guard (no clock reads, no allocation) when tracing is off.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    let track = CURRENT_TRACK.with(Cell::get);
    let seq = next_seq(&mut state(), track);
    SpanGuard {
        live: true,
        cat,
        name,
        track,
        seq,
        start_ns: now_ns(),
        args: Vec::new(),
    }
}

/// Record a numeric counter sample. No-op when tracing is off.
pub fn counter(cat: &'static str, name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let track = CURRENT_TRACK.with(Cell::get);
    let ts_ns = now_ns();
    let mut st = state();
    let seq = next_seq(&mut st, track);
    st.events.push(Event {
        kind: EventKind::Counter,
        cat,
        name,
        track,
        seq,
        ts_ns,
        dur_ns: 0,
        value,
        args: Vec::new(),
    });
}

/// Record an instant event. No-op when tracing is off.
pub fn instant(cat: &'static str, name: &'static str) {
    if !crate::enabled() {
        return;
    }
    let track = CURRENT_TRACK.with(Cell::get);
    let ts_ns = now_ns();
    let mut st = state();
    let seq = next_seq(&mut st, track);
    st.events.push(Event {
        kind: EventKind::Instant,
        cat,
        name,
        track,
        seq,
        ts_ns,
        dur_ns: 0,
        value: 0.0,
        args: Vec::new(),
    });
}

/// Restores the previous logical track for the thread when dropped.
#[must_use = "the track reverts when this guard drops"]
pub struct TrackGuard {
    prev: u32,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT_TRACK.with(|c| c.set(self.prev));
    }
}

/// Set the current thread's logical track for the guard's lifetime.
/// Fan-out code assigns tracks from *task* indices (e.g. `i + 1` for the
/// i-th `RatioTask`), never from OS thread ids, so traces are stable
/// across `set_thread_override` values. Track 0 is the main flow.
pub fn set_track(track: u32) -> TrackGuard {
    let prev = CURRENT_TRACK.with(|c| c.replace(track));
    TrackGuard { prev }
}

/// Aggregate of all span events sharing a `(cat, name)` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Number of span events.
    pub count: u64,
    /// Total duration across all events, nanoseconds.
    pub total_ns: u64,
}

/// Aggregate buffered span events by `(cat, name)`, sorted by key.
/// Non-destructive: the buffer is left intact for a later flush.
pub fn summary() -> Vec<SpanSummary> {
    let st = state();
    let mut agg: BTreeMap<(&'static str, &'static str), (u64, u64)> = BTreeMap::new();
    for e in &st.events {
        if e.kind == EventKind::Span {
            let slot = agg.entry((e.cat, e.name)).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += e.dur_ns;
        }
    }
    agg.into_iter()
        .map(|((cat, name), (count, total_ns))| SpanSummary {
            cat,
            name,
            count,
            total_ns,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: with the old bare `STATE.lock().unwrap()` at every
    /// entry point, one panic while holding the collector lock poisoned
    /// it for the life of the process — every later `span`/`counter`/
    /// `install`/`summary` then panicked too. The `state()` helper
    /// recovers the guard from the `PoisonError`; this test poisons the
    /// mutex for real and exercises each public entry point afterwards.
    /// (Fails on the pre-fix code at the first `span` call below.)
    #[test]
    fn all_entry_points_recover_from_a_poisoned_lock() {
        install(SinkSpec::collect());

        let joined = std::thread::spawn(|| {
            let _guard = STATE.lock().unwrap();
            panic!("poison the collector lock");
        })
        .join();
        assert!(joined.is_err());
        assert!(STATE.is_poisoned(), "the panic must have poisoned STATE");

        {
            let mut s = span("t", "after_poison");
            s.arg("ok", 1.0);
        }
        counter("t", "ctr", 2.0);
        instant("t", "mark");
        assert!(!installed().is_off());
        assert_eq!(summary().len(), 1);

        let events = take_events();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["after_poison", "ctr", "mark"]);

        install(SinkSpec::Off);
    }
}

#![deny(missing_docs)]

//! # tf-audit — differential & metamorphic correctness subsystem
//!
//! The workspace has three independent ways to compute the same
//! quantities — the event-driven simulator (`tf-simcore`), the certified
//! LP lower bound (`tf-lowerbound`), and the dual-fitting certificate
//! checker (`tf-core`). This crate cross-examines them systematically:
//!
//! * an **invariant catalogue** ([`audit_schedule`], [`audit_trace`]) of
//!   schedule-feasibility checks (delegated to
//!   [`tf_simcore::validate::validate_schedule`], the single source of
//!   truth for S-checks), policy-structural oracles (RR equal share,
//!   SETF attained-order priority, LAPS support, FCFS front-running),
//!   differential optimality oracles (SRPT/FCFS optima on one machine),
//!   and cross-layer oracles (lower bound ≤ every policy's cost,
//!   solver ≡ reference, Theorem 1 certificate verifies);
//! * a **metamorphic suite** ([`metamorphic_suite`]) — time scaling, job
//!   relabeling, machine-count and speed monotonicity — each shipped
//!   only for the policies where the relation is provable;
//! * a seeded **fuzz driver** ([`run_fuzz`], also the `audit` binary)
//!   over random `tf-workload` traces and all registered policies, with
//!   a built-in **delta-debugging shrinker** ([`shrink_trace`]) that
//!   reduces every failure to a minimal reproducing trace in
//!   `results/audit/`.
//!
//! Every check's justification (theorem, cited paper, or experiment id)
//! and float tolerance is catalogued in `docs/VALIDATION.md`.
//!
//! ## Quick start
//!
//! Audit one policy run:
//!
//! ```
//! use tf_audit::{audit_schedule, AuditConfig};
//! use tf_policies::Policy;
//! use tf_simcore::{Simulation, Trace};
//!
//! let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0)])?;
//! let mut rr = Policy::Rr.make();
//! let sched = Simulation::of(&trace)
//!     .policy(rr.as_mut())
//!     .machines(2)
//!     .record_profile() // the S-checks need the exact rate trajectory
//!     .run()?;
//! let report = audit_schedule(&trace, &sched, Some(Policy::Rr), &AuditConfig::default());
//! assert!(report.ok());
//! # Ok::<(), tf_simcore::SimError>(())
//! ```
//!
//! Audit a whole instance across every registered policy, plus the
//! metamorphic suite:
//!
//! ```
//! use tf_audit::{audit_trace, metamorphic_suite, AuditConfig};
//! use tf_policies::Policy;
//! use tf_simcore::Trace;
//!
//! let trace = Trace::from_pairs([(0.0, 3.0), (0.0, 1.0), (2.0, 2.0)])?;
//! let cfg = AuditConfig::default();
//! let mut report = audit_trace(&trace, 1, 1.0, &Policy::all(), &cfg);
//! report.merge(metamorphic_suite(&trace, 1, 1.0, &cfg));
//! assert!(report.ok(), "{:?}", report.violations);
//! # Ok::<(), tf_simcore::SimError>(())
//! ```

mod catalogue;
mod fuzz;
mod metamorphic;
mod shrink;

pub use catalogue::{audit_schedule, audit_trace, AuditConfig, AuditReport, Violation};
pub use fuzz::{
    audit_instance, gen_instance, run_fuzz, FuzzConfig, FuzzFailure, FuzzInstance, FuzzSummary,
};
pub use metamorphic::{metamorphic_suite, RELABEL_POLICIES, TIME_SCALE_POLICIES};
pub use shrink::shrink_trace;

/// Re-export of the schedule-feasibility validator (the S-checks'
/// implementation). `tf_simcore::validate` remains the single source of
/// truth; the audit layer builds the policy-level and cross-layer checks
/// on top of it.
pub use tf_simcore::validate::{validate_schedule, ValidationReport};

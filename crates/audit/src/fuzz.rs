//! Seeded fuzzing: random traces through every registered policy and the
//! whole invariant catalogue, with automatic counterexample shrinking.
//!
//! The driver is deterministic: instance `i` of a run with master seed
//! `s` is derived via splitmix64 (the same generator the
//! `worst_case_miner` example and the adversary hunter use), so a failing
//! index can be replayed exactly with `--seed s` regardless of how many
//! traces the original run drew. Three instance families are mixed:
//!
//! * ~60 % small **integral** traces (the LP and certificate checks need
//!   integral instances, and small integers shrink beautifully);
//! * ~25 % **fractional** traces from `tf-workload`'s Poisson generator,
//!   at mixed machine counts and speeds (including augmented speeds,
//!   which exercise the speed-scaled feasibility envelope);
//! * ~15 % **adversarial** batch/two-wave traces (simultaneous-arrival
//!   tie groups and load spikes, the structures the paper's analysis and
//!   the relabeling checks care most about).
//!
//! Each failure is shrunk with [`crate::shrink_trace`] under "the same
//! check still fails" and written as JSON to the output directory
//! (default `results/audit/`).

use crate::catalogue::{audit_trace, AuditConfig, AuditReport, Violation};
use crate::metamorphic::metamorphic_suite;
use crate::shrink::shrink_trace;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tf_harness::campaign;
use tf_policies::Policy;
use tf_simcore::{Trace, TraceBuilder};
use tf_workload::{PoissonWorkload, SizeDist};

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of random instances to generate and audit.
    pub traces: usize,
    /// Master seed; instance `i` uses `splitmix64(seed ⊕ mix(i))`.
    pub seed: u64,
    /// Invariant-catalogue configuration shared by every audit.
    pub audit: AuditConfig,
    /// Also run the metamorphic suite on every instance.
    pub metamorphic: bool,
    /// Where to write shrunk counterexamples (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Stop shrinking/recording after this many failures (the run still
    /// counts the rest).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            traces: 1000,
            seed: 0xA5D17,
            audit: AuditConfig::default(),
            metamorphic: true,
            out_dir: Some(PathBuf::from("results/audit")),
            max_failures: 5,
        }
    }
}

/// One audited instance: the trace and its machine environment.
#[derive(Debug, Clone)]
pub struct FuzzInstance {
    /// The generated trace.
    pub trace: Trace,
    /// Machine count.
    pub m: usize,
    /// Machine speed.
    pub speed: f64,
}

/// A failure found by the fuzzer, with its shrunk reproduction.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the failing instance (replay with the same master seed).
    pub index: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Machine count of the failing environment.
    pub m: usize,
    /// Machine speed of the failing environment.
    pub speed: f64,
    /// Catalogue id of the first violated check.
    pub check: String,
    /// Policy the violation was observed under, if policy-specific.
    pub policy: Option<String>,
    /// Violation detail from the original (unshrunk) failure.
    pub detail: String,
    /// The original failing trace.
    pub trace: Trace,
    /// The shrunk failing trace (still fails the same check).
    pub shrunk: Trace,
    /// Where the failure was written, when an output directory was set.
    pub path: Option<PathBuf>,
}

/// The on-disk form of a [`FuzzFailure`] (everything but the output
/// path, which is where the record itself lives).
#[derive(Serialize)]
struct FailureRecord {
    index: usize,
    seed: u64,
    m: usize,
    speed: f64,
    check: String,
    policy: Option<String>,
    detail: String,
    trace: Trace,
    shrunk: Trace,
}

/// Aggregate outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Instances generated and audited.
    pub traces: usize,
    /// Total catalogue checks evaluated across all instances.
    pub checks_run: usize,
    /// Total violations observed (shrunk-and-recorded or not).
    pub violations: usize,
    /// Shrunk, recorded failures (capped at `max_failures`).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// True iff no instance violated any invariant.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }
}

/// splitmix64 — the workspace's standard seed-derivation step (same as
/// the adversary hunter's; small, full-period, and serially uncorrelated
/// enough for instance generation).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tiny deterministic RNG over splitmix64.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }
    /// Uniform integer in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
    /// Uniform float in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Generate the `index`-th instance of a run with master seed `seed`.
/// Public so a failing index can be regenerated in isolation.
pub fn gen_instance(seed: u64, index: usize) -> FuzzInstance {
    let mut ix = index as u64 + 1;
    let mut rng = Rng::new(seed ^ splitmix64(&mut ix));
    let family = rng.range(0, 99);
    if family < 60 {
        gen_integral(&mut rng)
    } else if family < 85 {
        gen_workload(&mut rng, seed, index)
    } else {
        gen_adversarial(&mut rng)
    }
}

fn gen_integral(rng: &mut Rng) -> FuzzInstance {
    let n = rng.range(2, 10) as usize;
    let mut b = TraceBuilder::new();
    for _ in 0..n {
        let arrival = rng.range(0, 12) as f64;
        let size = rng.range(1, 6) as f64;
        b.push(arrival, size);
    }
    FuzzInstance {
        trace: b.build().expect("integral jobs are valid"),
        m: rng.pick(&[1usize, 2, 4]),
        speed: 1.0,
    }
}

fn gen_workload(rng: &mut Rng, seed: u64, index: usize) -> FuzzInstance {
    let n = rng.range(8, 30) as usize;
    let m = rng.pick(&[1usize, 2]);
    let rho = rng.pick(&[0.6, 0.9, 1.3]);
    let sizes = if rng.unit() < 0.5 {
        SizeDist::Exponential { mean: 2.0 }
    } else {
        SizeDist::Pareto {
            alpha: 1.8,
            min: 0.5,
        }
    };
    let trace = PoissonWorkload::new(n, rho, m, sizes, seed.wrapping_add(index as u64)).generate();
    FuzzInstance {
        trace,
        m,
        speed: rng.pick(&[1.0, 1.5, 4.4]),
    }
}

fn gen_adversarial(rng: &mut Rng) -> FuzzInstance {
    // A batch at time 0 plus a second wave: maximal tie groups and a
    // congestion step — the structure RR's analysis is tightest on.
    let batch = rng.range(2, 8) as usize;
    let wave = rng.range(1, 6) as usize;
    let gap = rng.range(1, 10) as f64;
    let mut b = TraceBuilder::new();
    for _ in 0..batch {
        b.push(0.0, rng.range(1, 4) as f64);
    }
    for _ in 0..wave {
        b.push(gap, rng.range(1, 4) as f64);
    }
    FuzzInstance {
        trace: b.build().expect("adversarial jobs are valid"),
        m: rng.pick(&[1usize, 2]),
        speed: 1.0,
    }
}

/// Audit one instance: full catalogue plus (optionally) the metamorphic
/// suite.
pub fn audit_instance(inst: &FuzzInstance, cfg: &FuzzConfig) -> AuditReport {
    let mut rep = audit_trace(&inst.trace, inst.m, inst.speed, &Policy::all(), &cfg.audit);
    if cfg.metamorphic {
        rep.merge(metamorphic_suite(
            &inst.trace,
            inst.m,
            inst.speed,
            &cfg.audit,
        ));
    }
    rep
}

/// Indices per campaign-journal chunk: the fuzzer checkpoints every
/// `CHUNK` instances, so a killed run loses at most one chunk's work.
const CHUNK: usize = 50;

/// The journaled outcome of one *clean* chunk of indices (no instance
/// violated anything, so the counts are all a resume needs). Chunks
/// with violations are deliberately never journaled: a resumed run must
/// recompute them so failures re-shrink and the counterexample records
/// are re-written.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanChunk {
    traces: u64,
    checks_run: u64,
}

/// Campaign journal key for the chunk `[lo, hi)`: master seed plus every
/// `FuzzConfig` knob that changes what a chunk computes.
fn chunk_key(cfg: &FuzzConfig, lo: usize, hi: usize) -> String {
    let mut bytes: Vec<u8> = Vec::with_capacity(64);
    bytes.extend_from_slice(&cfg.seed.to_le_bytes());
    bytes.extend_from_slice(&cfg.audit.rel_tol.to_bits().to_le_bytes());
    bytes.extend_from_slice(&cfg.audit.k.to_le_bytes());
    bytes.extend_from_slice(&cfg.audit.eps.to_bits().to_le_bytes());
    bytes.push(u8::from(cfg.audit.check_lower_bound));
    bytes.push(u8::from(cfg.audit.check_reference_solver));
    bytes.push(u8::from(cfg.audit.check_certificate));
    bytes.push(u8::from(cfg.audit.check_warm_start));
    bytes.push(u8::from(cfg.audit.check_aggregation));
    bytes.extend_from_slice(&(cfg.audit.max_exact_jobs as u64).to_le_bytes());
    bytes.push(u8::from(cfg.metamorphic));
    format!("audit:{:016x}:{lo}-{hi}", campaign::fingerprint(bytes))
}

/// Counts from one computed chunk (clean or not).
struct ChunkCounts {
    traces: u64,
    checks_run: u64,
    violations: u64,
}

/// Audit the chunk of indices `[lo, hi)`, appending any shrunk failures
/// to `failures` (respecting `cfg.max_failures` across the whole run).
fn run_chunk(
    cfg: &FuzzConfig,
    lo: usize,
    hi: usize,
    failures: &mut Vec<FuzzFailure>,
) -> ChunkCounts {
    let mut counts = ChunkCounts {
        traces: 0,
        checks_run: 0,
        violations: 0,
    };
    for index in lo..hi {
        let inst = gen_instance(cfg.seed, index);
        let rep = audit_instance(&inst, cfg);
        counts.traces += 1;
        counts.checks_run += rep.checks_run as u64;
        counts.violations += rep.violations.len() as u64;
        if let Some(first) = rep.violations.first() {
            if failures.len() < cfg.max_failures {
                failures.push(shrink_and_record(cfg, index, &inst, first));
            }
        }
    }
    counts
}

/// Run the fuzzer. Deterministic for a given [`FuzzConfig`]; failures
/// are shrunk and (when `out_dir` is set) written to
/// `<out_dir>/audit-fail-<index>-<check>.json`.
///
/// Under an active campaign (`audit --campaign DIR`) the run is
/// journaled in chunks of 50 indices: a resumed run replays
/// clean chunks from the journal and recomputes only the chunk that was
/// in flight — plus any chunk that had violations, which must re-shrink
/// and re-write its counterexample records.
///
/// ```
/// use tf_audit::{run_fuzz, FuzzConfig};
///
/// let cfg = FuzzConfig {
///     traces: 5,
///     out_dir: None,
///     ..FuzzConfig::default()
/// };
/// let summary = run_fuzz(&cfg);
/// assert!(summary.ok(), "{:?}", summary.failures);
/// assert_eq!(summary.traces, 5);
/// ```
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzSummary {
    let mut span = tf_obs::span!("audit", "fuzz");
    span.arg("traces", cfg.traces as f64);
    let mut summary = FuzzSummary::default();
    let mut lo = 0usize;
    while lo < cfg.traces {
        let hi = (lo + CHUNK).min(cfg.traces);
        // `run_or_replay_if` journals only `Some` (clean) outcomes, so a
        // resumed campaign replays the counts of clean chunks and fully
        // recomputes dirty or unfinished ones.
        let mut failures: Vec<FuzzFailure> = Vec::new();
        let mut computed: Option<ChunkCounts> = None;
        let replayed: Option<CleanChunk> = campaign::run_or_replay_if(
            &chunk_key(cfg, lo, hi),
            || {
                let counts = run_chunk(cfg, lo, hi, &mut failures);
                let clean = (counts.violations == 0).then_some(CleanChunk {
                    traces: counts.traces,
                    checks_run: counts.checks_run,
                });
                computed = Some(counts);
                clean
            },
            Option::is_some,
        );
        if let Some(counts) = computed {
            summary.traces += counts.traces as usize;
            summary.checks_run += counts.checks_run as usize;
            summary.violations += counts.violations as usize;
        } else {
            let clean = replayed.expect("the journal only holds clean chunks");
            summary.traces += clean.traces as usize;
            summary.checks_run += clean.checks_run as usize;
        }
        summary.failures.append(&mut failures);
        lo = hi;
    }
    if tf_obs::enabled() {
        tf_obs::counter!("audit", "fuzz_traces", summary.traces as f64);
        tf_obs::counter!("audit", "fuzz_violations", summary.violations as f64);
    }
    summary
}

fn shrink_and_record(
    cfg: &FuzzConfig,
    index: usize,
    inst: &FuzzInstance,
    violation: &Violation,
) -> FuzzFailure {
    let check = violation.check;
    let shrunk = shrink_trace(&inst.trace, |t| {
        let probe = FuzzInstance {
            trace: t.clone(),
            m: inst.m,
            speed: inst.speed,
        };
        audit_instance(&probe, cfg).has(check)
    });
    let mut failure = FuzzFailure {
        index,
        seed: cfg.seed,
        m: inst.m,
        speed: inst.speed,
        check: check.to_string(),
        policy: violation.policy.clone(),
        detail: violation.detail.clone(),
        trace: inst.trace.clone(),
        shrunk,
        path: None,
    };
    if let Some(dir) = &cfg.out_dir {
        match write_failure(dir, &failure) {
            Ok(path) => failure.path = Some(path),
            Err(e) => eprintln!("audit: could not write failure record: {e}"),
        }
    }
    failure
}

fn write_failure(dir: &Path, failure: &FuzzFailure) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let slug: String = failure
        .check
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let path = dir.join(format!("audit-fail-{}-{}.json", failure.index, slug));
    let record = FailureRecord {
        index: failure.index,
        seed: failure.seed,
        m: failure.m,
        speed: failure.speed,
        check: failure.check.clone(),
        policy: failure.policy.clone(),
        detail: failure.detail.clone(),
        trace: failure.trace.clone(),
        shrunk: failure.shrunk.clone(),
    };
    let json =
        serde_json::to_string_pretty(&record).map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a: Vec<_> = (0..20).map(|i| gen_instance(7, i)).collect();
        let b: Vec<_> = (0..20).map(|i| gen_instance(7, i)).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace);
            assert_eq!((x.m, x.speed), (y.m, y.speed));
        }
        // Different seeds give different instances.
        let c = gen_instance(8, 0);
        assert!(a[0].trace != c.trace || a[0].m != c.m || a[0].speed != c.speed);
        // The mix covers more than one machine count across 20 draws.
        assert!(
            a.iter()
                .map(|i| i.m)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn short_clean_run_passes() {
        let cfg = FuzzConfig {
            traces: 25,
            out_dir: None,
            ..FuzzConfig::default()
        };
        let s = run_fuzz(&cfg);
        assert!(s.ok(), "{:?}", s.failures);
        assert_eq!(s.traces, 25);
        assert!(s.checks_run > 25 * 10, "only {} checks ran", s.checks_run);
    }

    #[test]
    fn failure_records_round_trip_to_disk() {
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let f = FuzzFailure {
            index: 3,
            seed: 9,
            m: 1,
            speed: 1.0,
            check: "P-RR-SHARE".into(),
            policy: Some("RR".into()),
            detail: "example".into(),
            trace: t.clone(),
            shrunk: t,
            path: None,
        };
        let dir = std::env::temp_dir().join("tf-audit-test-records");
        let path = write_failure(&dir, &f).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("P-RR-SHARE"));
        assert!(json.contains("\"shrunk\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}

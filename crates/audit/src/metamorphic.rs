//! Metamorphic checks: transform an instance, predict how each policy's
//! output must move, and verify the prediction against a real simulation.
//!
//! Every transform ships only for the policies for which the predicted
//! relation is *provable* (see `docs/VALIDATION.md` for the soundness
//! arguments and the excluded policies):
//!
//! * **time scaling** (`M-TIME-SCALE`) — multiplying all arrivals and
//!   sizes by `c > 0` scales every flow time by exactly `c`, for any
//!   policy whose allocation depends only on scale-free observables
//!   (alive counts, orderings of arrivals/sizes/attained service). MLFQ
//!   (absolute quantum) and the adaptively-integrated AgedRR are excluded.
//! * **job relabeling** (`M-RELABEL`) — permuting the *insertion order*
//!   of jobs (which permutes ids within same-arrival tie groups) leaves
//!   the multiset of flow times unchanged for policies that are symmetric
//!   in tied jobs (RR, unit-weight WRR, SETF, SRPT). FCFS and LAPS are
//!   excluded: both break arrival ties by sequence number, so the
//!   flow multiset genuinely depends on the labeling.
//! * **machine-count monotonicity** (`M-MACHINE-MONO`) — RR with one
//!   extra machine completes every job no later, pointwise (a direct
//!   coupling: RR rates depend only on `n_t`, so extra capacity can only
//!   advance completions; scheduling anomalies of list schedulers do not
//!   apply to processor sharing).
//! * **speed-augmentation monotonicity** (`M-SPEED-MONO`) — RR at double
//!   speed completes every job no later, pointwise (same coupling).
//! * **lower-bound machine monotonicity** (`M-LB-MACHINE-MONO`) —
//!   `lk_lower_bound` is non-increasing in `m`: each component bound
//!   (size sum is `m`-free; the LP relaxes as machines are added; the
//!   SRPT super-machine speeds up) is non-increasing.

use crate::catalogue::{AuditConfig, AuditReport};
use tf_lowerbound::lk_lower_bound;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, Schedule, SimError, SimOptions, Trace, TraceBuilder};

/// Policies for which exact time-scale invariance is provable.
pub const TIME_SCALE_POLICIES: &[Policy] = &[
    Policy::Rr,
    Policy::Wrr,
    Policy::Srpt,
    Policy::Sjf,
    Policy::Hdf,
    Policy::Setf,
    Policy::Fcfs,
    Policy::Laps(0.5),
];

/// Policies for which relabeling invariance (flow multiset) is provable.
pub const RELABEL_POLICIES: &[Policy] = &[Policy::Rr, Policy::Wrr, Policy::Srpt, Policy::Setf];

fn run(trace: &Trace, p: Policy, m: usize, speed: f64) -> Result<Schedule, SimError> {
    simulate(
        trace,
        p.make().as_mut(),
        MachineConfig::with_speed(m, speed),
        SimOptions::default(),
    )
}

/// Scale all arrivals and sizes of `trace` by `c > 0`.
fn scale_trace(trace: &Trace, c: f64) -> Trace {
    let mut b = TraceBuilder::new();
    for j in trace.jobs() {
        b.push_weighted(j.arrival * c, j.size * c, j.weight);
    }
    b.build().expect("scaling preserves validity")
}

/// Reverse the insertion order of `trace`'s jobs — after the builder's
/// stable sort this exactly reverses every same-arrival tie group, the
/// strongest relabeling the [`Trace`] representation admits (a trace
/// canonicalizes ids, so relabeling *is* a permutation of tie groups).
fn relabel_trace(trace: &Trace) -> Trace {
    let mut b = TraceBuilder::new();
    for j in trace.jobs().iter().rev() {
        b.push_weighted(j.arrival, j.size, j.weight);
    }
    b.build().expect("relabeling preserves validity")
}

/// Run the full metamorphic suite on `trace` at the given machine
/// environment. Adds one check per (transform × applicable policy).
///
/// ```
/// use tf_audit::{metamorphic_suite, AuditConfig};
/// use tf_simcore::Trace;
///
/// let trace = Trace::from_pairs([(0.0, 3.0), (0.0, 1.0), (2.0, 2.0)]).unwrap();
/// let report = metamorphic_suite(&trace, 2, 1.0, &AuditConfig::default());
/// assert!(report.ok(), "{:?}", report.violations);
/// ```
pub fn metamorphic_suite(trace: &Trace, m: usize, speed: f64, cfg: &AuditConfig) -> AuditReport {
    let mut span = tf_obs::span!("audit", "metamorphic");
    span.arg("n", trace.len() as f64);
    let mut rep = AuditReport::default();
    if trace.is_empty() {
        return rep;
    }

    time_scaling(trace, m, speed, cfg, &mut rep);
    relabeling(trace, m, speed, cfg, &mut rep);
    rr_machine_monotonicity(trace, m, speed, cfg, &mut rep);
    rr_speed_monotonicity(trace, m, speed, cfg, &mut rep);
    lb_machine_monotonicity(trace, m, cfg, &mut rep);
    rep
}

/// M-TIME-SCALE: `F_j(c·I) = c·F_j(I)` for scale-free policies.
fn time_scaling(trace: &Trace, m: usize, speed: f64, cfg: &AuditConfig, rep: &mut AuditReport) {
    const C: f64 = 3.0;
    let scaled = scale_trace(trace, C);
    for &p in TIME_SCALE_POLICIES {
        rep.ran();
        let (Ok(base), Ok(big)) = (run(trace, p, m, speed), run(&scaled, p, m, speed)) else {
            rep.fail(
                "M-TIME-SCALE",
                Some(&p.to_string()),
                "simulation failed".into(),
            );
            continue;
        };
        // SETF's attained-service grouping uses a tolerance with an
        // absolute floor, which is not perfectly scale-free near group
        // boundaries; a looser relative tolerance absorbs that.
        let scale = base.max_flow().max(1.0) * C;
        let tol = cfg.rel_tol.max(1e-9) * 100.0 * scale;
        for (j, (&f, &g)) in base.flow.iter().zip(&big.flow).enumerate() {
            if (g - C * f).abs() > tol {
                rep.fail(
                    "M-TIME-SCALE",
                    Some(&p.to_string()),
                    format!("job {j}: flow {g} on the x{C} trace != {C}·{f}"),
                );
                break;
            }
        }
    }
}

/// M-RELABEL: the flow-time multiset is invariant under relabeling for
/// tie-symmetric policies.
fn relabeling(trace: &Trace, m: usize, speed: f64, cfg: &AuditConfig, rep: &mut AuditReport) {
    let relabeled = relabel_trace(trace);
    for &p in RELABEL_POLICIES {
        // WRR is only tie-symmetric when weights are uniform.
        if p == Policy::Wrr && trace.jobs().iter().any(|j| j.weight != 1.0) {
            continue;
        }
        rep.ran();
        let (Ok(base), Ok(perm)) = (run(trace, p, m, speed), run(&relabeled, p, m, speed)) else {
            rep.fail(
                "M-RELABEL",
                Some(&p.to_string()),
                "simulation failed".into(),
            );
            continue;
        };
        let mut a = base.flow.clone();
        let mut b = perm.flow.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        let tol = cfg.rel_tol * base.max_flow().max(1.0);
        if a.iter().zip(&b).any(|(x, y)| (x - y).abs() > tol) {
            rep.fail(
                "M-RELABEL",
                Some(&p.to_string()),
                format!("flow multiset changed under relabeling: {a:?} vs {b:?}"),
            );
        }
    }
}

/// M-MACHINE-MONO: RR on `m+1` machines completes every job no later.
fn rr_machine_monotonicity(
    trace: &Trace,
    m: usize,
    speed: f64,
    cfg: &AuditConfig,
    rep: &mut AuditReport,
) {
    rep.ran();
    let (Ok(base), Ok(more)) = (
        run(trace, Policy::Rr, m, speed),
        run(trace, Policy::Rr, m + 1, speed),
    ) else {
        rep.fail("M-MACHINE-MONO", Some("RR"), "simulation failed".into());
        return;
    };
    let tol = cfg.rel_tol * base.makespan().max(1.0);
    for (j, (&c0, &c1)) in base.completion.iter().zip(&more.completion).enumerate() {
        if c1 > c0 + tol {
            rep.fail(
                "M-MACHINE-MONO",
                Some("RR"),
                format!(
                    "job {j}: completes at {c1} on {} machines, later than {c0} on {m}",
                    m + 1
                ),
            );
            return;
        }
    }
}

/// M-SPEED-MONO: RR at double speed completes every job no later.
fn rr_speed_monotonicity(
    trace: &Trace,
    m: usize,
    speed: f64,
    cfg: &AuditConfig,
    rep: &mut AuditReport,
) {
    rep.ran();
    let (Ok(base), Ok(fast)) = (
        run(trace, Policy::Rr, m, speed),
        run(trace, Policy::Rr, m, 2.0 * speed),
    ) else {
        rep.fail("M-SPEED-MONO", Some("RR"), "simulation failed".into());
        return;
    };
    let tol = cfg.rel_tol * base.makespan().max(1.0);
    for (j, (&c0, &c1)) in base.completion.iter().zip(&fast.completion).enumerate() {
        if c1 > c0 + tol {
            rep.fail(
                "M-SPEED-MONO",
                Some("RR"),
                format!(
                    "job {j}: completes at {c1} at speed {}, later than {c0} at {speed}",
                    2.0 * speed
                ),
            );
            return;
        }
    }
}

/// M-LB-MACHINE-MONO: the certified lower bound is non-increasing in `m`.
fn lb_machine_monotonicity(trace: &Trace, m: usize, cfg: &AuditConfig, rep: &mut AuditReport) {
    rep.ran();
    let lo = lk_lower_bound(trace, m, cfg.k);
    let hi = lk_lower_bound(trace, m + 1, cfg.k);
    let tol = cfg.rel_tol * lo.value.max(1.0);
    if hi.value > lo.value + tol {
        rep.fail(
            "M-LB-MACHINE-MONO",
            None,
            format!(
                "lower bound grew with machines: {} on m={} vs {} on m={}",
                lo.value,
                m,
                hi.value,
                m + 1
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AuditConfig {
        AuditConfig::default()
    }

    #[test]
    fn clean_instances_pass() {
        let traces = [
            Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0)]).unwrap(),
            Trace::from_pairs([(0.0, 1.0); 6]).unwrap(),
            Trace::from_pairs([(0.5, 1.25), (0.5, 2.5), (3.75, 0.5)]).unwrap(),
        ];
        for t in &traces {
            for m in [1usize, 2] {
                let rep = metamorphic_suite(t, m, 1.0, &cfg());
                assert!(rep.ok(), "m={m} {t:?}: {:?}", rep.violations);
            }
        }
    }

    #[test]
    fn scaled_trace_helper_scales_exactly() {
        let t = Trace::from_pairs([(1.0, 2.0), (3.0, 4.0)]).unwrap();
        let s = scale_trace(&t, 2.0);
        assert_eq!(s.job(0).arrival, 2.0);
        assert_eq!(s.job(1).size, 8.0);
    }

    #[test]
    fn relabel_reverses_tie_groups() {
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 2.0), (1.0, 3.0)]).unwrap();
        let r = relabel_trace(&t);
        // Same multiset of jobs, tie group at t=0 reversed.
        assert_eq!(r.job(0).size, 2.0);
        assert_eq!(r.job(1).size, 1.0);
        assert_eq!(r.job(2).size, 3.0);
    }

    #[test]
    fn mlfq_is_genuinely_not_scale_invariant() {
        // Justifies MLFQ's exclusion from TIME_SCALE_POLICIES: the
        // absolute quantum makes its schedule depend on the time unit.
        // On the x10 trace the second job reaches the first job's level
        // after attaining 7 (not 10·0.7), so the equal-share phase starts
        // at a different relative point and its flow deviates from 10×.
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.2)]).unwrap();
        let base = run(&t, Policy::Mlfq, 1, 1.0).unwrap();
        let scaled = run(&scale_trace(&t, 10.0), Policy::Mlfq, 1, 1.0).unwrap();
        let drift = base
            .flow
            .iter()
            .zip(&scaled.flow)
            .map(|(&f, &g)| (g - 10.0 * f).abs())
            .fold(0.0, f64::max);
        assert!(drift > 1e-3, "MLFQ unexpectedly scale-invariant ({drift})");
    }
}

//! Delta-debugging counterexample shrinker.
//!
//! Given a trace on which some predicate (typically "this audit check
//! fails") holds, [`shrink_trace`] greedily minimizes the trace while
//! preserving the predicate. The reduction passes, applied to a fixpoint:
//!
//! 1. **drop jobs** — remove one job at a time (ddmin with granularity 1;
//!    audit traces are small enough that the quadratic pass is cheap);
//! 2. **shrink sizes** — snap each size to 1, else halve it (rounding up
//!    when the input trace is integral, so integrality — and with it the
//!    LP-based checks — is preserved);
//! 3. **snap arrivals** — move each arrival to 0, else halve it, else
//!    pull it back to the previous job's arrival (rounding down under
//!    integrality);
//! 4. **translate** — shift *all* arrivals left by the minimum arrival
//!    (a global move that per-job snapping cannot make without breaking
//!    the inter-arrival structure a failure may depend on).
//!
//! Every accepted reduction emits a `tf-obs` instant event
//! (`audit.shrink`) so long shrink runs are visible in traces.

use tf_simcore::{Trace, TraceBuilder};

/// One `(arrival, size, weight)` row — the mutable form a [`Trace`] is
/// rebuilt from between reduction attempts.
type Row = (f64, f64, f64);

fn rows_of(trace: &Trace) -> Vec<Row> {
    trace
        .jobs()
        .iter()
        .map(|j| (j.arrival, j.size, j.weight))
        .collect()
}

fn trace_of(rows: &[Row]) -> Option<Trace> {
    let mut b = TraceBuilder::new();
    for &(arrival, size, weight) in rows {
        b.push_weighted(arrival, size, weight);
    }
    b.build().ok()
}

/// Shrink `trace` to a (locally) minimal trace on which `failing` still
/// returns `true`. `failing(&trace)` must hold on the input; if it does
/// not, the input is returned unchanged.
///
/// The result is 1-minimal with respect to the reduction passes: no
/// single job can be dropped, no single size snapped down, and no single
/// arrival snapped earlier without losing the failure. Determinism of
/// `failing` is assumed (flaky predicates yield arbitrary but valid
/// reductions).
///
/// ```
/// use tf_audit::shrink_trace;
/// use tf_simcore::Trace;
///
/// let t = Trace::from_pairs([(0.0, 5.0), (1.0, 2.0), (7.0, 3.0), (9.0, 1.0)]).unwrap();
/// // Pretend the bug needs at least two jobs alive simultaneously.
/// let overlap = |t: &Trace| {
///     t.jobs()
///         .iter()
///         .zip(t.jobs().iter().skip(1))
///         .any(|(a, b)| b.arrival < a.arrival + a.size)
/// };
/// let small = shrink_trace(&t, overlap);
/// assert!(overlap(&small));
/// assert_eq!(small.len(), 2); // two unit jobs at time 0 suffice
/// assert!(small.total_size() <= 2.0);
/// ```
pub fn shrink_trace<F>(trace: &Trace, mut failing: F) -> Trace
where
    F: FnMut(&Trace) -> bool,
{
    if !failing(trace) {
        return trace.clone();
    }
    let integral = trace.is_integral(1e-9);
    let mut rows = rows_of(trace);

    // A candidate is accepted iff it builds into a valid trace and still
    // fails; acceptance emits the shrink event.
    let try_rows = |rows: &[Row], failing: &mut F| -> bool {
        match trace_of(rows) {
            Some(t) if failing(&t) => {
                if tf_obs::enabled() {
                    tf_obs::instant!("audit", "shrink");
                }
                true
            }
            _ => false,
        }
    };

    loop {
        let mut progress = false;

        // Pass 1: drop single jobs.
        let mut i = 0;
        while i < rows.len() {
            if rows.len() > 1 {
                let mut cand = rows.clone();
                cand.remove(i);
                if try_rows(&cand, &mut failing) {
                    rows = cand;
                    progress = true;
                    continue; // same index now names the next job
                }
            }
            i += 1;
        }

        // Pass 2: shrink sizes (snap to 1, else halve).
        for i in 0..rows.len() {
            let size = rows[i].1;
            for target in [1.0, half(size, integral)] {
                if target < size {
                    let mut cand = rows.clone();
                    cand[i].1 = target;
                    if try_rows(&cand, &mut failing) {
                        rows = cand;
                        progress = true;
                        break;
                    }
                }
            }
        }

        // Pass 3: snap arrivals (to 0, else halve, else to predecessor).
        for i in 0..rows.len() {
            let arrival = rows[i].0;
            let prev = if i > 0 { rows[i - 1].0 } else { 0.0 };
            for target in [0.0, half_down(arrival, integral), prev] {
                if target < arrival {
                    let mut cand = rows.clone();
                    cand[i].0 = target;
                    if try_rows(&cand, &mut failing) {
                        rows = cand;
                        progress = true;
                        break;
                    }
                }
            }
        }

        // Pass 4: translate everything to start at time 0.
        let min_arrival = rows.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        if min_arrival > 0.0 {
            let mut cand = rows.clone();
            for r in &mut cand {
                r.0 -= min_arrival;
            }
            if try_rows(&cand, &mut failing) {
                rows = cand;
                progress = true;
            }
        }

        if !progress {
            break;
        }
    }
    trace_of(&rows).expect("shrunk rows remain a valid trace")
}

/// Half of a size, rounded up to an integer when shrinking an integral
/// trace (sizes must stay ≥ 1 and integral for the LP checks).
fn half(x: f64, integral: bool) -> f64 {
    let h = x / 2.0;
    if integral {
        h.ceil().max(1.0)
    } else {
        h
    }
}

/// Half of an arrival, rounded down under integrality (arrivals may
/// reach 0).
fn half_down(x: f64, integral: bool) -> f64 {
    let h = x / 2.0;
    if integral {
        h.floor()
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let t = Trace::from_pairs([(0.0, 3.0), (1.0, 2.0)]).unwrap();
        let out = shrink_trace(&t, |_| false);
        assert_eq!(out, t);
    }

    #[test]
    fn shrinks_to_single_unit_job_for_trivial_predicate() {
        let t = Trace::from_pairs([(0.0, 5.0), (2.0, 3.0), (4.0, 7.0), (8.0, 1.0)]).unwrap();
        let out = shrink_trace(&t, |t| !t.is_empty());
        assert_eq!(out.len(), 1);
        assert_eq!(out.job(0).size, 1.0);
        assert_eq!(out.job(0).arrival, 0.0);
    }

    #[test]
    fn preserves_integrality() {
        let t = Trace::from_pairs([(3.0, 7.0), (5.0, 9.0)]).unwrap();
        // Keep total size above 5 — forces halving, not snapping to 1.
        let out = shrink_trace(&t, |t| t.total_size() > 5.0);
        assert!(out.is_integral(1e-9), "{out:?}");
        assert!(out.total_size() > 5.0);
    }

    #[test]
    fn fractional_traces_shrink_without_rounding() {
        let t = Trace::from_pairs([(0.5, 6.5), (1.25, 2.75)]).unwrap();
        let out = shrink_trace(&t, |t| t.total_size() > 3.0);
        assert!(out.total_size() > 3.0);
        assert!(out.len() <= 2);
        assert!(out.total_size() < t.total_size());
    }

    #[test]
    fn respects_predicate_needing_multiple_jobs() {
        let t = Trace::from_pairs([(0.0, 1.0); 8]).unwrap();
        let out = shrink_trace(&t, |t| t.len() >= 3);
        assert_eq!(out.len(), 3);
    }
}

//! `audit` — the fuzzing CLI: random traces × all policies × the whole
//! invariant catalogue, with delta-debugging shrinks of any failure.
//!
//! ```text
//! audit [--traces N] [--seed S] [--quick] [--no-metamorphic]
//!       [--k K] [--eps E] [--out DIR] [--no-cache] [--threads N] [--trace PATH]
//! ```
//!
//! Exit status is 0 iff no invariant was violated. Failures are shrunk
//! and written to `--out` (default `results/audit/`) as JSON records
//! that `tf-workload`'s trace loader can replay. Tracing follows the
//! same `TF_TRACE` conventions as the `experiments` bin.

use std::path::PathBuf;
use std::time::Duration;
use tf_audit::{run_fuzz, FuzzConfig};
use tf_harness::campaign::{self, CampaignCfg};
use tf_harness::RunCtx;

fn usage() -> ! {
    eprintln!(
        "usage: audit [--traces N] [--seed S] [--quick] [--no-metamorphic] [--k K] [--eps E]\n\
         \x20            [--out DIR] [--no-cache] [--threads N] [--trace PATH]\n\
         \x20            [--campaign DIR] [--resume] [--task-timeout SECS]\n\
         Fuzzes random traces through every registered policy and the full\n\
         invariant catalogue (see docs/VALIDATION.md). Failing traces are\n\
         shrunk to minimal counterexamples and written to the output dir.\n\
         --traces N        instances to generate (default 1000)\n\
         --seed S          master seed (default 0xA5D17)\n\
         --quick           200 instances (CI smoke scale)\n\
         --no-metamorphic  skip the metamorphic suite\n\
         --k K             norm exponent for cross-layer checks (default 2)\n\
         --eps E           Theorem 1 epsilon (default 0.05)\n\
         --out DIR         counterexample directory (default results/audit)\n\
         --no-cache        bypass the on-disk lower-bound cache\n\
         --threads N       fix the worker-thread count\n\
         --trace PATH      write the TF_TRACE-selected trace format to PATH\n\
         --campaign DIR    journal clean fuzz chunks to DIR (crash-safe resume)\n\
         --resume          replay clean chunks from the campaign journal\n\
         --task-timeout S  per-chunk lower-bound budget in seconds"
    );
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut ctx = RunCtx::full();
    let mut trace_path: Option<PathBuf> = None;
    let mut campaign_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut task_timeout: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--campaign" => {
                campaign_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--resume" => resume = true,
            "--task-timeout" => {
                task_timeout = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--traces" => cfg.traces = parsed(args.next()),
            "--seed" => cfg.seed = parsed(args.next()),
            "--quick" => cfg.traces = 200,
            "--no-metamorphic" => cfg.metamorphic = false,
            "--k" => cfg.audit.k = parsed(args.next()),
            "--eps" => cfg.audit.eps = parsed(args.next()),
            "--out" => cfg.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--no-cache" => ctx.cache = false,
            "--threads" => ctx.threads = Some(parsed(args.next())),
            "--trace" => trace_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    ctx.trace = tf_obs::SinkSpec::from_env(trace_path, "audit").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(dir) = campaign_dir {
        let mut c = CampaignCfg::new(dir).resume(resume);
        if let Some(secs) = task_timeout {
            c = c.task_timeout(Duration::from_secs_f64(secs));
        }
        ctx.campaign = Some(c);
    } else if resume || task_timeout.is_some() {
        eprintln!("--resume/--task-timeout require --campaign DIR");
        usage();
    }
    if let Err(e) = ctx.apply() {
        eprintln!("cannot open campaign directory: {e}");
        std::process::exit(2);
    }

    let summary = run_fuzz(&cfg);
    println!(
        "audit: {} traces, {} checks, {} violation(s)",
        summary.traces, summary.checks_run, summary.violations
    );
    for f in &summary.failures {
        let policy = f.policy.as_deref().unwrap_or("-");
        let dest = f
            .path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "(not written)".into());
        println!(
            "  FAIL #{} {} [{}] shrunk {} -> {} jobs -> {}",
            f.index,
            f.check,
            policy,
            f.trace.len(),
            f.shrunk.len(),
            dest
        );
        println!("       {}", f.detail);
    }

    if let Some(c) = campaign::active() {
        let run_key = format!("audit:{}:{}", cfg.seed, cfg.traces);
        match c.finish(&run_key) {
            Ok(m) => eprintln!(
                "campaign: {} replayed, {} computed, {} attempts, {} retries, {} degradations",
                m.replays, m.computed, m.attempts, m.retries, m.degradations
            ),
            Err(e) => eprintln!("campaign: manifest write failed: {e}"),
        }
    }

    if !ctx.trace.is_off() {
        match tf_obs::flush() {
            Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
    std::process::exit(if summary.ok() { 0 } else { 1 });
}

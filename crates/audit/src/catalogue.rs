//! The invariant catalogue: every check the audit layer can run, with a
//! stable id per check.
//!
//! Checks come in three tiers (see `docs/VALIDATION.md` for the full
//! catalogue with justifications and tolerances):
//!
//! * **S-checks** — schedule-level feasibility and accounting. These are
//!   implemented once, in [`tf_simcore::validate::validate_schedule`]
//!   (the single source of truth); the audit layer invokes them and maps
//!   the result onto catalogue id `S*`.
//! * **P-checks** — policy-structural oracles: does the recorded profile
//!   match the policy's *definition* (RR equal share, SETF
//!   least-attained priority, LAPS latest-β support, FCFS front-running),
//!   and do the differential optimality oracles hold (SRPT minimizes
//!   total flow on `m = 1`, FCFS minimizes max flow on `m = 1`)?
//! * **X-checks** — cross-layer oracles tying the simulator, the
//!   certified LP lower bound, and the dual-fitting certificate together:
//!   the lower bound never exceeds any policy's cost (X1), the Theorem 1
//!   certificate verifies on RR schedules at the prescribed speed (X2),
//!   the optimized LP solver agrees with the PR-1 reference solver (X3),
//!   a warm-started column-generation solve reproduces the cold exact
//!   bound (X4), and the interval-aggregated bound sandwiches the exact
//!   LP without ever beating the exact combined bound (X5).

use tf_lowerbound::{
    lk_lower_bound, lk_lower_bound_aggregated, lk_lower_bound_colgen_budgeted,
    lk_lower_bound_reference, AggConfig, SolveBudget,
};
use tf_policies::{Policy, RoundRobin};
use tf_simcore::validate::validate_schedule;
use tf_simcore::{simulate, MachineConfig, Profile, Schedule, SimOptions, Trace};

/// Configuration shared by every audit entry point.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Relative tolerance for floating-point comparisons. Scaled by the
    /// natural magnitude of each quantity (makespan for times, rate cap
    /// for rates, objective value for costs).
    pub rel_tol: f64,
    /// Norm exponent `k` used by the cross-layer checks (X1–X3).
    pub k: u32,
    /// The `ε` parameter of the Theorem 1 certificate check (X2).
    pub eps: f64,
    /// Run the lower-bound dominance check X1 (requires speed 1).
    pub check_lower_bound: bool,
    /// Run the optimized-vs-reference solver equivalence check X3
    /// (integral traces only; the reference solver is slow).
    pub check_reference_solver: bool,
    /// Run the Theorem 1 certificate check X2 (simulates RR at speed
    /// `η = 2k(1+10ε)` internally).
    pub check_certificate: bool,
    /// Run the warm-start equivalence check X4: a column-generation
    /// solve seeded with a *neighbouring* instance's dual handle must
    /// reproduce the cold exact bound (integral traces only).
    pub check_warm_start: bool,
    /// Run the aggregation soundness check X5: the interval-aggregated
    /// bound must sandwich the exact LP (`lp_lo ≤ LP ≤ lp_hi`) and never
    /// beat the exact combined bound (integral traces only).
    pub check_aggregation: bool,
    /// Skip the expensive cross-layer checks (X2, X3) on traces with
    /// more jobs than this.
    pub max_exact_jobs: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            rel_tol: 1e-7,
            k: 2,
            eps: 0.05,
            check_lower_bound: true,
            check_reference_solver: true,
            check_certificate: true,
            check_warm_start: true,
            check_aggregation: true,
            max_exact_jobs: 12,
        }
    }
}

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Catalogue id of the violated check (`"S1"`, `"P-RR-SHARE"`, …).
    pub check: &'static str,
    /// Policy the violation was observed under, if policy-specific.
    pub policy: Option<String>,
    /// Human-readable description with the offending numbers.
    pub detail: String,
}

/// Outcome of an audit: which checks ran and what they found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every violated invariant, in detection order.
    pub violations: Vec<Violation>,
    /// Number of catalogue checks evaluated (for coverage accounting).
    pub checks_run: usize,
}

impl AuditReport {
    /// True iff no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Record one evaluated check.
    pub(crate) fn ran(&mut self) {
        self.checks_run += 1;
    }

    /// Record a violation.
    pub(crate) fn fail(&mut self, check: &'static str, policy: Option<&str>, detail: String) {
        self.violations.push(Violation {
            check,
            policy: policy.map(str::to_owned),
            detail,
        });
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks_run += other.checks_run;
        self.violations.extend(other.violations);
    }

    /// True iff some violation is of the given catalogue check id.
    pub fn has(&self, check: &str) -> bool {
        self.violations.iter().any(|v| v.check == check)
    }
}

/// Audit one recorded schedule against the catalogue: the S-checks
/// (delegated to [`tf_simcore::validate::validate_schedule`]) plus the
/// structural P-checks for `policy`, when one is named and has a
/// structural oracle (RR, WRR, SETF, LAPS, FCFS).
///
/// The schedule must carry a [`Profile`] (simulate with
/// `SimOptions::with_profile()` or `Simulation::record_profile()`);
/// without one the S-checks report the missing profile as a violation.
///
/// ```
/// use tf_audit::{audit_schedule, AuditConfig};
/// use tf_policies::Policy;
/// use tf_simcore::{Simulation, Trace};
///
/// let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0)]).unwrap();
/// let mut rr = Policy::Rr.make();
/// let sched = Simulation::of(&trace)
///     .policy(rr.as_mut())
///     .record_profile()
///     .run()
///     .unwrap();
/// let report = audit_schedule(&trace, &sched, Some(Policy::Rr), &AuditConfig::default());
/// assert!(report.ok(), "{:?}", report.violations);
/// ```
pub fn audit_schedule(
    trace: &Trace,
    sched: &Schedule,
    policy: Option<Policy>,
    cfg: &AuditConfig,
) -> AuditReport {
    let mut span = tf_obs::span!("audit", "check");
    span.arg("n", trace.len() as f64);
    let mut rep = AuditReport::default();
    let pname = policy.map(|p| p.to_string());
    let pname = pname.as_deref();

    // S-checks: one source of truth in tf-simcore.
    rep.ran();
    let feas = validate_schedule(trace, sched, cfg.rel_tol);
    for issue in feas.issues {
        rep.fail("S", pname, issue);
    }

    let Some(profile) = sched.profile.as_ref() else {
        return rep; // already reported by validate_schedule
    };

    match policy {
        Some(Policy::Rr) => check_rr_structure(trace, sched, profile, cfg, &mut rep),
        // WRR degenerates to RR exactly when every weight is 1 (the
        // water-filling splits the budget equally).
        Some(Policy::Wrr) if trace.jobs().iter().all(|j| j.weight == 1.0) => {
            check_rr_structure(trace, sched, profile, cfg, &mut rep)
        }
        Some(Policy::Setf) => check_setf_structure(profile, cfg, &mut rep),
        Some(Policy::Laps(beta)) => check_laps_structure(profile, beta, cfg, &mut rep),
        Some(Policy::Fcfs) => check_fcfs_structure(profile, cfg, &mut rep),
        _ => {}
    }
    rep
}

/// P-RR-SHARE + P-RR-NOSTARVE: in every segment of an RR profile, every
/// alive job's rate equals `s·min(1, m/n_t)` — in particular it is
/// strictly positive, which is the zero-service-denial guarantee the
/// paper's temporal-fairness motivation rests on (E7/E8).
fn check_rr_structure(
    _trace: &Trace,
    sched: &Schedule,
    profile: &Profile,
    cfg: &AuditConfig,
    rep: &mut AuditReport,
) {
    let mcfg: MachineConfig = sched.cfg;
    let tol = cfg.rel_tol * mcfg.job_cap().max(1.0);
    rep.ran();
    rep.ran();
    for (si, seg) in profile.segments().enumerate() {
        let want = RoundRobin::share(&mcfg, seg.n_alive());
        for &(id, r) in seg.rates {
            if (r - want).abs() > tol {
                rep.fail(
                    "P-RR-SHARE",
                    Some("RR"),
                    format!(
                        "segment {si}: job {id} rate {r} != equal share {want} (n={}, m={}, s={})",
                        seg.n_alive(),
                        mcfg.m,
                        mcfg.speed
                    ),
                );
                return;
            }
            if r <= 0.0 {
                rep.fail(
                    "P-RR-NOSTARVE",
                    Some("RR"),
                    format!("segment {si}: job {id} starved (rate {r}) under RR"),
                );
                return;
            }
        }
    }
}

/// P-SETF-ORDER: SETF serves by least attained service — sorting a
/// segment's alive jobs by their attained service at the segment start,
/// rates must be non-increasing (priority groups drain capacity in
/// attained order; a lower-attained job can never get less than a
/// higher-attained one).
fn check_setf_structure(profile: &Profile, cfg: &AuditConfig, rep: &mut AuditReport) {
    rep.ran();
    let tol = cfg.rel_tol * profile.speed.max(1.0);
    // Attained-so-far tolerance: the engine groups attained values with an
    // absolute-relative tie tolerance; mirror that scale here.
    let mut attained: Vec<f64> = Vec::new();
    for (si, seg) in profile.segments().enumerate() {
        let n = seg
            .rates
            .iter()
            .map(|&(id, _)| id as usize + 1)
            .max()
            .unwrap_or(0);
        if attained.len() < n {
            attained.resize(n, 0.0);
        }
        let mut order: Vec<usize> = (0..seg.rates.len()).collect();
        order.sort_by(|&a, &b| {
            let (ia, ib) = (seg.rates[a].0 as usize, seg.rates[b].0 as usize);
            attained[ia].partial_cmp(&attained[ib]).unwrap()
        });
        // Jobs whose attained services are within the engine's tie
        // tolerance form one group and may legitimately share unequal
        // leftovers only across *distinct* groups; between clearly
        // distinct attained values, rates must not increase.
        for w in order.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let (ilo, ihi) = (seg.rates[lo].0 as usize, seg.rates[hi].0 as usize);
            let gap = attained[ihi] - attained[ilo];
            let tie = 1e-6 * (1.0 + attained[ilo].abs().max(attained[ihi].abs()));
            if gap > tie && seg.rates[hi].1 > seg.rates[lo].1 + tol {
                rep.fail(
                    "P-SETF-ORDER",
                    Some("SETF"),
                    format!(
                        "segment {si}: job {} (attained {}) at rate {} outranks job {} (attained {}) at rate {}",
                        ihi, attained[ihi], seg.rates[hi].1, ilo, attained[ilo], seg.rates[lo].1
                    ),
                );
                return;
            }
        }
        let dt = seg.duration();
        for &(id, r) in seg.rates {
            attained[id as usize] += r * dt;
        }
    }
}

/// P-LAPS-SUPPORT: LAPS(β) serves exactly the `⌈β·n_t⌉` latest-arrived
/// alive jobs, equally. Job ids are arrival ranks, so "latest" is the
/// suffix of the segment's id-sorted rate list.
fn check_laps_structure(profile: &Profile, beta: f64, cfg: &AuditConfig, rep: &mut AuditReport) {
    rep.ran();
    let tol = cfg.rel_tol * profile.speed.max(1.0);
    for (si, seg) in profile.segments().enumerate() {
        let n = seg.n_alive();
        if n == 0 {
            continue;
        }
        let served = ((beta * n as f64).ceil() as usize).clamp(1, n);
        let share = (profile.m as f64 * profile.speed / served as f64).min(profile.speed);
        for (pos, &(id, r)) in seg.rates.iter().enumerate() {
            let want = if pos >= n - served { share } else { 0.0 };
            if (r - want).abs() > tol {
                rep.fail(
                    "P-LAPS-SUPPORT",
                    Some("LAPS"),
                    format!(
                        "segment {si}: job {id} rate {r} != {want} (n={n}, serving latest {served})"
                    ),
                );
                return;
            }
        }
    }
}

/// P-FCFS-FRONT: FCFS runs the `m` earliest-arrived alive jobs at full
/// machine speed and nothing else.
fn check_fcfs_structure(profile: &Profile, cfg: &AuditConfig, rep: &mut AuditReport) {
    rep.ran();
    let tol = cfg.rel_tol * profile.speed.max(1.0);
    for (si, seg) in profile.segments().enumerate() {
        let served = profile.m.min(seg.n_alive());
        for (pos, &(id, r)) in seg.rates.iter().enumerate() {
            let want = if pos < served { profile.speed } else { 0.0 };
            if (r - want).abs() > tol {
                rep.fail(
                    "P-FCFS-FRONT",
                    Some("FCFS"),
                    format!("segment {si}: job {id} rate {r} != {want} (front-running {served})"),
                );
                return;
            }
        }
    }
}

/// Simulate every policy in `policies` on `trace` (with profiles) and run
/// the whole catalogue: S- and structural P-checks per schedule, the
/// differential optimality oracles (P-SRPT-OPT, P-FCFS-MAXFLOW on
/// `m = 1`), and the cross-layer X-checks.
///
/// `speed` is the common speed every policy runs at; the lower-bound
/// dominance check X1 compares against the *speed-1* optimum and is
/// therefore only run when `speed == 1`.
///
/// ```
/// use tf_audit::{audit_trace, AuditConfig};
/// use tf_policies::Policy;
/// use tf_simcore::Trace;
///
/// let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0)]).unwrap();
/// let report = audit_trace(&trace, 1, 1.0, &Policy::all(), &AuditConfig::default());
/// assert!(report.ok(), "{:?}", report.violations);
/// assert!(report.checks_run > 20);
/// ```
pub fn audit_trace(
    trace: &Trace,
    m: usize,
    speed: f64,
    policies: &[Policy],
    cfg: &AuditConfig,
) -> AuditReport {
    let mut span = tf_obs::span!("audit", "audit_trace");
    span.arg("n", trace.len() as f64);
    span.arg("m", m as f64);
    let mut rep = AuditReport::default();
    let mcfg = MachineConfig::with_speed(m, speed);

    let mut schedules: Vec<(Policy, Schedule)> = Vec::with_capacity(policies.len());
    for &p in policies {
        let mut alloc = p.make();
        match simulate(trace, alloc.as_mut(), mcfg, SimOptions::with_profile()) {
            Ok(s) => schedules.push((p, s)),
            Err(e) => {
                rep.ran();
                rep.fail(
                    "S-SIM",
                    Some(&p.to_string()),
                    format!("simulation failed: {e:?}"),
                );
            }
        }
    }

    for (p, s) in &schedules {
        rep.merge(audit_schedule(trace, s, Some(*p), cfg));
    }

    if m == 1 && !trace.is_empty() {
        differential_oracles(trace, speed, &schedules, cfg, &mut rep);
    }

    cross_layer_checks(trace, m, speed, &schedules, cfg, &mut rep);
    if tf_obs::enabled() {
        tf_obs::counter!("audit", "checks_run", rep.checks_run as f64);
    }
    rep
}

/// P-SRPT-OPT and P-FCFS-MAXFLOW: on one machine, SRPT exactly minimizes
/// total flow among all (even offline) schedules at the same speed, and
/// FCFS exactly minimizes maximum flow. Every policy's objective must
/// therefore dominate the respective optimum.
fn differential_oracles(
    trace: &Trace,
    speed: f64,
    schedules: &[(Policy, Schedule)],
    cfg: &AuditConfig,
    rep: &mut AuditReport,
) {
    let mcfg = MachineConfig::with_speed(1, speed);
    let opt_total = simulate(
        trace,
        Policy::Srpt.make().as_mut(),
        mcfg,
        SimOptions::default(),
    )
    .map(|s| s.total_flow());
    let opt_max = simulate(
        trace,
        Policy::Fcfs.make().as_mut(),
        mcfg,
        SimOptions::default(),
    )
    .map(|s| s.max_flow());

    if let Ok(opt) = opt_total {
        rep.ran();
        let tol = cfg.rel_tol * opt.max(1.0);
        for (p, s) in schedules {
            let total = s.total_flow();
            if total < opt - tol {
                rep.fail(
                    "P-SRPT-OPT",
                    Some(&p.to_string()),
                    format!("total flow {total} beats the SRPT optimum {opt} on m=1"),
                );
            }
        }
    }
    if let Ok(opt) = opt_max {
        rep.ran();
        let tol = cfg.rel_tol * opt.max(1.0);
        for (p, s) in schedules {
            let mx = s.max_flow();
            if mx < opt - tol {
                rep.fail(
                    "P-FCFS-MAXFLOW",
                    Some(&p.to_string()),
                    format!("max flow {mx} beats the FCFS optimum {opt} on m=1"),
                );
            }
        }
    }
}

/// X1 (lower bound dominates no policy), X2 (Theorem 1 certificate), X3
/// (optimized LP solver ≡ reference solver), X4 (warm-started colgen ≡
/// cold exact bound), X5 (aggregated bound sandwiches the exact LP).
fn cross_layer_checks(
    trace: &Trace,
    m: usize,
    speed: f64,
    schedules: &[(Policy, Schedule)],
    cfg: &AuditConfig,
    rep: &mut AuditReport,
) {
    if trace.is_empty() {
        return;
    }
    let kf = f64::from(cfg.k);

    if cfg.check_lower_bound && speed == 1.0 {
        rep.ran();
        let lb = lk_lower_bound(trace, m, cfg.k);
        for (p, s) in schedules {
            let obj = s.flow_power_sum(kf);
            if lb.value > obj * (1.0 + cfg.rel_tol) + cfg.rel_tol {
                rep.fail(
                    "X1-LB-DOMINANCE",
                    Some(&p.to_string()),
                    format!(
                        "certified lower bound {} exceeds {} objective {obj} (m={m}, k={})",
                        lb.value, p, cfg.k
                    ),
                );
            }
        }

        if cfg.check_reference_solver
            && trace.len() <= cfg.max_exact_jobs
            && trace.is_integral(1e-9)
        {
            rep.ran();
            let reference = lk_lower_bound_reference(trace, m, cfg.k);
            let tol = cfg.rel_tol * lb.value.abs().max(1.0);
            if (lb.value - reference.value).abs() > tol
                || (lb.lp_raw - reference.lp_raw).abs() > tol
            {
                rep.fail(
                    "X3-SOLVER-EQUIV",
                    None,
                    format!(
                        "optimized solver bound {} (lp {}) != reference {} (lp {})",
                        lb.value, lb.lp_raw, reference.value, reference.lp_raw
                    ),
                );
            }
        }
    }

    // X4/X5 audit the scale-path solvers (warm-started column
    // generation, interval aggregation) against the exact bound. The LP
    // is speed-independent, so these run at any simulation speed.
    if (cfg.check_warm_start || cfg.check_aggregation)
        && trace.len() <= cfg.max_exact_jobs
        && trace.is_integral(1e-9)
    {
        let exact = lk_lower_bound(trace, m, cfg.k);
        let tol = cfg.rel_tol * exact.value.abs().max(1.0);

        if cfg.check_warm_start {
            rep.ran();
            // Seed the handle from a *different* instance (m+1) so the
            // check exercises genuine dual remapping, not a no-op reuse.
            let unlimited = SolveBudget::unlimited();
            let neighbour = lk_lower_bound_colgen_budgeted(trace, m + 1, cfg.k, &unlimited, None);
            let handle = neighbour.as_ref().map(|(_, h, _)| h);
            match lk_lower_bound_colgen_budgeted(trace, m, cfg.k, &unlimited, handle) {
                Some((warm, _, _)) => {
                    if (warm.value - exact.value).abs() > tol {
                        rep.fail(
                            "X4-WARMSTART-EQUIV",
                            None,
                            format!(
                                "warm-started colgen bound {} != cold exact {} (m={m}, k={})",
                                warm.value, exact.value, cfg.k
                            ),
                        );
                    }
                }
                None => rep.fail(
                    "X4-WARMSTART-EQUIV",
                    None,
                    "unlimited-budget colgen solve reported a budget trip".to_string(),
                ),
            }
        }

        if cfg.check_aggregation {
            rep.ran();
            match lk_lower_bound_aggregated(
                trace,
                m,
                cfg.k,
                &AggConfig::default(),
                &SolveBudget::unlimited(),
            ) {
                Some(agg) => {
                    let lp_tol = cfg.rel_tol * exact.lp_raw.abs().max(1.0);
                    if agg.lp_lo > exact.lp_raw + lp_tol || exact.lp_raw > agg.lp_hi + lp_tol {
                        rep.fail(
                            "X5-AGG-SOUND",
                            None,
                            format!(
                                "aggregated LP sandwich [{}, {}] misses the exact LP {} (m={m}, k={})",
                                agg.lp_lo, agg.lp_hi, exact.lp_raw, cfg.k
                            ),
                        );
                    } else if agg.value > exact.value + tol {
                        rep.fail(
                            "X5-AGG-SOUND",
                            None,
                            format!(
                                "aggregated bound {} beats the exact bound {} (m={m}, k={})",
                                agg.value, exact.value, cfg.k
                            ),
                        );
                    }
                }
                None => rep.fail(
                    "X5-AGG-SOUND",
                    None,
                    "unlimited-budget aggregated solve reported a budget trip".to_string(),
                ),
            }
        }
    }

    if cfg.check_certificate && trace.len() <= cfg.max_exact_jobs {
        rep.ran();
        match tf_core::verify_theorem1(trace, m, cfg.k, cfg.eps) {
            Ok(cert) if cert.certified() => {}
            Ok(cert) => rep.fail(
                "X2-CERTIFICATE",
                None,
                format!(
                    "Theorem 1 certificate failed at eta={} (k={}, eps={}): {:?}",
                    cert.speed, cfg.k, cfg.eps, cert.report
                ),
            ),
            Err(e) => rep.fail(
                "X2-CERTIFICATE",
                None,
                format!("certificate pipeline failed to simulate: {e:?}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_simcore::AliveJob;
    use tf_simcore::RateAllocator;

    fn small_trace() -> Trace {
        Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap()
    }

    #[test]
    fn clean_trace_passes_all_policies() {
        for m in [1usize, 2] {
            let rep = audit_trace(
                &small_trace(),
                m,
                1.0,
                &Policy::all(),
                &AuditConfig::default(),
            );
            assert!(rep.ok(), "m={m}: {:?}", rep.violations);
            assert!(rep.checks_run > 10);
        }
    }

    #[test]
    fn clean_trace_passes_at_speed() {
        let rep = audit_trace(
            &small_trace(),
            2,
            4.4,
            &Policy::all(),
            &AuditConfig::default(),
        );
        assert!(rep.ok(), "{:?}", rep.violations);
    }

    /// An RR with an off-by-one in its share (divides by n+1) violates
    /// P-RR-SHARE but still yields a feasible schedule: the S-checks
    /// alone cannot catch it, the structural oracle must.
    struct OffByOneRr;
    impl RateAllocator for OffByOneRr {
        fn name(&self) -> &'static str {
            "RR"
        }
        fn allocate(
            &mut self,
            _now: f64,
            alive: &[AliveJob],
            cfg: &MachineConfig,
            rates: &mut [f64],
        ) {
            let share = cfg.speed * (cfg.m as f64 / (alive.len() + 1) as f64).min(1.0);
            rates.fill(share);
        }
    }

    #[test]
    fn off_by_one_rr_share_is_caught() {
        let t = small_trace();
        let s = simulate(
            &t,
            &mut OffByOneRr,
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let rep = audit_schedule(&t, &s, Some(Policy::Rr), &AuditConfig::default());
        assert!(rep.has("P-RR-SHARE"), "{:?}", rep.violations);
        // The genuine RR passes the same check.
        let ok = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        assert!(audit_schedule(&t, &ok, Some(Policy::Rr), &AuditConfig::default()).ok());
    }

    #[test]
    fn tampered_lower_bound_comparison_fails() {
        // Simulate RR, then quadruple the claimed completion times so the
        // objective undercuts the certified bound: X1 must fire.
        let t = Trace::from_pairs([(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)]).unwrap();
        let mut s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        for f in &mut s.flow {
            *f *= 0.01;
        }
        let mut rep = AuditReport::default();
        cross_layer_checks(
            &t,
            1,
            1.0,
            &[(Policy::Rr, s)],
            &AuditConfig::default(),
            &mut rep,
        );
        assert!(rep.has("X1-LB-DOMINANCE"), "{:?}", rep.violations);
    }

    #[test]
    fn scale_path_checks_run_and_pass_on_clean_traces() {
        // X4/X5 are speed-independent: they must run (and pass) even at
        // speed ≠ 1, where X1/X3 are skipped.
        let t = small_trace();
        let full = audit_trace(&t, 2, 3.0, &[Policy::Rr], &AuditConfig::default());
        assert!(full.ok(), "{:?}", full.violations);
        let without = AuditConfig {
            check_warm_start: false,
            check_aggregation: false,
            ..AuditConfig::default()
        };
        let fewer = audit_trace(&t, 2, 3.0, &[Policy::Rr], &without);
        assert_eq!(
            full.checks_run,
            fewer.checks_run + 2,
            "X4 and X5 each count as one evaluated check"
        );
    }

    #[test]
    fn missing_profile_reports_s_violation() {
        let t = small_trace();
        let s = simulate(
            &t,
            &mut RoundRobin::new(),
            MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        let rep = audit_schedule(&t, &s, Some(Policy::Rr), &AuditConfig::default());
        assert!(rep.has("S"), "{:?}", rep.violations);
    }
}

//! Acceptance test for the audit net: a deliberately injected bug — an
//! off-by-one in Round Robin's share computation — must be caught by the
//! structural P-RR-SHARE oracle and shrunk to a minimal counterexample
//! of at most 4 jobs.

use tf_audit::{audit_schedule, shrink_trace, AuditConfig};
use tf_policies::Policy;
use tf_simcore::{simulate, AliveJob, MachineConfig, RateAllocator, SimOptions, Trace};

/// Round Robin with an injected off-by-one: divides the machines among
/// `n + 1` jobs instead of `n`. The resulting schedule is still
/// *feasible* (rates under cap, total under m·s, work conserved), so the
/// S-checks alone cannot catch it — only the structural share oracle.
struct BrokenRr;

impl RateAllocator for BrokenRr {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        let share = cfg.speed * (cfg.m as f64 / (alive.len() + 1) as f64).min(1.0);
        rates.fill(share);
    }
}

fn broken_rr_fails(trace: &Trace) -> bool {
    let sched = simulate(
        trace,
        &mut BrokenRr,
        MachineConfig::new(1),
        SimOptions::with_profile(),
    );
    match sched {
        Ok(s) => {
            audit_schedule(trace, &s, Some(Policy::Rr), &AuditConfig::default()).has("P-RR-SHARE")
        }
        Err(_) => false,
    }
}

#[test]
fn injected_off_by_one_is_caught_and_shrunk() {
    // A nontrivial instance: staggered arrivals, mixed sizes.
    let trace = Trace::from_pairs([
        (0.0, 3.0),
        (0.0, 1.0),
        (1.0, 4.0),
        (2.0, 2.0),
        (5.0, 6.0),
        (5.0, 1.0),
        (9.0, 2.0),
        (11.0, 5.0),
    ])
    .unwrap();

    // Caught: the audit flags the share violation on the full instance.
    assert!(broken_rr_fails(&trace), "injected bug was not detected");

    // Shrunk: the minimal reproduction has at most 4 jobs (in fact one
    // unit job suffices — a lone job gets share 1/2 instead of 1).
    let shrunk = shrink_trace(&trace, broken_rr_fails);
    assert!(broken_rr_fails(&shrunk));
    assert!(
        shrunk.len() <= 4,
        "shrunk counterexample still has {} jobs: {shrunk:?}",
        shrunk.len()
    );
    assert!(shrunk.total_size() <= trace.total_size());
}

#[test]
fn genuine_rr_passes_the_same_net() {
    let trace = Trace::from_pairs([(0.0, 3.0), (0.0, 1.0), (1.0, 4.0), (2.0, 2.0)]).unwrap();
    let mut rr = Policy::Rr.make();
    let sched = simulate(
        &trace,
        rr.as_mut(),
        MachineConfig::new(1),
        SimOptions::with_profile(),
    )
    .unwrap();
    let report = audit_schedule(&trace, &sched, Some(Policy::Rr), &AuditConfig::default());
    assert!(report.ok(), "{:?}", report.violations);
}

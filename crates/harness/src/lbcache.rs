//! Content-addressed persistent cache for `lk_lower_bound`.
//!
//! The LP component of the lower bound (min-cost flow over a time-indexed
//! network) dominates experiment wall-clock, and the experiment suite
//! re-evaluates the same seeded traces run after run. Since a bound is a
//! pure function of `(trace, m, k)` and the solver code, we memoize it on
//! disk under `results/cache/`, keyed by a content hash of the trace bytes
//! plus the parameters and a solver version.
//!
//! Bump [`SOLVER_VERSION`] whenever `tf-lowerbound`'s numeric behaviour
//! changes; stale entries are then simply never looked up again.
//!
//! The cache is enabled by default. Disable per-process with
//! [`set_enabled`]`(false)` (the `--no-cache` flag in the harness bins) or
//! with the environment variable `TF_LB_CACHE=0`. All I/O errors degrade
//! to a cache miss — the cache can never make a run fail.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tf_lowerbound::{
    lk_lower_bound, lk_lower_bound_aggregated, lk_lower_bound_budgeted,
    lk_lower_bound_colgen_budgeted, AggConfig, AggregatedBound, BudgetedBound, LowerBound,
    LpWarmStart, SolveBudget,
};
use tf_simcore::Trace;

/// Version tag mixed into every cache key. Bump when the lower-bound
/// solver's output could change for the same input.
///
/// v2: arena-based multi-unit MCMF solver with per-job horizon pruning
/// (same optima up to f64 rounding, but rounding may differ in the last
/// ulps, so old entries must not be reused).
///
/// v3: settled-region-restricted blocking flow plus the column-generation
/// and interval-aggregation solve paths. Keys now also carry a
/// [`Method`] discriminator, so an aggregated entry (exact only up to its
/// certified `±δ` gap) can never shadow — or be shadowed by — an exact
/// entry for the same `(trace, m, k)`.
pub const SOLVER_VERSION: u32 = 3;

/// Which solve path produced a cache entry. Mixed into [`key`] so the
/// differently-certified paths never alias: `Exact` and `Colgen` both
/// produce the exact bound but may differ in the last ulps (different
/// augmentation order), and `Agg` is only exact up to its certified
/// relative gap — whose *target* is part of the identity, since a run
/// asking for `±0.1%` must not reuse a `±1%` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Method {
    /// Full-arena (or unit-SSP) exact solve: [`lk_lower_bound`].
    Exact,
    /// Delayed column generation: [`lk_lower_bound_colgen_budgeted`].
    Colgen,
    /// Interval aggregation with this target relative gap:
    /// [`lk_lower_bound_aggregated`].
    Agg { target_rel_gap: f64 },
}

impl Method {
    /// Stable byte tag appended to the key material.
    fn tag(self, bytes: &mut Vec<u8>) {
        match self {
            Method::Exact => bytes.push(0),
            Method::Colgen => bytes.push(1),
            Method::Agg { target_rel_gap } => {
                bytes.push(2);
                bytes.extend_from_slice(&target_rel_gap.to_bits().to_le_bytes());
            }
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Enable or disable the on-disk cache for this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True iff lookups/stores are currently performed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) && std::env::var("TF_LB_CACHE").as_deref() != Ok("0")
}

/// Directory the cache lives in, relative to the working directory —
/// `results/` is already the harness output root.
pub fn cache_dir() -> PathBuf {
    PathBuf::from("results").join("cache")
}

/// `(hits, misses)` tallied by [`cached_lk_lower_bound`] since process
/// start (bypassed lookups with the cache disabled count as misses).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// The cache tallies as a flat [`tf_obs::ObsRegistry`] under the `cache.`
/// namespace, mergeable with `sim.` and `mcmf.` registries.
pub fn registry() -> tf_obs::ObsRegistry {
    let (hits, misses) = stats();
    tf_obs::ObsRegistry::from_counters([
        ("cache.hits", hits as f64),
        ("cache.misses", misses as f64),
    ])
}

/// FNV-1a, 64-bit. Stable across platforms and Rust versions (unlike
/// `DefaultHasher`), which is what a persistent cache key needs.
fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// 128-bit content key over the trace's job data, the bound parameters,
/// and the solve [`Method`].
fn key(trace: &Trace, m: usize, k: u32, method: Method) -> String {
    let mut bytes: Vec<u8> = Vec::with_capacity(trace.len() * 24 + 32);
    for j in trace.jobs() {
        bytes.extend_from_slice(&j.arrival.to_bits().to_le_bytes());
        bytes.extend_from_slice(&j.size.to_bits().to_le_bytes());
        bytes.extend_from_slice(&j.weight.to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(&(m as u64).to_le_bytes());
    bytes.extend_from_slice(&k.to_le_bytes());
    bytes.extend_from_slice(&SOLVER_VERSION.to_le_bytes());
    method.tag(&mut bytes);
    let lo = fnv1a(bytes.iter().copied(), 0);
    let hi = fnv1a(bytes.iter().copied(), 0x9e3779b97f4a7c15);
    format!("{hi:016x}{lo:016x}")
}

/// `lk_lower_bound` with on-disk memoization. Semantics are identical to
/// calling the solver directly; only wall-clock differs.
pub fn cached_lk_lower_bound(trace: &Trace, m: usize, k: u32) -> LowerBound {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return lk_lower_bound(trace, m, k);
    }
    let path = cache_dir().join(format!("lb-{}.json", key(trace, m, k, Method::Exact)));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(lb) = serde_json::from_str::<LowerBound>(&text) {
            HITS.fetch_add(1, Ordering::Relaxed);
            tf_obs::instant!("cache", "hit");
            return lb;
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    tf_obs::instant!("cache", "miss");
    let lb = lk_lower_bound(trace, m, k);
    store(&path, &lb);
    lb
}

/// [`cached_lk_lower_bound`] under a cooperative [`SolveBudget`]: cache
/// hits are returned as usual (a cached entry is always the *full*
/// bound, so it can only be better than a degraded recompute); on a miss
/// the solve runs budgeted, and a degraded result — the LP abandoned,
/// closed-form fallback — is **not** stored. Caching it would silently
/// weaken later unlimited runs that trust cache entries to be full
/// bounds.
pub fn cached_lk_lower_bound_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &SolveBudget,
) -> BudgetedBound {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return lk_lower_bound_budgeted(trace, m, k, budget);
    }
    let path = cache_dir().join(format!("lb-{}.json", key(trace, m, k, Method::Exact)));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(lb) = serde_json::from_str::<LowerBound>(&text) {
            HITS.fetch_add(1, Ordering::Relaxed);
            tf_obs::instant!("cache", "hit");
            return BudgetedBound {
                bound: lb,
                degraded: false,
            };
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    tf_obs::instant!("cache", "miss");
    let b = lk_lower_bound_budgeted(trace, m, k, budget);
    if !b.degraded {
        store(&path, &b.bound);
    }
    b
}

/// [`tf_lowerbound::lk_lower_bound_colgen_budgeted`] with on-disk
/// memoization under its own [`Method::Colgen`] key — the colgen value is
/// the exact LP optimum, but its augmentation order differs from the
/// full-arena solve, so the two may disagree in the last ulps and must
/// not share entries.
///
/// A cache hit returns an empty warm-start handle (there was no solve to
/// harvest duals from) and `false` for warm acceptance. A budget-tripped
/// solve returns `None` and stores nothing.
pub fn cached_lk_lower_bound_colgen_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &SolveBudget,
    warm: Option<&LpWarmStart>,
) -> Option<(LowerBound, LpWarmStart, bool)> {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return lk_lower_bound_colgen_budgeted(trace, m, k, budget, warm);
    }
    let path = cache_dir().join(format!("lb-{}.json", key(trace, m, k, Method::Colgen)));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(lb) = serde_json::from_str::<LowerBound>(&text) {
            HITS.fetch_add(1, Ordering::Relaxed);
            tf_obs::instant!("cache", "hit");
            return Some((lb, LpWarmStart::default(), false));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    tf_obs::instant!("cache", "miss");
    let (lb, handle, accepted) = lk_lower_bound_colgen_budgeted(trace, m, k, budget, warm)?;
    store(&path, &lb);
    Some((lb, handle, accepted))
}

/// [`tf_lowerbound::lk_lower_bound_aggregated`] with on-disk memoization
/// under a [`Method::Agg`] key carrying the *target* relative gap — a run
/// asking for a tighter certificate never reuses a looser entry, and
/// aggregated entries can never shadow exact ones. A budget-tripped
/// solve (`None`) certifies nothing and stores nothing.
pub fn cached_lk_lower_bound_aggregated(
    trace: &Trace,
    m: usize,
    k: u32,
    cfg: &AggConfig,
    budget: &SolveBudget,
) -> Option<AggregatedBound> {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return lk_lower_bound_aggregated(trace, m, k, cfg, budget);
    }
    let method = Method::Agg {
        target_rel_gap: cfg.target_rel_gap,
    };
    let path = cache_dir().join(format!("lb-{}.json", key(trace, m, k, method)));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(b) = serde_json::from_str::<AggregatedBound>(&text) {
            HITS.fetch_add(1, Ordering::Relaxed);
            tf_obs::instant!("cache", "hit");
            return Some(b);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    tf_obs::instant!("cache", "miss");
    let b = lk_lower_bound_aggregated(trace, m, k, cfg, budget)?;
    store_agg(&path, &b);
    Some(b)
}

/// Monotone discriminator for temp-file names: the pid alone is not
/// unique within a process, and two rayon workers computing the same key
/// concurrently would otherwise write the *same* temp path — one's
/// `rename` can then move the other's half-written file into place.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write-to-temp + atomic rename. Each writer gets a private temp path
/// (pid + per-process counter), so concurrent writers of one key race
/// only on the final rename — and both rename complete, equal-bytes
/// files.
fn store(path: &std::path::Path, lb: &LowerBound) {
    store_json(path, lb)
}

/// As [`store`], for aggregated entries (different payload type, same
/// atomic write discipline).
fn store_agg(path: &std::path::Path, b: &AggregatedBound) {
    store_json(path, b)
}

fn store_json<T: serde::Serialize>(path: &std::path::Path, value: &T) {
    if std::fs::create_dir_all(cache_dir()).is_err() {
        return;
    }
    let Ok(json) = serde_json::to_string(value) else {
        return;
    };
    let tmp = path.with_extension(format!(
        "tmp{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0)]).unwrap()
    }

    #[test]
    fn key_is_content_addressed() {
        let t = trace();
        let e = Method::Exact;
        assert_eq!(key(&t, 1, 2, e), key(&trace(), 1, 2, e));
        assert_ne!(key(&t, 1, 2, e), key(&t, 2, 2, e));
        assert_ne!(key(&t, 1, 2, e), key(&t, 1, 3, e));
        let other = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.5)]).unwrap();
        assert_ne!(key(&t, 1, 2, e), key(&other, 1, 2, e));
    }

    /// The pre-fix key ignored the solve method, so an aggregated entry
    /// (exact only up to its ±δ gap) could be read back by an exact
    /// lookup of the same `(trace, m, k)` — this test fails on that key.
    #[test]
    fn solve_methods_never_alias_in_the_key() {
        let t = trace();
        let exact = key(&t, 2, 2, Method::Exact);
        let colgen = key(&t, 2, 2, Method::Colgen);
        let agg1 = key(
            &t,
            2,
            2,
            Method::Agg {
                target_rel_gap: 0.01,
            },
        );
        let agg2 = key(
            &t,
            2,
            2,
            Method::Agg {
                target_rel_gap: 0.001,
            },
        );
        assert_ne!(exact, colgen);
        assert_ne!(exact, agg1);
        assert_ne!(colgen, agg1);
        assert_ne!(
            agg1, agg2,
            "the δ target is part of an Agg entry's identity"
        );
    }

    #[test]
    fn cached_colgen_matches_the_solver_and_is_stored_separately() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        if !enabled() {
            return; // TF_LB_CACHE=0 in the environment: nothing to test
        }
        // A trace no other test uses, so this test owns its cache entries.
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (2.0, 3.0), (4.0, 1.0), (4.0, 2.0)])
            .unwrap();
        let (m, k) = (2usize, 2u32);
        let cg_path = cache_dir().join(format!("lb-{}.json", key(&t, m, k, Method::Colgen)));
        let ex_path = cache_dir().join(format!("lb-{}.json", key(&t, m, k, Method::Exact)));
        let _ = std::fs::remove_file(&cg_path);
        let _ = std::fs::remove_file(&ex_path);

        let unlimited = SolveBudget::unlimited();
        let (cold, _, _) =
            cached_lk_lower_bound_colgen_budgeted(&t, m, k, &unlimited, None).unwrap();
        assert_eq!(cold, lk_lower_bound(&t, m, k));
        assert!(cg_path.exists(), "colgen entry written under its own key");
        assert!(!ex_path.exists(), "the exact key must stay untouched");
        let (hit, _, _) =
            cached_lk_lower_bound_colgen_budgeted(&t, m, k, &unlimited, None).unwrap();
        assert_eq!(hit, cold);

        // A zero budget returns None and never caches.
        let _ = std::fs::remove_file(&cg_path);
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(cached_lk_lower_bound_colgen_budgeted(&t, m, k, &spent, None).is_none());
        assert!(!cg_path.exists(), "a tripped colgen solve must not cache");
        let _ = std::fs::remove_file(&cg_path);
    }

    #[test]
    fn cached_aggregated_roundtrips_and_never_caches_tripped_solves() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        if !enabled() {
            return; // TF_LB_CACHE=0 in the environment: nothing to test
        }
        // A trace no other test uses, so this test owns its cache entry.
        let t = Trace::from_pairs([(0.0, 3.0), (0.0, 2.0), (3.0, 1.0), (4.0, 4.0), (7.0, 2.0)])
            .unwrap();
        let (m, k) = (1usize, 2u32);
        let cfg = AggConfig::default();
        let method = Method::Agg {
            target_rel_gap: cfg.target_rel_gap,
        };
        let path = cache_dir().join(format!("lb-{}.json", key(&t, m, k, method)));
        let _ = std::fs::remove_file(&path);

        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(cached_lk_lower_bound_aggregated(&t, m, k, &cfg, &spent).is_none());
        assert!(!path.exists(), "a tripped aggregated solve must not cache");

        let unlimited = SolveBudget::unlimited();
        let cold = cached_lk_lower_bound_aggregated(&t, m, k, &cfg, &unlimited).unwrap();
        assert!(path.exists());
        let hit = cached_lk_lower_bound_aggregated(&t, m, k, &cfg, &unlimited).unwrap();
        assert_eq!(cold, hit);
        // The aggregated value stays a genuine lower bound on the exact one.
        assert!(cold.value <= lk_lower_bound(&t, m, k).value + 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cached_value_matches_solver() {
        // Run in a scratch cwd-independent way: just compare values; the
        // cache file (if written) holds exactly the solver's output.
        let t = trace().to_integral();
        let direct = lk_lower_bound(&t, 1, 2);
        let cached = cached_lk_lower_bound(&t, 1, 2);
        let warm = cached_lk_lower_bound(&t, 1, 2);
        assert_eq!(direct, cached);
        assert_eq!(direct, warm);
    }

    /// Serializes the tests that toggle the process-global `ENABLED`
    /// flag against the one that requires the cache to stay on.
    static ENABLED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_cache_bypasses_disk() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        set_enabled(false);
        let t = trace();
        assert!(!enabled());
        assert_eq!(cached_lk_lower_bound(&t, 1, 1), lk_lower_bound(&t, 1, 1));
        set_enabled(true);
    }

    #[test]
    fn degraded_bounds_are_never_cached() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        if !enabled() {
            return; // TF_LB_CACHE=0 in the environment: nothing to test
        }
        // A trace no other test uses, so this test owns its cache entry.
        let t = Trace::from_pairs([(0.0, 3.0), (1.0, 4.0), (2.0, 2.0), (5.0, 1.0)]).unwrap();
        let (m, k) = (1usize, 3u32);
        let path = cache_dir().join(format!("lb-{}.json", key(&t, m, k, Method::Exact)));
        let _ = std::fs::remove_file(&path);

        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        let degraded = cached_lk_lower_bound_budgeted(&t, m, k, &spent);
        assert!(degraded.degraded);
        assert!(
            !path.exists(),
            "a budget-degraded bound must not poison the cache"
        );

        // A later unlimited call computes and caches the full bound.
        let full = cached_lk_lower_bound_budgeted(&t, m, k, &SolveBudget::unlimited());
        assert!(!full.degraded);
        assert!(full.bound.value >= degraded.bound.value);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_writers_never_tear_an_entry() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        if !enabled() {
            return; // TF_LB_CACHE=0 in the environment: nothing to test
        }
        // A trace no other test uses, so this test owns its cache entry.
        let t = Trace::from_pairs([(0.0, 4.0), (1.0, 2.0), (3.0, 3.0), (3.0, 1.0), (6.0, 2.0)])
            .unwrap();
        let (m, k) = (2usize, 2u32);
        let path = cache_dir().join(format!("lb-{}.json", key(&t, m, k, Method::Exact)));
        let expect = lk_lower_bound(&t, m, k);

        // Both threads start cold on the same key and race the full
        // miss → solve → store path, repeatedly.
        for round in 0..10 {
            let _ = std::fs::remove_file(&path);
            let barrier = std::sync::Barrier::new(2);
            let results: Vec<LowerBound> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let (t, barrier) = (&t, &barrier);
                        s.spawn(move || {
                            barrier.wait();
                            cached_lk_lower_bound(t, m, k)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for r in &results {
                assert_eq!(*r, expect, "round {round}");
            }
            // The entry on disk must be complete and correct — never a
            // torn mix of the two writers.
            let text = std::fs::read_to_string(&path).expect("entry written");
            let on_disk: LowerBound = serde_json::from_str(&text).expect("entry parses");
            assert_eq!(on_disk, expect, "round {round}");
        }
    }
}

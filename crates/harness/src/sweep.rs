//! Declarative grid sweeps: every (instance × policy × speed × k × m)
//! combination, evaluated with the ratio bracket, as one CSV-able table.
//!
//! The E1–E19 experiments answer the paper's questions; `sweep` is the
//! open-ended tool an adopter points at their *own* question. A
//! [`SweepConfig`] is plain serde JSON, so grids live in version control
//! next to the results they produced.

use crate::corpus::integral_poisson;
use crate::ratio::{default_baselines, empirical_ratio, RatioEstimate};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tf_policies::Policy;
use tf_simcore::Trace;
use tf_workload::SizeDist;

/// Where sweep instances come from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepInstance {
    /// Load a JSON trace from disk (see `tf_workload::traceio`).
    TraceFile {
        /// Path to the trace JSON.
        path: String,
    },
    /// Generate an integral Poisson workload.
    Poisson {
        /// Job count.
        n: usize,
        /// Target utilization of `m` machines (the sweep's `m` values each
        /// regenerate at their own load).
        rho: f64,
        /// Size distribution.
        sizes: SizeDist,
        /// RNG seed.
        seed: u64,
    },
}

/// A full sweep specification.
#[derive(Debug, Clone, Serialize)]
pub struct SweepConfig {
    /// Instances to evaluate.
    pub instances: Vec<SweepInstance>,
    /// Policies (names as accepted by `Policy::from_str`, e.g. `"rr"`,
    /// `"srpt"`, `"laps:0.25"`).
    pub policies: Vec<String>,
    /// Speeds for the evaluated policy (baselines always run at 1).
    pub speeds: Vec<f64>,
    /// Norm exponents.
    pub ks: Vec<u32>,
    /// Machine counts.
    pub ms: Vec<usize>,
    /// Opt-in: compute lower bounds with the warm-started
    /// column-generation solver, chaining each grid point's dual handle
    /// into the next point of the same instance (same certified exact
    /// bound, fewer solver phases on large grids). Off by default — the
    /// default path is byte-identical to previous releases.
    pub warm_lb: bool,
}

/// Hand-written (the vendored derive has no `#[serde(default)]`) so
/// configs written before `warm_lb` existed still parse, defaulting to
/// the exact-solver path.
impl serde::Deserialize for SweepConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("map for struct SweepConfig", v))?;
        let req =
            |f: &'static str| serde::map_get(m, f).ok_or_else(|| serde::Error::missing_field(f));
        Ok(SweepConfig {
            instances: serde::Deserialize::from_value(req("instances")?)?,
            policies: serde::Deserialize::from_value(req("policies")?)?,
            speeds: serde::Deserialize::from_value(req("speeds")?)?,
            ks: serde::Deserialize::from_value(req("ks")?)?,
            ms: serde::Deserialize::from_value(req("ms")?)?,
            warm_lb: match serde::map_get(m, "warm_lb") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => false,
            },
        })
    }
}

impl SweepConfig {
    /// Parse policies, failing fast with the offending name.
    pub fn parsed_policies(&self) -> Result<Vec<Policy>, String> {
        self.policies.iter().map(|s| s.parse::<Policy>()).collect()
    }

    /// Number of grid points.
    pub fn points(&self) -> usize {
        self.instances.len()
            * self.policies.len()
            * self.speeds.len()
            * self.ks.len()
            * self.ms.len()
    }
}

fn materialize(inst: &SweepInstance, m: usize) -> Result<(String, Trace), String> {
    match inst {
        SweepInstance::TraceFile { path } => {
            let t = tf_workload::traceio::load_trace(path).map_err(|e| format!("{path}: {e}"))?;
            Ok((path.clone(), t))
        }
        SweepInstance::Poisson {
            n,
            rho,
            sizes,
            seed,
        } => {
            let t = integral_poisson(*n, *rho, m, *sizes, *seed);
            Ok((format!("poisson-{}-n{n}-rho{rho}", sizes.label()), t))
        }
    }
}

/// One materialized grid point: (instance name, trace, policy, m, speed, k).
type SweepPoint = (String, Trace, Policy, usize, f64, u32);

/// Run the sweep, producing one row per grid point.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Table, String> {
    let mut obs_span = tf_obs::span!("harness", "sweep");
    let policies = cfg.parsed_policies()?;
    let baselines = default_baselines();
    let mut table = Table::new(
        "sweep",
        &[
            "instance", "policy", "m", "speed", "k", "alg^k", "LB", "best", "ratio>=", "ratio<=",
        ],
    );

    // Materialize instances per machine count (Poisson load depends on m).
    let mut points: Vec<SweepPoint> = Vec::new();
    for m in &cfg.ms {
        for inst in &cfg.instances {
            let (name, trace) = materialize(inst, *m)?;
            for p in &policies {
                for s in &cfg.speeds {
                    for k in &cfg.ks {
                        points.push((name.clone(), trace.clone(), *p, *m, *s, *k));
                    }
                }
            }
        }
    }
    // Grid point `i` records onto logical track `i + 1` (track 0 is the
    // main thread), keeping trace structure thread-count independent.
    let render = |name: &str, p: &Policy, m: usize, s: f64, k: u32, r: &RatioEstimate| {
        vec![
            name.to_string(),
            p.to_string(),
            m.to_string(),
            fnum(s),
            k.to_string(),
            fnum(r.alg_power_sum),
            fnum(r.lower_bound),
            fnum(r.best_power_sum),
            fnum(r.ratio_vs_best),
            fnum(r.ratio_vs_lb),
        ]
    };
    let rows: Vec<_> = if cfg.warm_lb {
        // Warm path: points of one instance share a dual warm-start
        // chain, so they must run sequentially; distinct instances still
        // fan out in parallel. Row order matches the default path — the
        // groups are contiguous runs of the point list.
        let mut groups: Vec<(u32, Vec<&SweepPoint>)> = Vec::new();
        for (idx, point) in points.iter().enumerate() {
            let start_new = match groups.last().and_then(|(_, g)| g.last()) {
                Some(prev) => prev.0 != point.0 || prev.3 != point.3,
                None => true,
            };
            if start_new {
                groups.push((idx as u32, Vec::new()));
            }
            groups.last_mut().expect("just pushed").1.push(point);
        }
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(points.len());
        let group_rows: Vec<Vec<Vec<String>>> = groups
            .par_iter()
            .map(|(first, group)| {
                let mut warm = None;
                let mut out = Vec::with_capacity(group.len());
                for (off, (name, trace, p, m, s, k)) in group.iter().enumerate() {
                    let i = *first + off as u32;
                    let _track = tf_obs::set_track(i + 1);
                    let mut span = tf_obs::span!("harness", "sweep_point");
                    span.arg("point", f64::from(i));
                    let (r, handle) = crate::ratio::empirical_ratio_warm(
                        trace,
                        *p,
                        *m,
                        *s,
                        *k,
                        &baselines,
                        warm.as_ref(),
                    );
                    warm = handle;
                    out.push(render(name, p, *m, *s, *k, &r));
                }
                out
            })
            .collect();
        rows.extend(group_rows.into_iter().flatten());
        rows
    } else {
        let indexed: Vec<(u32, _)> = (0u32..).zip(points.iter()).collect();
        indexed
            .par_iter()
            .map(|&(i, (name, trace, p, m, s, k))| {
                let _track = tf_obs::set_track(i + 1);
                let mut span = tf_obs::span!("harness", "sweep_point");
                span.arg("point", f64::from(i));
                let r = empirical_ratio(trace, *p, *m, *s, *k, &baselines);
                render(name, p, *m, *s, *k, &r)
            })
            .collect()
    };
    for row in rows {
        table.push_row(row);
    }
    table.note(format!(
        "{} grid points; baselines at speed 1: SRPT/SJF/SETF/RR.",
        cfg.points()
    ));
    if tf_obs::enabled() {
        obs_span.arg("points", cfg.points() as f64);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            instances: vec![SweepInstance::Poisson {
                n: 15,
                rho: 0.9,
                sizes: SizeDist::Exponential { mean: 3.0 },
                seed: 4,
            }],
            policies: vec!["rr".into(), "srpt".into()],
            speeds: vec![1.0, 2.0],
            ks: vec![1, 2],
            ms: vec![1],
            warm_lb: false,
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = tiny_cfg();
        let t = run_sweep(&cfg).unwrap();
        assert_eq!(t.rows.len(), cfg.points());
        for row in &t.rows {
            let lo: f64 = row[8].parse().unwrap();
            let hi: f64 = row[9].parse().unwrap();
            assert!(lo <= hi + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn warm_sweep_matches_the_default_bracket() {
        let mut cfg = tiny_cfg();
        cfg.ms = vec![1, 2];
        let cold = run_sweep(&cfg).unwrap();
        cfg.warm_lb = true;
        let warm = run_sweep(&cfg).unwrap();
        assert_eq!(cold.rows.len(), warm.rows.len());
        for (c, w) in cold.rows.iter().zip(&warm.rows) {
            // Identity columns are byte-equal; the LB column is the same
            // exact LP bound computed by a different augmentation order,
            // so compare numerically.
            assert_eq!(c[..6], w[..6], "identity/alg columns differ");
            for col in 6..10 {
                let cv: f64 = c[col].parse().unwrap();
                let wv: f64 = w[col].parse().unwrap();
                assert!(
                    (cv - wv).abs() <= 1e-6 * (1.0 + cv.abs()),
                    "col {col}: {cv} vs {wv}"
                );
            }
        }
    }

    #[test]
    fn config_without_warm_lb_field_still_parses() {
        let json = r#"{"instances":[{"Poisson":{"n":8,"rho":0.8,"sizes":{"Uniform":{"lo":1.0,"hi":3.0}},"seed":1}}],
                       "policies":["rr"],"speeds":[1.0],"ks":[1],"ms":[1]}"#;
        let cfg: SweepConfig = serde_json::from_str(json).unwrap();
        assert!(!cfg.warm_lb, "missing field defaults to the exact path");
    }

    #[test]
    fn bad_policy_name_fails_fast() {
        let mut cfg = tiny_cfg();
        cfg.policies.push("frobnicate".into());
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = tiny_cfg();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SweepConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points(), cfg.points());
    }

    #[test]
    fn trace_file_instances_load() {
        let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0)]).unwrap();
        let path = std::env::temp_dir().join(format!("tf-sweep-{}.json", std::process::id()));
        tf_workload::traceio::save_trace(&trace, &path).unwrap();
        let cfg = SweepConfig {
            instances: vec![SweepInstance::TraceFile {
                path: path.to_string_lossy().into(),
            }],
            policies: vec!["rr".into()],
            speeds: vec![1.0],
            ks: vec![2],
            ms: vec![1],
            warm_lb: false,
        };
        let t = run_sweep(&cfg).unwrap();
        assert_eq!(t.rows.len(), 1);
        std::fs::remove_file(path).ok();
    }
}

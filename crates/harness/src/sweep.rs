//! Declarative grid sweeps: every (instance × policy × speed × k × m)
//! combination, evaluated with the ratio bracket, as one CSV-able table.
//!
//! The E1–E19 experiments answer the paper's questions; `sweep` is the
//! open-ended tool an adopter points at their *own* question. A
//! [`SweepConfig`] is plain serde JSON, so grids live in version control
//! next to the results they produced.

use crate::corpus::integral_poisson;
use crate::ratio::{default_baselines, empirical_ratio};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tf_policies::Policy;
use tf_simcore::Trace;
use tf_workload::SizeDist;

/// Where sweep instances come from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SweepInstance {
    /// Load a JSON trace from disk (see `tf_workload::traceio`).
    TraceFile {
        /// Path to the trace JSON.
        path: String,
    },
    /// Generate an integral Poisson workload.
    Poisson {
        /// Job count.
        n: usize,
        /// Target utilization of `m` machines (the sweep's `m` values each
        /// regenerate at their own load).
        rho: f64,
        /// Size distribution.
        sizes: SizeDist,
        /// RNG seed.
        seed: u64,
    },
}

/// A full sweep specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Instances to evaluate.
    pub instances: Vec<SweepInstance>,
    /// Policies (names as accepted by `Policy::from_str`, e.g. `"rr"`,
    /// `"srpt"`, `"laps:0.25"`).
    pub policies: Vec<String>,
    /// Speeds for the evaluated policy (baselines always run at 1).
    pub speeds: Vec<f64>,
    /// Norm exponents.
    pub ks: Vec<u32>,
    /// Machine counts.
    pub ms: Vec<usize>,
}

impl SweepConfig {
    /// Parse policies, failing fast with the offending name.
    pub fn parsed_policies(&self) -> Result<Vec<Policy>, String> {
        self.policies.iter().map(|s| s.parse::<Policy>()).collect()
    }

    /// Number of grid points.
    pub fn points(&self) -> usize {
        self.instances.len()
            * self.policies.len()
            * self.speeds.len()
            * self.ks.len()
            * self.ms.len()
    }
}

fn materialize(inst: &SweepInstance, m: usize) -> Result<(String, Trace), String> {
    match inst {
        SweepInstance::TraceFile { path } => {
            let t = tf_workload::traceio::load_trace(path).map_err(|e| format!("{path}: {e}"))?;
            Ok((path.clone(), t))
        }
        SweepInstance::Poisson {
            n,
            rho,
            sizes,
            seed,
        } => {
            let t = integral_poisson(*n, *rho, m, *sizes, *seed);
            Ok((format!("poisson-{}-n{n}-rho{rho}", sizes.label()), t))
        }
    }
}

/// Run the sweep, producing one row per grid point.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Table, String> {
    let mut obs_span = tf_obs::span!("harness", "sweep");
    let policies = cfg.parsed_policies()?;
    let baselines = default_baselines();
    let mut table = Table::new(
        "sweep",
        &[
            "instance", "policy", "m", "speed", "k", "alg^k", "LB", "best", "ratio>=", "ratio<=",
        ],
    );

    // Materialize instances per machine count (Poisson load depends on m).
    let mut points = Vec::new();
    for m in &cfg.ms {
        for inst in &cfg.instances {
            let (name, trace) = materialize(inst, *m)?;
            for p in &policies {
                for s in &cfg.speeds {
                    for k in &cfg.ks {
                        points.push((name.clone(), trace.clone(), *p, *m, *s, *k));
                    }
                }
            }
        }
    }
    // Grid point `i` records onto logical track `i + 1` (track 0 is the
    // main thread), keeping trace structure thread-count independent.
    let indexed: Vec<(u32, _)> = (0u32..).zip(points.iter()).collect();
    let rows: Vec<_> = indexed
        .par_iter()
        .map(|&(i, (name, trace, p, m, s, k))| {
            let _track = tf_obs::set_track(i + 1);
            let mut span = tf_obs::span!("harness", "sweep_point");
            span.arg("point", f64::from(i));
            let r = empirical_ratio(trace, *p, *m, *s, *k, &baselines);
            vec![
                name.clone(),
                p.to_string(),
                m.to_string(),
                fnum(*s),
                k.to_string(),
                fnum(r.alg_power_sum),
                fnum(r.lower_bound),
                fnum(r.best_power_sum),
                fnum(r.ratio_vs_best),
                fnum(r.ratio_vs_lb),
            ]
        })
        .collect();
    for row in rows {
        table.push_row(row);
    }
    table.note(format!(
        "{} grid points; baselines at speed 1: SRPT/SJF/SETF/RR.",
        cfg.points()
    ));
    if tf_obs::enabled() {
        obs_span.arg("points", cfg.points() as f64);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            instances: vec![SweepInstance::Poisson {
                n: 15,
                rho: 0.9,
                sizes: SizeDist::Exponential { mean: 3.0 },
                seed: 4,
            }],
            policies: vec!["rr".into(), "srpt".into()],
            speeds: vec![1.0, 2.0],
            ks: vec![1, 2],
            ms: vec![1],
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = tiny_cfg();
        let t = run_sweep(&cfg).unwrap();
        assert_eq!(t.rows.len(), cfg.points());
        for row in &t.rows {
            let lo: f64 = row[8].parse().unwrap();
            let hi: f64 = row[9].parse().unwrap();
            assert!(lo <= hi + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn bad_policy_name_fails_fast() {
        let mut cfg = tiny_cfg();
        cfg.policies.push("frobnicate".into());
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = tiny_cfg();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SweepConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points(), cfg.points());
    }

    #[test]
    fn trace_file_instances_load() {
        let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0)]).unwrap();
        let path = std::env::temp_dir().join(format!("tf-sweep-{}.json", std::process::id()));
        tf_workload::traceio::save_trace(&trace, &path).unwrap();
        let cfg = SweepConfig {
            instances: vec![SweepInstance::TraceFile {
                path: path.to_string_lossy().into(),
            }],
            policies: vec!["rr".into()],
            speeds: vec![1.0],
            ks: vec![2],
            ms: vec![1],
        };
        let t = run_sweep(&cfg).unwrap();
        assert_eq!(t.rows.len(), 1);
        std::fs::remove_file(path).ok();
    }
}

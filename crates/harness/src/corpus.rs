//! The shared instance corpus used across experiments.
//!
//! All traces are *integral* (integer arrivals and sizes) so the LP lower
//! bound is exact on exactly the instance being scheduled.

use tf_simcore::Trace;
use tf_workload::adversarial;
use tf_workload::{ArrivalProcess, SizeDist, WorkloadSpec};

/// One named instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Short label for table rows.
    pub name: String,
    /// The trace itself.
    pub trace: Trace,
}

impl Instance {
    fn new(name: impl Into<String>, trace: Trace) -> Self {
        Instance {
            name: name.into(),
            trace,
        }
    }
}

/// A Poisson workload with the given size distribution, rounded to an
/// integral trace, targeting utilization `rho` of `m` unit machines.
pub fn integral_poisson(n: usize, rho: f64, m: usize, sizes: SizeDist, seed: u64) -> Trace {
    let rate = rho * m as f64 / sizes.mean();
    let spec = WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate },
        sizes,
        seed,
    };
    spec.generate().to_integral()
}

/// An integral Poisson workload with job weights drawn (seeded) from the
/// given weight classes — the instances for the weighted experiments
/// (E17).
pub fn weighted_integral_poisson(
    n: usize,
    rho: f64,
    m: usize,
    sizes: SizeDist,
    weight_classes: &[f64],
    seed: u64,
) -> Trace {
    use tf_simcore::TraceBuilder;
    let base = integral_poisson(n, rho, m, sizes, seed);
    // splitmix64 per job index → stable class choice.
    let mut b = TraceBuilder::new();
    for (i, j) in base.jobs().iter().enumerate() {
        let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 31;
        let w = weight_classes[(z % weight_classes.len() as u64) as usize];
        b.push_weighted(j.arrival, j.size, w);
    }
    b.build().expect("valid weighted trace")
}

/// The standard randomized corpus: Poisson arrivals × four size
/// distributions at utilization `rho` for `m` machines.
pub fn random_corpus(n: usize, rho: f64, m: usize, seed: u64) -> Vec<Instance> {
    vec![
        Instance::new(
            "poisson-exp",
            integral_poisson(n, rho, m, SizeDist::Exponential { mean: 4.0 }, seed),
        ),
        Instance::new(
            "poisson-pareto",
            integral_poisson(
                n,
                rho,
                m,
                SizeDist::Pareto {
                    alpha: 1.8,
                    min: 2.0,
                },
                seed + 1,
            ),
        ),
        Instance::new(
            "poisson-unif",
            integral_poisson(n, rho, m, SizeDist::Uniform { lo: 1.0, hi: 7.0 }, seed + 2),
        ),
        Instance::new(
            "poisson-bimodal",
            integral_poisson(
                n,
                rho,
                m,
                SizeDist::Bimodal {
                    small: 1.0,
                    large: 20.0,
                    p_large: 0.08,
                },
                seed + 3,
            ),
        ),
    ]
}

/// The adversarial corpus: the named hard instances from `tf-workload`.
pub fn adversarial_corpus(scale: u32) -> Vec<Instance> {
    vec![
        Instance::new("equal-batch", adversarial::equal_batch(1 << scale, 1.0)),
        Instance::new("cascade", adversarial::geometric_cascade(scale, 0.9)),
        Instance::new(
            "critical-stream",
            adversarial::critical_stream(8 << scale, 1.0),
        ),
        Instance::new(
            "starvation",
            adversarial::srpt_starvation(16.0, 1.0, 8 << scale, 1.0),
        ),
        Instance::new(
            "interleaved",
            adversarial::interleaved_classes(1 << scale.min(4), 4.0, 4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_traces_are_integral() {
        for inst in random_corpus(40, 0.8, 2, 7) {
            assert!(inst.trace.is_integral(1e-9), "{}", inst.name);
            assert_eq!(inst.trace.len(), 40);
        }
        for inst in adversarial_corpus(3) {
            assert!(inst.trace.is_integral(1e-9), "{}", inst.name);
            assert!(!inst.trace.is_empty(), "{}", inst.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = random_corpus(20, 0.9, 1, 42);
        let b = random_corpus(20, 0.9, 1, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace);
        }
    }

    #[test]
    fn utilization_roughly_targets_rho() {
        let t = integral_poisson(4000, 0.8, 2, SizeDist::Exponential { mean: 4.0 }, 1);
        let rho = t.utilization(2, 1.0);
        // to_integral ceils sizes (+~12% for mean 4) and floors arrivals.
        assert!((0.7..1.1).contains(&rho), "{rho}");
    }
}

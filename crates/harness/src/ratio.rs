//! Empirical competitive-ratio machinery.
//!
//! OPT is intractable, so every ratio is reported as a *bracket*:
//!
//! * `ratio_vs_lb = (algᵏ / LB)^{1/k}` — an **upper estimate** of the true
//!   ratio, using the certified lower bound from `tf-lowerbound`
//!   (`LB ≤ OPTᵏ`);
//! * `ratio_vs_best = (algᵏ / min over baseline policies at speed 1)^{1/k}`
//!   — a **lower estimate**, since the best baseline upper-bounds OPT.
//!
//! The true competitive ratio on the instance lies inside
//! `[ratio_vs_best, ratio_vs_lb]`.

use crate::campaign;
use crate::lbcache::{
    cached_lk_lower_bound_aggregated, cached_lk_lower_bound_budgeted,
    cached_lk_lower_bound_colgen_budgeted,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tf_lowerbound::{AggConfig, BoundKind, LpWarmStart};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, SimStats, Trace};

/// A bracketed empirical competitive ratio for one (instance, policy,
/// speed, k) point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioEstimate {
    /// The evaluated policy's `Σ F^k` at its (possibly augmented) speed.
    pub alg_power_sum: f64,
    /// Certified lower bound on `OPTᵏ` at speed 1.
    pub lower_bound: f64,
    /// Best baseline `Σ F^k` at speed 1 (an upper bound on `OPTᵏ`).
    pub best_power_sum: f64,
    /// Which baseline achieved it.
    pub best_policy: String,
    /// Upper estimate of the norm ratio: `(alg/LB)^{1/k}`.
    pub ratio_vs_lb: f64,
    /// Lower estimate of the norm ratio: `(alg/best)^{1/k}`.
    pub ratio_vs_best: f64,
    /// Engine counters from the evaluated policy's run (not the
    /// baselines'): step breakdown, peak alive set, allocator time.
    pub stats: SimStats,
    /// Which bound produced `lower_bound` (`"lp/2"`, `"size"`,
    /// `"srpt-m"`), with ` (degraded)` appended when the LP solve was
    /// abandoned for budget reasons and the value fell back to a
    /// closed-form bound — the campaign's degradation provenance.
    pub lb_provenance: String,
}

/// The default baseline set for OPT upper bounds: the clairvoyant
/// policies, which are near-optimal at speed 1 for flow objectives.
pub fn default_baselines() -> Vec<Policy> {
    vec![Policy::Srpt, Policy::Sjf, Policy::Setf, Policy::Rr]
}

/// Evaluate `policy` at speed `speed` on `m` machines against OPT at speed
/// 1, for the ℓk norm (integer `k` — the LP bound needs it).
///
/// # Panics
/// Propagates simulation panics only for invalid configurations; all
/// registry policies on valid traces succeed.
pub fn empirical_ratio(
    trace: &Trace,
    policy: Policy,
    m: usize,
    speed: f64,
    k: u32,
    baselines: &[Policy],
) -> RatioEstimate {
    let kf = f64::from(k);
    let mut alloc = policy.make();
    let alg = simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(m, speed),
        SimOptions::default().timed(),
    )
    .expect("simulation of a registry policy on a valid trace");
    let alg_power_sum = alg.flow_power_sum(kf);

    // The LP component runs under the active campaign's per-task budget
    // (unlimited when no campaign / no --task-timeout). A degraded
    // bound stays valid — only weaker — and its provenance is recorded.
    let budgeted = cached_lk_lower_bound_budgeted(trace, m, k, &campaign::task_budget());
    let lb = budgeted.bound;
    let mut lb_provenance = lb.kind.label().to_string();
    if budgeted.degraded {
        lb_provenance.push_str(" (degraded)");
        if let Some(c) = campaign::active() {
            c.note_degraded();
        }
    }

    let mut best_power_sum = f64::INFINITY;
    let mut best_policy = String::new();
    for p in baselines {
        let mut b = p.make();
        let s = simulate(
            trace,
            b.as_mut(),
            MachineConfig::new(m),
            SimOptions::default(),
        )
        .expect("baseline simulation");
        let v = s.flow_power_sum(kf);
        if v < best_power_sum {
            best_power_sum = v;
            best_policy = p.to_string();
        }
    }

    let root = |x: f64| x.powf(1.0 / kf);
    RatioEstimate {
        alg_power_sum,
        lower_bound: lb.value,
        best_power_sum,
        best_policy,
        ratio_vs_lb: if lb.value > 0.0 {
            root(alg_power_sum / lb.value)
        } else {
            f64::NAN
        },
        ratio_vs_best: if best_power_sum > 0.0 {
            root(alg_power_sum / best_power_sum)
        } else {
            f64::NAN
        },
        stats: alg.stats,
        lb_provenance,
    }
}

/// Shared tail of every `empirical_ratio*` variant: evaluate the policy
/// and the baselines, then assemble the bracket around the given
/// certified lower bound.
#[allow(clippy::too_many_arguments)]
fn assemble_estimate(
    trace: &Trace,
    policy: Policy,
    m: usize,
    speed: f64,
    k: u32,
    baselines: &[Policy],
    lb_value: f64,
    lb_provenance: String,
) -> RatioEstimate {
    let kf = f64::from(k);
    let mut alloc = policy.make();
    let alg = simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(m, speed),
        SimOptions::default().timed(),
    )
    .expect("simulation of a registry policy on a valid trace");
    let alg_power_sum = alg.flow_power_sum(kf);
    let (best_power_sum, best_policy) = best_baseline_power(trace, m, k, baselines);
    let root = |x: f64| x.powf(1.0 / kf);
    RatioEstimate {
        alg_power_sum,
        lower_bound: lb_value,
        best_power_sum,
        best_policy,
        ratio_vs_lb: if lb_value > 0.0 {
            root(alg_power_sum / lb_value)
        } else {
            f64::NAN
        },
        ratio_vs_best: if best_power_sum > 0.0 {
            root(alg_power_sum / best_power_sum)
        } else {
            f64::NAN
        },
        stats: alg.stats,
        lb_provenance,
    }
}

/// [`empirical_ratio`] with the lower bound computed by the certified
/// interval-aggregated LP (`tf_lowerbound::lk_lower_bound_aggregated`)
/// instead of the exact one. When the aggregated LP wins the bound, the
/// provenance column carries its certified gap as `lp-agg(±δ%)`; the
/// value is then a rigorous lower bound on `OPTᵏ` that may sit up to `δ`
/// below the exact LP bound, so `ratio_vs_lb` is (slightly) looser but
/// never wrong. A budget-tripped aggregated solve certifies nothing and
/// degrades to the closed-form bounds, exactly like the exact path —
/// and, like every degraded result, is never cached.
pub fn empirical_ratio_aggregated(
    trace: &Trace,
    policy: Policy,
    m: usize,
    speed: f64,
    k: u32,
    baselines: &[Policy],
    agg: &AggConfig,
) -> RatioEstimate {
    let budget = campaign::task_budget();
    let (lb_value, lb_provenance) =
        match cached_lk_lower_bound_aggregated(trace, m, k, agg, &budget) {
            Some(b) => {
                let provenance = if b.kind == BoundKind::LpAgg {
                    format!("lp-agg(\u{b1}{:.2}%)", b.rel_gap * 100.0)
                } else {
                    b.kind.label().to_string()
                };
                (b.value, provenance)
            }
            None => {
                // Aggregation ran out of budget mid-solve: fall back to the
                // budgeted exact path, which degrades to closed-form bounds
                // on its own spent budget.
                let budgeted = cached_lk_lower_bound_budgeted(trace, m, k, &budget);
                let mut provenance = budgeted.bound.kind.label().to_string();
                if budgeted.degraded {
                    provenance.push_str(" (degraded)");
                    if let Some(c) = campaign::active() {
                        c.note_degraded();
                    }
                }
                (budgeted.bound.value, provenance)
            }
        };
    assemble_estimate(
        trace,
        policy,
        m,
        speed,
        k,
        baselines,
        lb_value,
        lb_provenance,
    )
}

/// [`empirical_ratio`] with the lower bound computed by the
/// column-generation solver, threading a dual warm-start handle between
/// neighbouring calls (sweeps over `m`, `k`, or nearby traces). The
/// bound value is the exact LP bound — colgen terminates on a clean
/// pricing certificate — so the estimate's semantics match
/// [`empirical_ratio`]; only wall-clock differs. Returns the handle to
/// pass to the next neighbour (`None` if the solve degraded).
pub fn empirical_ratio_warm(
    trace: &Trace,
    policy: Policy,
    m: usize,
    speed: f64,
    k: u32,
    baselines: &[Policy],
    warm: Option<&LpWarmStart>,
) -> (RatioEstimate, Option<LpWarmStart>) {
    let budget = campaign::task_budget();
    let (lb_value, lb_provenance, handle) =
        match cached_lk_lower_bound_colgen_budgeted(trace, m, k, &budget, warm) {
            Some((lb, handle, _accepted)) => (lb.value, lb.kind.label().to_string(), Some(handle)),
            None => {
                let budgeted = cached_lk_lower_bound_budgeted(trace, m, k, &budget);
                let mut provenance = budgeted.bound.kind.label().to_string();
                if budgeted.degraded {
                    provenance.push_str(" (degraded)");
                    if let Some(c) = campaign::active() {
                        c.note_degraded();
                    }
                }
                (budgeted.bound.value, provenance, None)
            }
        };
    (
        assemble_estimate(
            trace,
            policy,
            m,
            speed,
            k,
            baselines,
            lb_value,
            lb_provenance,
        ),
        handle,
    )
}

/// One (trace, policy, m, speed, k) evaluation for the batched fan-out
/// [`empirical_ratios`]. Owning the trace keeps the task `Send` without
/// lifetime gymnastics at the experiment layer.
#[derive(Debug, Clone)]
pub struct RatioTask {
    /// The instance to evaluate.
    pub trace: Trace,
    /// The policy under test.
    pub policy: Policy,
    /// Machine count.
    pub m: usize,
    /// Policy speed (OPT runs at 1).
    pub speed: f64,
    /// Norm exponent.
    pub k: u32,
}

impl RatioTask {
    /// Content-addressed campaign journal key: every input that affects
    /// the estimate (trace bytes, policy, m, speed, k, baseline set) is
    /// hashed, so two tasks share a key exactly when their results are
    /// interchangeable.
    fn campaign_key(&self, baselines: &[Policy]) -> String {
        let mut bytes: Vec<u8> = Vec::with_capacity(self.trace.len() * 24 + 64);
        for j in self.trace.jobs() {
            bytes.extend_from_slice(&j.arrival.to_bits().to_le_bytes());
            bytes.extend_from_slice(&j.size.to_bits().to_le_bytes());
            bytes.extend_from_slice(&j.weight.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(self.policy.to_string().as_bytes());
        bytes.extend_from_slice(&(self.m as u64).to_le_bytes());
        bytes.extend_from_slice(&self.speed.to_bits().to_le_bytes());
        bytes.extend_from_slice(&self.k.to_le_bytes());
        for b in baselines {
            bytes.extend_from_slice(b.to_string().as_bytes());
            bytes.push(b';');
        }
        bytes.extend_from_slice(&crate::lbcache::SOLVER_VERSION.to_le_bytes());
        format!("ratio:{:016x}", campaign::fingerprint(bytes))
    }
}

/// Evaluate a batch of ratio points in parallel, preserving task order.
///
/// Each task's lower-bound solve (the expensive part) runs on its own
/// worker with a thread-local LP arena; the `lbcache` writers are
/// rename-atomic, so concurrent tasks sharing a `(trace, m, k)` key are
/// safe. Output index `i` is always task `i`, whatever the thread count
/// — experiment tables stay byte-identical.
///
/// When tracing is on, task `i` records onto logical track `i + 1` (track
/// 0 is the main thread), so trace *structure* is also independent of the
/// worker-thread count — see `tf_obs`'s determinism notes.
pub fn empirical_ratios(tasks: &[RatioTask], baselines: &[Policy]) -> Vec<RatioEstimate> {
    let indexed: Vec<(u32, &RatioTask)> = (0u32..).zip(tasks.iter()).collect();
    indexed
        .par_iter()
        .map(|&(i, t)| {
            let _track = tf_obs::set_track(i + 1);
            let mut span = tf_obs::span!("harness", "ratio_task");
            span.arg("task", f64::from(i));
            span.arg("m", t.m as f64);
            span.arg("speed", t.speed);
            span.arg("k", f64::from(t.k));
            // Under an active campaign each task journals on completion
            // and replays on resume; the key is content-addressed, so
            // replay is exact regardless of task order or thread count.
            campaign::run_or_replay(&t.campaign_key(baselines), || {
                empirical_ratio(&t.trace, t.policy, t.m, t.speed, t.k, baselines)
            })
        })
        .collect()
}

/// `Σ F^k` of one policy at one speed (no lower bound, no baselines) —
/// the cheap building block for sweeps that reuse a baseline.
pub fn policy_power_sum(trace: &Trace, policy: Policy, m: usize, speed: f64, k: u32) -> f64 {
    let mut alloc = policy.make();
    simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(m, speed),
        SimOptions::default(),
    )
    .expect("simulation of a registry policy on a valid trace")
    .flow_power_sum(f64::from(k))
}

/// Best `Σ F^k` over `baselines` at speed 1 (the OPT upper bound), with
/// the winning policy's name.
pub fn best_baseline_power(trace: &Trace, m: usize, k: u32, baselines: &[Policy]) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut name = String::new();
    for p in baselines {
        let v = policy_power_sum(trace, *p, m, 1.0, k);
        if v < best {
            best = v;
            name = p.to_string();
        }
    }
    (best, name)
}

/// Binary-search the minimum speed at which `policy`'s ratio (vs the best
/// baseline) drops to `target` on this instance. Returns `hi` if even `hi`
/// doesn't reach the target.
pub fn min_speed_for_ratio(
    trace: &Trace,
    policy: Policy,
    m: usize,
    k: u32,
    target: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    let (best, _) = best_baseline_power(trace, m, k, &default_baselines());
    let ratio_at =
        |s: f64| (policy_power_sum(trace, policy, m, s, k) / best).powf(1.0 / f64::from(k));
    if ratio_at(hi) > target {
        return hi;
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ratio_at(mid) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0), (2.0, 1.0), (5.0, 2.0)]).unwrap()
    }

    #[test]
    fn bracket_is_ordered() {
        let r = empirical_ratio(&trace(), Policy::Rr, 1, 2.0, 2, &default_baselines());
        assert!(r.lower_bound <= r.best_power_sum + 1e-9);
        assert!(r.ratio_vs_best <= r.ratio_vs_lb + 1e-9);
        assert!(r.ratio_vs_best > 0.0);
    }

    #[test]
    fn srpt_at_speed_one_matches_best_on_one_machine_l1() {
        // SRPT is its own best baseline for l1, m=1: ratio_vs_best == 1.
        let r = empirical_ratio(&trace(), Policy::Srpt, 1, 1.0, 1, &default_baselines());
        assert!((r.ratio_vs_best - 1.0).abs() < 1e-9, "{}", r.ratio_vs_best);
        assert_eq!(r.best_policy, "SRPT");
    }

    #[test]
    fn more_speed_lowers_the_ratio() {
        let t = trace();
        let slow = empirical_ratio(&t, Policy::Rr, 1, 1.0, 2, &default_baselines());
        let fast = empirical_ratio(&t, Policy::Rr, 1, 4.0, 2, &default_baselines());
        assert!(fast.ratio_vs_best <= slow.ratio_vs_best + 1e-9);
    }

    #[test]
    fn batched_ratios_match_serial_calls_in_order() {
        let t = trace();
        let tasks: Vec<RatioTask> = [
            (1usize, 1.0f64, 1u32),
            (2, 2.0, 2),
            (1, 3.0, 2),
            (2, 1.0, 1),
        ]
        .iter()
        .map(|&(m, speed, k)| RatioTask {
            trace: t.clone(),
            policy: Policy::Rr,
            m,
            speed,
            k,
        })
        .collect();
        let batch = empirical_ratios(&tasks, &default_baselines());
        assert_eq!(batch.len(), tasks.len());
        for (task, got) in tasks.iter().zip(&batch) {
            let want = empirical_ratio(
                &task.trace,
                task.policy,
                task.m,
                task.speed,
                task.k,
                &default_baselines(),
            );
            assert_eq!(got.alg_power_sum, want.alg_power_sum);
            assert_eq!(got.lower_bound, want.lower_bound);
            assert_eq!(got.best_power_sum, want.best_power_sum);
            assert_eq!(got.best_policy, want.best_policy);
            assert_eq!(got.ratio_vs_lb, want.ratio_vs_lb);
            assert_eq!(got.ratio_vs_best, want.ratio_vs_best);
        }
    }

    #[test]
    fn aggregated_ratio_is_a_sound_looser_bracket() {
        let t = trace();
        let exact = empirical_ratio(&t, Policy::Rr, 1, 2.0, 2, &default_baselines());
        let agg = empirical_ratio_aggregated(
            &t,
            Policy::Rr,
            1,
            2.0,
            2,
            &default_baselines(),
            &AggConfig::default(),
        );
        assert_eq!(agg.alg_power_sum, exact.alg_power_sum);
        assert_eq!(agg.best_power_sum, exact.best_power_sum);
        // The aggregated bound never exceeds the exact one, so its
        // upper ratio estimate is never tighter than the exact one's.
        assert!(agg.lower_bound <= exact.lower_bound + 1e-9);
        assert!(agg.ratio_vs_lb >= exact.ratio_vs_lb - 1e-9);
        assert!(
            agg.lb_provenance.starts_with("lp-agg(\u{b1}")
                || ["lp/2", "size", "srpt-m"].contains(&agg.lb_provenance.as_str()),
            "{}",
            agg.lb_provenance
        );
    }

    #[test]
    fn warm_ratio_matches_the_exact_bracket_and_chains_handles() {
        // Big enough to exercise the colgen path (not the SSP crossover).
        let t = Trace::from_pairs((0..100).map(|i| ((i / 2) as f64, (1 + (i * 7 + 3) % 4) as f64)))
            .unwrap();
        let mut warm: Option<LpWarmStart> = None;
        for m in [1usize, 2] {
            let exact = empirical_ratio(&t, Policy::Rr, m, 1.0, 2, &default_baselines());
            let (r, handle) = empirical_ratio_warm(
                &t,
                Policy::Rr,
                m,
                1.0,
                2,
                &default_baselines(),
                warm.as_ref(),
            );
            assert_eq!(r.alg_power_sum, exact.alg_power_sum, "m={m}");
            assert!(
                (r.lower_bound - exact.lower_bound).abs() <= 1e-7 * exact.lower_bound,
                "m={m}: warm {} vs exact {}",
                r.lower_bound,
                exact.lower_bound
            );
            assert!(!r.lb_provenance.contains("degraded"), "m={m}");
            warm = handle;
        }
    }

    #[test]
    fn min_speed_search_brackets_the_knee() {
        let t = trace();
        // RR at high speed clearly beats ratio 1.2; at speed 1 it doesn't.
        let s = min_speed_for_ratio(&t, Policy::Rr, 1, 2, 1.2, 0.5, 8.0);
        assert!(s > 0.5 && s < 8.0);
        let at = empirical_ratio(&t, Policy::Rr, 1, s, 2, &default_baselines());
        assert!(at.ratio_vs_best <= 1.2 + 1e-6);
        let below = empirical_ratio(&t, Policy::Rr, 1, s * 0.9, 2, &default_baselines());
        assert!(below.ratio_vs_best >= 1.2 - 0.05, "{}", below.ratio_vs_best);
    }
}

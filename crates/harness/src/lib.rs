#![warn(missing_docs)]

//! # tf-harness — the experiment suite (E1–E20)
//!
//! The paper is pure theory; its "evaluation" is the set of quantitative
//! claims it proves or cites. DESIGN.md maps each claim to an experiment
//! id; this crate implements them:
//!
//! | Id | Claim |
//! |----|-------|
//! | E1 | Theorem 1: RR is `2k(1+10ε)`-speed `O(k/ε)`-competitive for ℓk |
//! | E2 | RR is `(4+ε)`-speed `O(1)`-competitive for ℓ2 |
//! | E3 | RR blows up with `n` at speed < 3/2 for ℓ2 (cited lower bound) |
//! | E4 | ratio-vs-speed crossover for ℓ2 |
//! | E5 | RR is O(1)-speed O(1)-competitive for ℓ1 |
//! | E6 | SRPT/SJF/SETF are scalable for ℓk |
//! | E7 | SRPT starves; RR is temporally fair (motivation table) |
//! | E8 | RR is instantaneously fair (Jain index 1) |
//! | E9 | RR vs age-weighted RR for ℓ2 |
//! | E10 | Lemmas 1–4 + dual feasibility certify (Section 3) |
//! | E11 | LP relaxation quality (Section 3.1) |
//! | E12 | discrete-quantum RR → ideal RR convergence |
//! | E13 | multi-machine RR semantics across m |
//! | E14 | the price of no migration (immediate dispatch, \[2,3\]) |
//! | E15 | speed-up curves: RR fails for ℓ2, fine for ℓ1 (\[13,15\]) |
//! | E16 | broadcast scheduling: shared transmissions (\[12,15\]) |
//! | E17 | weighted flow: oblivious RR vs WRR vs HDF |
//! | E18 | simulator vs closed-form M/G/1 queueing theory |
//! | E19 | adversary-mined worst instances (certified true ratios) |
//! | E20 | the k = ∞ endpoint: max flow, true ratios to FCFS |
//!
//! Every experiment returns [`table::Table`]s; the `experiments` binary
//! renders them as text/markdown/CSV. All randomness is seeded — rerunning
//! reproduces the tables exactly.

pub mod campaign;
pub mod corpus;
pub mod experiments;
pub mod hunt;
pub mod lbcache;
pub mod ratio;
pub mod replicate;
pub mod runctx;
pub mod sweep;
pub mod table;

pub use experiments::{run_experiment, run_experiment_ctx, Effort};
pub use ratio::{empirical_ratio, empirical_ratios, min_speed_for_ratio, RatioEstimate, RatioTask};
pub use runctx::RunCtx;
pub use table::Table;

//! **E12 — practical RR: quantum and context-switch fidelity.**
//!
//! The paper analyzes the idealized processor-sharing RR; real schedulers
//! run discrete quanta with switch overheads. This ablation quantifies the
//! gap so the theory's relevance to practical RR is measured rather than
//! assumed.
//!
//! Measurement: discrete RR at quanta q ∈ {2, 1, 0.5, 0.1, 0.02} with
//! context-switch costs c ∈ {0, 0.01, 0.1}, compared to the exact PS
//! engine on the same trace: relative ℓ1/ℓ2 error. Expected shape: error
//! → 0 as q → 0 with c = 0 (the definitional limit), and a growing
//! overhead-dominated floor once c > 0 as q shrinks.

use super::RunCtx;
use crate::corpus::integral_poisson;
use crate::table::{fnum, Table};
use tf_metrics::lk_norm;
use tf_policies::RoundRobin;
use tf_simcore::quantum::{simulate_quantum_rr, QuantumOptions};
use tf_simcore::{simulate, MachineConfig, SimOptions};
use tf_workload::SizeDist;

/// Run E12.
pub fn e12(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let trace = integral_poisson(
        effort.n(),
        0.9,
        1,
        SizeDist::Uniform { lo: 1.0, hi: 7.0 },
        1200,
    );
    let cfg = MachineConfig::new(1);
    let ideal = simulate(&trace, &mut RoundRobin::new(), cfg, SimOptions::default()).unwrap();
    let (l1_ref, l2_ref) = (lk_norm(&ideal.flow, 1.0), lk_norm(&ideal.flow, 2.0));

    let mut table = Table::new(
        "E12: discrete-quantum RR vs ideal processor-sharing RR (m=1)",
        &[
            "quantum",
            "ctx switch",
            "l1 rel err",
            "l2 rel err",
            "makespan overhead",
        ],
    );
    for &q in &[2.0, 1.0, 0.5, 0.1, 0.02] {
        for &c in &[0.0, 0.01, 0.1] {
            let s = simulate_quantum_rr(
                &trace,
                cfg,
                QuantumOptions {
                    quantum: q,
                    ctx_switch: c,
                },
            )
            .expect("valid options");
            let l1 = lk_norm(&s.flow, 1.0);
            let l2 = lk_norm(&s.flow, 2.0);
            table.push_row(vec![
                fnum(q),
                fnum(c),
                fnum((l1 - l1_ref).abs() / l1_ref),
                fnum((l2 - l2_ref).abs() / l2_ref),
                fnum(s.makespan() / ideal.makespan() - 1.0),
            ]);
        }
    }
    table.note("Ideal RR is the quantum->0, overhead->0 limit; with positive ctx switch the error re-grows as q shrinks (switch-dominated regime).");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_convergence_and_overhead_floor() {
        let t = &e12(&RunCtx::quick())[0];
        let row = |q: &str, c: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == q && r[1] == c)
                .unwrap_or_else(|| panic!("missing row {q}/{c}"))
        };
        let coarse: f64 = row("2.000", "0")[3].parse().unwrap();
        let fine: f64 = row("0.02000", "0")[3].parse().unwrap();
        assert!(fine < coarse, "no convergence: {fine} vs {coarse}");
        assert!(fine < 0.05, "fine-quantum error too large: {fine}");
        // With c=0.1 and tiny quantum, overhead dominates.
        let overhead: f64 = row("0.02000", "0.1000")[4].parse().unwrap();
        assert!(
            overhead > 0.5,
            "expected heavy switch overhead, got {overhead}"
        );
    }
}

//! **E10 — the analysis itself: Lemmas 1–4 and dual feasibility certify.**
//!
//! This experiment machine-checks the paper's Section 3 on a corpus:
//! construct the prescribed duals from the actual RR execution and verify
//! every inequality, reporting certification rates and worst slacks. A
//! second table probes the speed requirement: at what fraction of the
//! prescribed `η = 2k(1+10ε)` does the construction stop certifying?
//!
//! Expected shape: 100% certification at speed η for ε well inside the
//! paper's range; certification degrading as speed drops toward 1 —
//! localizing how much augmentation the *dual construction* (as opposed
//! to RR itself) really needs.

use super::RunCtx;
use crate::corpus::{adversarial_corpus, random_corpus};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_core::{eta, verify_theorem1, verify_theorem1_at_speed};

/// Run E10.
pub fn e10(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let mut corpus = random_corpus(effort.n(), 0.9, 1, 1000);
    corpus.extend(adversarial_corpus(effort.scale().min(4)));

    // ---- Table A: certification across (k, eps) ---------------------------
    let mut cert = Table::new(
        "E10a: Theorem 1 dual-fitting certificates at the prescribed speed",
        &[
            "k",
            "eps",
            "m",
            "certified",
            "min L1 slack",
            "min L2 slack",
            "min gap slack",
            "min feas slack",
        ],
    );
    let mut combos: Vec<(u32, f64, usize)> = Vec::new();
    for k in [1u32, 2, 3] {
        for eps in [0.05, 1.0 / 15.0, 0.1] {
            for m in [1usize, 4] {
                combos.push((k, eps, m));
            }
        }
    }
    let rows: Vec<_> = combos
        .par_iter()
        .map(|&(k, eps, m)| {
            let mut certified = 0usize;
            let mut s1 = f64::INFINITY;
            let mut s2 = f64::INFINITY;
            let mut sg = f64::INFINITY;
            let mut sf = f64::INFINITY;
            for inst in &corpus {
                let c = verify_theorem1(&inst.trace, m, k, eps).expect("valid run");
                if c.certified() {
                    certified += 1;
                }
                s1 = s1.min(c.report.lemma1.slack);
                s2 = s2.min(c.report.lemma2.slack);
                sg = sg.min(c.report.gap.slack);
                sf = sf.min(c.report.feasibility.worst_slack);
            }
            (k, eps, m, certified, corpus.len(), s1, s2, sg, sf)
        })
        .collect();
    for (k, eps, m, certified, total, s1, s2, sg, sf) in rows {
        cert.push_row(vec![
            k.to_string(),
            fnum(eps),
            m.to_string(),
            format!("{certified}/{total}"),
            fnum(s1),
            fnum(s2),
            fnum(sg),
            fnum(sf),
        ]);
    }
    cert.note(
        "slack > 0 means the inequality held with margin; any negative slack fails certification.",
    );
    cert.note("Lemmas 1-2 and the gap are identities of the construction (speed-independent); feasibility is where the speed requirement binds.");

    // ---- Table B: speed ablation ------------------------------------------
    let mut ablate = Table::new(
        "E10b: certification vs speed (fractions of the prescribed eta), k=2, eps=0.05",
        &["speed/eta", "speed", "certified"],
    );
    let k = 2u32;
    let eps = 0.05;
    let prescribed = eta(k, eps);
    let fracs = [0.25, 0.5, 0.625, 0.75, 0.875, 1.0, 1.25];
    let rows: Vec<_> = fracs
        .par_iter()
        .map(|&f| {
            let speed = f * prescribed;
            let certified = corpus
                .iter()
                .filter(|inst| {
                    verify_theorem1_at_speed(&inst.trace, 1, k, eps, speed)
                        .map(|c| c.certified())
                        .unwrap_or(false)
                })
                .count();
            (f, speed, certified)
        })
        .collect();
    for (f, speed, certified) in rows {
        ablate.push_row(vec![
            fnum(f),
            fnum(speed),
            format!("{certified}/{}", corpus.len()),
        ]);
    }
    ablate.note("eta = 2k(1+10*eps). The paper needs the full eta in the proof of Lemma 4; this measures how conservative that is per instance.");

    // ---- Table C: per-instance minimal certified speed ---------------------
    let mut minimal = Table::new(
        "E10c: per-instance minimal speed at which the dual construction certifies (k=2, eps=0.05)",
        &[
            "instance",
            "n",
            "min certified speed",
            "eta",
            "slack factor",
        ],
    );
    let rows: Vec<_> = corpus
        .par_iter()
        .map(|inst| {
            let s = tf_core::min_certified_speed(&inst.trace, 1, k, eps, 0.25, prescribed, 0.05);
            (inst.name.clone(), inst.trace.len(), s)
        })
        .collect();
    for (name, n, s) in rows {
        match s {
            Some(s) => minimal.push_row(vec![
                name,
                n.to_string(),
                fnum(s),
                fnum(prescribed),
                fnum(prescribed / s),
            ]),
            None => minimal.push_row(vec![
                name,
                n.to_string(),
                "> eta".into(),
                fnum(prescribed),
                "-".into(),
            ]),
        }
    }
    minimal.note("Binary search assuming monotonicity in speed (holds on this corpus); slack factor = eta / minimal certified speed — how much of the paper's constant this instance actually needs.");
    vec![cert, ablate, minimal]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_certifies_fully_at_prescribed_speed_for_small_eps() {
        let tables = e10(&RunCtx::quick());
        let cert = &tables[0];
        for row in &cert.rows {
            let eps: f64 = row[1].parse().unwrap();
            let parts: Vec<&str> = row[3].split('/').collect();
            let (got, total): (usize, usize) =
                (parts[0].parse().unwrap(), parts[1].parse().unwrap());
            if eps <= 0.067 {
                assert_eq!(got, total, "not fully certified: {row:?}");
            }
        }
        // Speed ablation: full speed certifies everything; quarter speed
        // does not.
        let ablate = &tables[1];
        let full = ablate.rows.iter().find(|r| r[0] == "1.000").unwrap();
        let parts: Vec<&str> = full[2].split('/').collect();
        assert_eq!(parts[0], parts[1], "{full:?}");
        // E10c: every corpus instance certifies at some speed <= eta with
        // real slack on at least one instance.
        let minimal = &tables[2];
        let mut any_slack = false;
        for row in &minimal.rows {
            assert_ne!(row[2], "> eta", "{row:?}");
            let slack: f64 = row[4].parse().unwrap();
            assert!(slack >= 1.0 - 1e-9);
            if slack > 1.5 {
                any_slack = true;
            }
        }
        assert!(any_slack, "no instance showed slack over eta");
    }
}

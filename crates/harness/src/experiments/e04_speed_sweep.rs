//! **E4 — the ratio-vs-speed crossover for ℓ2.**
//!
//! The paper brackets RR's ℓ2 behavior between two speeds: not
//! O(1)-competitive below 3/2 (cited lower bound), O(1)-competitive at
//! 4+ε (Theorem 1). This experiment traces the whole curve on contended
//! instances (the geometric burst and an overloaded stream — on
//! uncontended streams with `n_t ≤ 1` every policy coincides and the
//! curve is trivially `1/s`).
//!
//! Measurement: RR's ℓ2 ratio (vs best baseline) as speed sweeps 1.0 → 6.0,
//! plus a binary search for the empirical "knee" — the minimum speed at
//! which RR *matches* the best speed-1 baseline (ratio ≤ 1). Expected
//! shape: decreasing in speed, crossing 1 between 1 and 2 on these
//! finite instances — comfortably inside the paper's [3/2, 4+ε] window —
//! and flattening far below 1 beyond 4.

use super::RunCtx;
use crate::ratio::{best_baseline_power, default_baselines, min_speed_for_ratio, policy_power_sum};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;
use tf_workload::adversarial::{critical_stream, geometric_burst};

/// Run E4.
pub fn e4(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let k = 2u32;
    let speeds: Vec<f64> = (2..=12).map(|i| 0.5 * i as f64).collect(); // 1.0..6.0
    let scale = effort.scale();
    let instances = vec![
        ("burst".to_string(), geometric_burst(scale + 1, 2)),
        // Load 1.3: arrivals outpace a unit-speed machine, so the alive
        // set genuinely contends.
        (
            "overload-stream".to_string(),
            critical_stream(24 << scale, 1.3),
        ),
    ];
    let baselines = default_baselines();

    let mut curve = Table::new(
        "E4a: RR l2 ratio (vs best baseline) as a function of speed",
        &["speed", "burst", "overload-stream"],
    );
    let bests: Vec<f64> = instances
        .iter()
        .map(|(_, t)| best_baseline_power(t, 1, k, &baselines).0)
        .collect();
    let cells: Vec<Vec<f64>> = speeds
        .par_iter()
        .map(|&s| {
            instances
                .iter()
                .zip(&bests)
                .map(|((_, t), &best)| (policy_power_sum(t, Policy::Rr, 1, s, k) / best).sqrt())
                .collect()
        })
        .collect();
    for (s, row) in speeds.iter().zip(cells) {
        curve.push_row(vec![fnum(*s), fnum(row[0]), fnum(row[1])]);
    }
    curve.note(
        "Paper brackets: no O(1) guarantee below speed 3/2; Theorem 1 guarantees O(1) at 4+eps.",
    );
    curve.note("The overload-stream column cliffs right above speed 1: at load 1.3 the speed-1 baselines are themselves overloaded (unbounded backlog), so any stabilizing speed wins outright — augmentation versus overload is a knife edge, which is the point.");

    let mut knee = Table::new(
        "E4b: minimum speed for RR to match the best speed-1 baseline (ratio <= 1)",
        &["instance", "n", "min speed"],
    );
    for (name, t) in &instances {
        let s = min_speed_for_ratio(t, Policy::Rr, 1, k, 1.0, 0.5, 8.0);
        knee.push_row(vec![name.clone(), t.len().to_string(), fnum(s)]);
    }
    knee.note("Worst-case theory needs 4+eps (Theorem 1); finite instances cross much earlier — the gap between worst-case and typical.");
    vec![curve, knee]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_curve_is_decreasing_and_crosses_one() {
        let tables = e4(&RunCtx::quick());
        let curve = &tables[0];
        let val = |r: usize, c: usize| -> f64 { curve.rows[r][c].parse().unwrap() };
        let n = curve.rows.len();
        for c in [1, 2] {
            // Strictly decreasing endpoints, above 1 at speed 1, below at 6.
            assert!(val(0, c) > 1.0, "col {c}: no contention at speed 1");
            assert!(val(n - 1, c) < 1.0, "col {c}: never crossed");
            assert!(val(n - 1, c) < val(0, c));
        }
        // Knee inside the sweep range.
        for row in &tables[1].rows {
            let s: f64 = row[2].parse().unwrap();
            assert!((0.5..6.0).contains(&s), "{row:?}");
        }
    }
}

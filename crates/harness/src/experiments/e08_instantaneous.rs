//! **E8 — RR is instantaneously fair.**
//!
//! Claim (paper, Section 1): "Round Robin (RR) is an algorithm that
//! achieves fairness by giving an equal share of the machine(s) to all
//! jobs at all times. This fairness also coincides with maximizing the
//! minimum fairness."
//!
//! Measurement: duration-weighted Jain index of the per-job rate vector
//! over the whole execution, the worst instantaneous Jain index, and total
//! starvation time (some job at rate 0 while others run), for every
//! policy on a heavy-tailed Poisson workload. Expected shape: RR at
//! exactly 1.0 / 1.0 / 0; priority policies clearly below.

use super::RunCtx;
use crate::corpus::integral_poisson;
use crate::table::{fnum, Table};
use tf_metrics::instantaneous_fairness;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions};
use tf_workload::SizeDist;

/// Run E8.
pub fn e8(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let trace = integral_poisson(
        effort.n(),
        0.9,
        2,
        SizeDist::Pareto {
            alpha: 1.8,
            min: 2.0,
        },
        800,
    );
    let mut table = Table::new(
        "E8: instantaneous fairness over the execution (m=2, speed 1)",
        &[
            "policy",
            "mean Jain",
            "min Jain",
            "starvation time",
            "makespan",
        ],
    );
    for p in [
        Policy::Rr,
        Policy::Laps(0.5),
        Policy::Setf,
        Policy::Mlfq,
        Policy::Srpt,
        Policy::Sjf,
        Policy::Fcfs,
    ] {
        let mut alloc = p.make();
        let s = simulate(
            &trace,
            alloc.as_mut(),
            MachineConfig::new(2),
            SimOptions::with_profile(),
        )
        .expect("valid policy run");
        let series = instantaneous_fairness(s.profile.as_ref().unwrap());
        table.push_row(vec![
            p.to_string(),
            fnum(series.mean_jain()),
            fnum(series.min_jain()),
            fnum(series.starvation_time()),
            fnum(s.makespan()),
        ]);
    }
    table.note("Jain index of the instantaneous rate vector, duration-weighted over contended segments (>= 2 alive jobs).");
    table.note("Expected: RR = 1.0 exactly (the definitional claim); SRPT/SJF/FCFS starve whoever is not among the m highest-priority jobs.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_rr_is_perfectly_fair_and_priorities_are_not() {
        let t = &e8(&RunCtx::quick())[0];
        let find = |name: &str| t.rows.iter().find(|r| r[0] == name).unwrap();
        let rr_mean: f64 = find("RR")[1].parse().unwrap();
        let rr_starve: f64 = find("RR")[3].parse().unwrap();
        assert!((rr_mean - 1.0).abs() < 1e-9);
        assert_eq!(rr_starve, 0.0);
        let srpt_mean: f64 = find("SRPT")[1].parse().unwrap();
        let srpt_starve: f64 = find("SRPT")[3].parse().unwrap();
        assert!(srpt_mean < 1.0);
        assert!(srpt_starve > 0.0);
    }
}

//! **E13 — multi-machine RR semantics across m.**
//!
//! Claim (paper, Section 1.1): "The algorithm RR has a natural
//! interpretation in this setting: at any point in time when there are
//! more jobs than machines, allocate machines to jobs equally. Otherwise,
//! process each job on one machine exclusively" — and Theorem 1 holds for
//! every m.
//!
//! Measurement: a fixed per-machine load, machine counts m ∈ {1,2,4,8};
//! RR at speed 4.4 for ℓ2 with the ratio bracket, plus the fraction of
//! busy time spent overloaded (n_t ≥ m) — the regime split the dual
//! construction cares about. Expected shape: bounded ratios at every m;
//! the overloaded fraction falls as m grows at fixed ρ.

use super::RunCtx;
use crate::corpus::integral_poisson;
use crate::ratio::{default_baselines, empirical_ratio};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions};
use tf_workload::SizeDist;

/// Run E13.
pub fn e13(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let k = 2u32;
    let speed = 4.4;
    let ms = [1usize, 2, 4, 8];
    let mut table = Table::new(
        "E13: RR across machine counts (l2, speed 4.4, per-machine load 0.9)",
        &["m", "n", "ratio>=", "ratio<=", "overloaded fraction"],
    );
    let baselines = default_baselines();

    let rows: Vec<_> = ms
        .par_iter()
        .map(|&m| {
            // Scale job count with m to keep horizon comparable.
            let n = effort.n() * m.max(1);
            let t = integral_poisson(n, 0.9, m, SizeDist::Exponential { mean: 4.0 }, 1300);
            let r = empirical_ratio(&t, Policy::Rr, m, speed, k, &baselines);
            // Overloaded fraction from the profile at the augmented speed.
            let s = simulate(
                &t,
                Policy::Rr.make().as_mut(),
                MachineConfig::with_speed(m, speed),
                SimOptions::with_profile(),
            )
            .unwrap();
            let p = s.profile.as_ref().unwrap();
            let occ = tf_metrics::occupancy_stats(p).expect("non-empty profile");
            (
                m,
                n,
                r.ratio_vs_best,
                r.ratio_vs_lb,
                occ.overloaded_fraction,
            )
        })
        .collect();
    for (m, n, lo, hi, frac) in rows {
        table.push_row(vec![
            m.to_string(),
            n.to_string(),
            fnum(lo),
            fnum(hi),
            fnum(frac),
        ]);
    }
    table.note("overloaded fraction = share of busy time with n_t >= m (the T_o regime of the dual construction) under augmented RR.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_bounded_ratios_everywhere() {
        let t = &e13(&RunCtx::quick())[0];
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let lo: f64 = row[2].parse().unwrap();
            let frac: f64 = row[4].parse().unwrap();
            assert!(lo < 3.0, "{row:?}");
            assert!((0.0..=1.0).contains(&frac), "{row:?}");
        }
    }
}

//! **E2 — the ℓ2 headline: RR is (4+ε)-speed O(1)-competitive.**
//!
//! Claim (paper, Section 1.1): "our analysis shows that RR is
//! (4+ε)-speed O(1)-competitive for the ℓ2-norm of flow time for any fixed
//! ε > 0."
//!
//! Measurement: RR at speed 4.4 for the ℓ2 norm across a utilization sweep
//! ρ ∈ {0.6 … 1.2} on m ∈ {1, 4} machines. Expected shape: the ratio
//! bracket stays a small constant across the whole load range, including
//! past saturation (ρ ≥ 1), where unaugmented policies degrade.

use super::{Effort, RunCtx};
use crate::corpus::random_corpus;
use crate::ratio::{default_baselines, empirical_ratios, RatioTask};
use crate::table::{fnum, stats_cells, Table};
use tf_policies::Policy;
use tf_simcore::SimStats;

/// Run E2.
pub fn e2(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let speed = 4.4;
    let k = 2u32;
    let rhos = [0.6, 0.8, 0.9, 1.0, 1.2];
    let mut table = Table::new(
        "E2: RR at speed 4.4 for the l2 norm across utilizations",
        &[
            "m",
            "rho",
            "mean ratio>= (±std)",
            "max ratio>=",
            "max ratio<=",
            "steps",
            "peak alive",
            "alloc ms",
        ],
    );
    let baselines = default_baselines();
    let seeds = match effort {
        Effort::Quick => 2u64,
        Effort::Full => 5,
    };

    // Flatten every (m, rho, seed, instance) evaluation into one ordered
    // fan-out — far more parallel slack than the old per-m rho sweep —
    // then re-aggregate sequentially along the recorded layout. Results
    // come back in task order, so rows are identical to the serial run.
    let mut tasks: Vec<RatioTask> = Vec::new();
    let mut layout: Vec<(usize, f64, Vec<usize>)> = Vec::new();
    for m in [1usize, 4] {
        for &rho in &rhos {
            let mut counts = Vec::with_capacity(seeds as usize);
            for seed in 0..seeds {
                let corpus =
                    random_corpus(effort.n(), rho, m, 200 + (rho * 100.0) as u64 + 977 * seed);
                counts.push(corpus.len());
                for inst in corpus {
                    tasks.push(RatioTask {
                        trace: inst.trace,
                        policy: Policy::Rr,
                        m,
                        speed,
                        k,
                    });
                }
            }
            layout.push((m, rho, counts));
        }
    }
    let mut results = empirical_ratios(&tasks, &baselines).into_iter();
    for (m, rho, counts) in layout {
        // Replicate the whole corpus across seeds so the mean carries
        // sampling uncertainty, and track worst cases over every
        // replicate.
        let mut means = Vec::with_capacity(counts.len());
        let mut lo_max: f64 = 0.0;
        let mut hi_max: f64 = 0.0;
        let mut stats = SimStats::default();
        for count in counts {
            let mut lo_sum = 0.0;
            for _ in 0..count {
                let r = results.next().expect("one result per task");
                lo_sum += r.ratio_vs_best;
                lo_max = lo_max.max(r.ratio_vs_best);
                hi_max = hi_max.max(r.ratio_vs_lb);
                stats.absorb(&r.stats);
            }
            means.push(lo_sum / count as f64);
        }
        let rep = crate::replicate::Replicates::from_values(&means);
        let mut row = vec![
            m.to_string(),
            fnum(rho),
            rep.display(),
            fnum(lo_max),
            fnum(hi_max),
        ];
        row.extend(stats_cells(&stats));
        table.push_row(row);
    }
    table.note(format!(
        "Aggregates over the 4-distribution random corpus at each utilization, replicated across {seeds} seeds (mean ± sample std of the per-corpus mean)."
    ));
    table.note("Expected: bounded constants at every load — the O(1) of Theorem 1 for k=2.");
    table.note("steps/alloc ms aggregate the evaluated RR runs in the row; peak alive is the row maximum (SimStats).");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_ratio_bounded_across_loads() {
        let t = &e2(&RunCtx::quick())[0];
        assert_eq!(t.rows.len(), 2 * 5);
        for row in &t.rows {
            let lo_max: f64 = row[3].parse().unwrap();
            // 4.4-speed RR against speed-1 baselines: never worse than a
            // small constant on these workloads.
            assert!(lo_max < 3.0, "{row:?}");
        }
    }
}

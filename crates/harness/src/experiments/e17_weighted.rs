//! **E17 — weighted flow: RR vs its weighted variant.**
//!
//! Claim context (paper, Section 1.2): "A potential issue with using
//! potential functions or dual fitting is that the analysis seems to
//! require a *weighted* version of RR. … if jobs are given machines in
//! proportion to their ages (a weighted version of RR), both the potential
//! function and dual fitting approaches go through relatively easily."
//! The paper's contribution is handling the *unweighted* RR anyway. The
//! natural follow-up question a practitioner asks: on instances that
//! actually carry weights, how much does plain (weight-oblivious) RR lose
//! against weight-aware policies for the **weighted** ℓk objective
//! `Σ w_j F_j^k` (the objective of the dual-fitting framework \[1\] the
//! paper builds on)?
//!
//! Measurement: weighted Poisson workloads with weight classes
//! {1, 4, 16}; policies RR (oblivious), WRR (weight-proportional shares),
//! HDF (clairvoyant weighted-SJF); objective bracketed by the *weighted*
//! LP lower bound. Expected shape: for weighted objectives WRR
//! consistently beats RR and trails HDF; the gap widens with weight
//! spread — quantifying what weight-awareness buys on top of Theorem 1.

use super::RunCtx;
use crate::corpus::weighted_integral_poisson;
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_lowerbound::lp_relaxation_value_weighted;
use tf_metrics::weighted_flow_power_sum;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};
use tf_workload::SizeDist;

fn weighted_objective(trace: &Trace, policy: Policy, m: usize, speed: f64, k: u32) -> f64 {
    let mut alloc = policy.make();
    let s = simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(m, speed),
        SimOptions::default(),
    )
    .expect("valid policy run");
    let weights: Vec<f64> = trace.jobs().iter().map(|j| j.weight).collect();
    weighted_flow_power_sum(&s.flow, &weights, f64::from(k))
}

/// Run E17.
pub fn e17(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let mut table = Table::new(
        "E17: weighted flow (sum of w*F^k) — oblivious RR vs weight-aware policies (speed 2.2)",
        &[
            "k",
            "spread",
            "RR / wLB",
            "WRR / wLB",
            "HDF / wLB",
            "RR / HDF",
            "WRR / HDF",
        ],
    );
    let speed = 2.2;
    let m = 1usize;
    let spreads: Vec<(&str, Vec<f64>)> = vec![
        ("1:1", vec![1.0]),
        ("1:4", vec![1.0, 4.0]),
        ("1:4:16", vec![1.0, 4.0, 16.0]),
    ];

    let mut combos = Vec::new();
    for k in [1u32, 2] {
        for (name, classes) in &spreads {
            combos.push((k, *name, classes.clone()));
        }
    }
    let rows: Vec<_> = combos
        .par_iter()
        .map(|(k, name, classes)| {
            let trace = weighted_integral_poisson(
                effort.n(),
                0.9,
                m,
                SizeDist::Exponential { mean: 4.0 },
                classes,
                1700 + u64::from(*k),
            );
            let lb = lp_relaxation_value_weighted(&trace, m, *k, true).objective / 2.0;
            let rr = weighted_objective(&trace, Policy::Rr, m, speed, *k);
            let wrr = weighted_objective(&trace, Policy::Wrr, m, speed, *k);
            let hdf = weighted_objective(&trace, Policy::Hdf, m, speed, *k);
            let root = |x: f64| x.powf(1.0 / f64::from(*k));
            (
                *k,
                name.to_string(),
                root(rr / lb),
                root(wrr / lb),
                root(hdf / lb),
                root(rr / hdf),
                root(wrr / hdf),
            )
        })
        .collect();
    for (k, name, rr, wrr, hdf, rr_hdf, wrr_hdf) in rows {
        table.push_row(vec![
            k.to_string(),
            name,
            fnum(rr),
            fnum(wrr),
            fnum(hdf),
            fnum(rr_hdf),
            fnum(wrr_hdf),
        ]);
    }
    table.note("wLB = weighted LP relaxation / 2 (certified lower bound on the weighted optimum at speed 1). Ratios are k-th roots (norm scale).");
    table.note("Expected: with trivial weights the three columns nearly coincide; as spread grows, oblivious RR falls behind WRR, and both trail clairvoyant HDF.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_weight_awareness_pays_with_spread() {
        let t = &e17(&RunCtx::quick())[0];
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let rr_lb: f64 = row[2].parse().unwrap();
            let hdf_lb: f64 = row[4].parse().unwrap();
            // Sound bounds: every ratio vs the lower bound is >= ~1 at
            // speed 1... we run at 2.2, so just check positivity/sanity.
            assert!(rr_lb > 0.0 && rr_lb < 20.0, "{row:?}");
            assert!(hdf_lb > 0.0, "{row:?}");
        }
        // At the widest spread (k=2), WRR beats oblivious RR.
        let wide = t
            .rows
            .iter()
            .find(|r| r[0] == "2" && r[1] == "1:4:16")
            .unwrap();
        let rr_hdf: f64 = wide[5].parse().unwrap();
        let wrr_hdf: f64 = wide[6].parse().unwrap();
        assert!(wrr_hdf < rr_hdf + 0.05, "WRR did not help: {wide:?}");
    }
}

//! **E15 — the setting where RR provably fails: speed-up curves.**
//!
//! Claim (paper, Section 1.2): "in other scheduling environments such as
//! the arbitrary speed-up curves and broadcast settings, RR was shown not
//! to be O(1)-speed O(1)-competitive" for the ℓ2 norm \[15\], although
//! "RR is O(1)-speed O(1)-competitive for the ℓ1-norm in both settings"
//! \[13\]. This is the paper's own foil: the same algorithm, a different
//! machine model, and the guarantee collapses — which is why Theorem 1
//! (standard identical machines) was genuinely open.
//!
//! Measurement: the sequential-swarm family — one parallel job diluted by
//! a maintained swarm of *sequential* jobs that cost the clairvoyant
//! baseline nothing (sequential phases progress at machine speed with
//! zero processors). The adversary's knob is the **dilution depth**
//! `D = par_work / seq_len`: shrinking the sequential jobs makes the
//! swarm's own contribution to the ℓ2 norm vanish while its head-count
//! (and hence EQUI's waste) persists; the ℓ2 ratio scales like `√D`,
//! unboundedly — and the overlapped arrivals keep the swarm alive under
//! speed augmentation, so no constant speed rescues EQUI. The ℓ1 ratio
//! stays near 1 throughout (the \[13\] positive result).

use super::{Effort, RunCtx};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_speedup::families::seq_swarm_overlapped;
use tf_speedup::{simulate_speedup, Equi, GreedyPar, LapsCurves};

/// Run E15.
pub fn e15(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let (swarm, par_work, dilutions): (usize, f64, Vec<f64>) = match effort {
        Effort::Quick => (4, 2.0, vec![4.0, 16.0, 64.0]),
        Effort::Full => (8, 4.0, vec![4.0, 16.0, 64.0, 256.0]),
    };
    let overlap = 4u32;
    let speeds = [1.0, 2.0, 4.0];
    let mut table = Table::new(
        "E15: EQUI (=RR) vs clairvoyant baseline under speed-up curves (seq-swarm family)",
        &[
            "dilution D",
            "n",
            "l2 s=1",
            "l2 s=2",
            "l2 s=4",
            "l1 s=1",
            "l1 s=4",
            "LAPS l2 s=1",
            "LAPS l1 s=1",
        ],
    );

    let rows: Vec<_> = dilutions
        .par_iter()
        .map(|&d| {
            let seq_len = par_work / d;
            // Horizon covers the speed-1 EQUI completion of the diluted
            // parallel job with 20% slack.
            let alive = (overlap as usize * swarm) as f64;
            let horizon = 1.2 * par_work * (alive + 1.0);
            let period = seq_len / f64::from(overlap);
            let rounds = (horizon / period).ceil() as usize;
            let t = seq_swarm_overlapped(swarm, seq_len, par_work, rounds, overlap);
            let baseline = simulate_speedup(&t, &mut GreedyPar, 1.0, 1.0);
            let b2 = baseline.flow_norm(2.0);
            let b1 = baseline.flow_norm(1.0);
            let mut l2 = Vec::new();
            for &s in &speeds {
                let e = simulate_speedup(&t, &mut Equi, 1.0, s);
                l2.push(e.flow_norm(2.0) / b2);
            }
            let l1_s1 = simulate_speedup(&t, &mut Equi, 1.0, 1.0).flow_norm(1.0) / b1;
            let l1_s4 = simulate_speedup(&t, &mut Equi, 1.0, 4.0).flow_norm(1.0) / b1;
            let laps = simulate_speedup(&t, &mut LapsCurves::new(0.5), 1.0, 1.0);
            let laps_l2 = laps.flow_norm(2.0) / b2;
            let laps_l1 = laps.flow_norm(1.0) / b1;
            (d, t.len(), l2, l1_s1, l1_s4, laps_l2, laps_l1)
        })
        .collect();
    for (d, n, l2, l1_s1, l1_s4, laps_l2, laps_l1) in rows {
        table.push_row(vec![
            fnum(d),
            n.to_string(),
            fnum(l2[0]),
            fnum(l2[1]),
            fnum(l2[2]),
            fnum(l1_s1),
            fnum(l1_s4),
            fnum(laps_l2),
            fnum(laps_l1),
        ]);
    }
    table.note("Sequential phases progress at machine speed with ZERO processors, so the swarm costs the baseline nothing while EQUI hands each swarm member a full share.");
    table.note("Expected: l2 columns grow ~sqrt(D) at every speed (the [15] negative result — augmentation divides but never cancels the growth); l1 columns stay near 1 (the [13] positive result). This contrast is why Theorem 1's setting was open.");
    table.note("LAPS(0.5) columns: LAPS favors the latest arrivals — exactly the swarm — so it starves the old parallel job even harder than EQUI for l2, while its l1 also stays bounded (its [13] guarantee is for l1 with augmentation).");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_l2_grows_while_l1_stays_flat() {
        let t = &e15(&RunCtx::quick())[0];
        let val = |r: usize, c: usize| -> f64 { t.rows[r][c].parse().unwrap() };
        let last = t.rows.len() - 1;
        // l2 at speed 1 grows substantially with dilution depth.
        assert!(
            val(last, 2) > 2.0 * val(0, 2),
            "no growth: {} vs {}",
            val(last, 2),
            val(0, 2)
        );
        // Speed does not cancel the growth: still increasing at s=4.
        assert!(val(last, 4) > 1.5 * val(0, 4), "speed rescued EQUI");
        // l1 stays near 1 at every dilution.
        for r in 0..t.rows.len() {
            assert!(val(r, 5) < 1.6, "l1 blew up: {}", val(r, 5));
            assert!(val(r, 6) < 1.6);
        }
    }
}

//! **E5 — RR is O(1)-speed O(1)-competitive for ℓ1 (total flow).**
//!
//! Claim (paper, Section 1, citing \[11, 13\]): "It is known that RR is
//! O(1)-speed O(1)-competitive for average flow time."
//!
//! Measurement: RR at speeds {2.2, 3.0} for k = 1. On one machine the
//! comparison is against the *exact* optimum (SRPT is 1-competitive for
//! total flow there); on four machines against the ratio bracket.
//! Expected shape: small constants everywhere; on m = 1 the "ratio" is a
//! true competitive ratio, not an estimate.

use super::RunCtx;
use crate::corpus::random_corpus;
use crate::ratio::{default_baselines, empirical_ratio};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;

/// Run E5.
pub fn e5(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let k = 1u32;
    let speeds = [2.2, 3.0];
    let mut table = Table::new(
        "E5: RR for total (l1) flow time at O(1) speed",
        &[
            "m",
            "speed",
            "instance",
            "ratio (m=1: exact)",
            "ratio<= (LB)",
        ],
    );
    let baselines = default_baselines();

    for m in [1usize, 4] {
        let corpus = random_corpus(effort.n(), 0.9, m, 500);
        let rows: Vec<_> = corpus
            .par_iter()
            .flat_map(|inst| {
                speeds
                    .par_iter()
                    .map(|&s| {
                        let r = empirical_ratio(&inst.trace, Policy::Rr, m, s, k, &baselines);
                        (m, s, inst.name.clone(), r.ratio_vs_best, r.ratio_vs_lb)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (m, s, name, lo, hi) in rows {
            table.push_row(vec![m.to_string(), fnum(s), name, fnum(lo), fnum(hi)]);
        }
    }
    table.note(
        "On m=1 SRPT is exactly optimal for l1, so 'ratio' there is the true competitive ratio.",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_exact_ratios_are_constants() {
        let t = &e5(&RunCtx::quick())[0];
        for row in &t.rows {
            let m: usize = row[0].parse().unwrap();
            let exact: f64 = row[3].parse().unwrap();
            if m == 1 {
                // 2.2-speed RR for total flow: small constant (theory says
                // O(1); empirically near 1).
                assert!(exact < 2.0, "{row:?}");
                assert!(exact > 0.15, "{row:?}");
            }
        }
    }
}

//! **E7 — the motivation table: SRPT starves; RR is temporally fair.**
//!
//! Claim (paper, Section 1, quoting Silberschatz–Galvin–Gagne): average
//! flow time "potentially allow[s] some jobs to starve for service for an
//! unacceptably long time", and "for interactive systems, it is more
//! important to minimize the variance in the response time than it is to
//! minimize the average response time."
//!
//! Measurement: the starvation instance (one long job + a saturating
//! stream of unit jobs) under every policy at speed 1. Besides the flow
//! statistics, we report the *service-denial* metric that makes starvation
//! precise on a work-conserving machine: the long job's longest contiguous
//! interval at zero rate. (At saturating load, work conservation forces
//! every policy to finish the last job at the same time, so max *flow*
//! alone cannot distinguish them — progress guarantees can.)
//!
//! Expected shape: SRPT/SJF deny the long job service for essentially the
//! whole stream (it would time out in any real system) while achieving the
//! best mean; RR's denial is exactly 0 — it always progresses — at a
//! modest mean cost. FCFS shows the opposite failure (unit jobs blocked).

use super::{Effort, RunCtx};
use crate::table::{fnum, Table};
use tf_metrics::{flow_stats, job_starvation, lk_norm};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions};
use tf_workload::adversarial::srpt_starvation;

/// Run E7.
pub fn e7(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let stream_len = match effort {
        Effort::Quick => 60,
        Effort::Full => 400,
    };
    let long = match effort {
        Effort::Quick => 12.0,
        Effort::Full => 40.0,
    };
    let trace = srpt_starvation(long, 1.0, stream_len, 1.0);
    let mut table = Table::new(
        "E7: temporal fairness on the starvation instance (speed 1)",
        &[
            "policy",
            "mean flow",
            "variance",
            "max flow",
            "l2",
            "long-job denial",
            "max unit denial",
        ],
    );
    for p in [
        Policy::Rr,
        Policy::Srpt,
        Policy::Sjf,
        Policy::Setf,
        Policy::Mlfq,
        Policy::Fcfs,
        Policy::Laps(0.5),
    ] {
        let mut alloc = p.make();
        let s = simulate(
            &trace,
            alloc.as_mut(),
            MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .expect("valid policy run");
        let st = flow_stats(&s.flow);
        let denial = job_starvation(s.profile.as_ref().unwrap(), trace.len());
        // Job 0 is the long job (earliest arrival, trace sorted).
        let long_denial = denial[0];
        let unit_denial = denial[1..].iter().fold(0.0f64, |a, &d| a.max(d));
        table.push_row(vec![
            p.to_string(),
            fnum(st.mean),
            fnum(st.variance),
            fnum(st.max),
            fnum(lk_norm(&s.flow, 2.0)),
            fnum(long_denial),
            fnum(unit_denial),
        ]);
    }
    table.note(format!(
        "Instance: one job of size {long} at t=0 plus {stream_len} unit jobs arriving back-to-back (load 1)."
    ));
    table.note("'denial' = longest contiguous zero-rate interval while alive. At load 1 every work-conserving policy ends at the same makespan, so denial (progress), variance and the l2 norm are where fairness shows.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_srpt_denies_service_and_rr_never_does() {
        let t = &e7(&RunCtx::quick())[0];
        let find = |name: &str| t.rows.iter().find(|r| r[0] == name).unwrap();
        let rr_denial: f64 = find("RR")[5].parse().unwrap();
        let srpt_denial: f64 = find("SRPT")[5].parse().unwrap();
        // SRPT starves the long job for (almost) the entire stream.
        assert!(srpt_denial > 30.0, "SRPT denial only {srpt_denial}");
        // RR always serves every alive job.
        assert_eq!(rr_denial, 0.0);
        // The mean-vs-fairness trade: SRPT wins the mean.
        let rr_mean: f64 = find("RR")[1].parse().unwrap();
        let srpt_mean: f64 = find("SRPT")[1].parse().unwrap();
        assert!(srpt_mean <= rr_mean + 1e-9);
        // FCFS blocks units behind the long job instead.
        let fcfs_unit: f64 = find("FCFS")[6].parse().unwrap();
        assert!(fcfs_unit >= 10.0, "{fcfs_unit}");
    }
}

//! **E14 — the price of no migration (immediate dispatch).**
//!
//! Claim (paper, Related Work, citing \[2, 3\]): total flow time can be
//! minimized to within polylog/constant factors *without migration*, even
//! with immediate dispatch. The paper's RR, by contrast, migrates freely
//! (fractional machine shares). This experiment measures what that
//! freedom is worth.
//!
//! Measurement: migratory RR vs immediate-dispatch RR (per-machine RR
//! queues) under three routing rules, for ℓ1 and ℓ2 at speeds {1.0, 2.2},
//! m ∈ {2, 8}. Expected shape: least-work routing tracks migratory RR
//! within small constants (the \[2\] message); cyclic/random routing pay
//! more, especially at ℓ2 under heavy tails (one unlucky queue inflates
//! the norm); all gaps shrink with speed.

use super::RunCtx;
use crate::corpus::integral_poisson;
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_dispatch::{simulate_dispatch, DispatchRule};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions};
use tf_workload::SizeDist;

/// Run E14.
pub fn e14(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let mut table = Table::new(
        "E14: migratory RR vs immediate-dispatch RR (ratio of norms, dispatch/migratory)",
        &["m", "speed", "k", "cyclic", "least-work", "random"],
    );
    let rules = [
        DispatchRule::Cyclic,
        DispatchRule::LeastWork,
        DispatchRule::Random { seed: 1400 },
    ];

    let mut combos: Vec<(usize, f64, u32)> = Vec::new();
    for m in [2usize, 8] {
        for speed in [1.0, 2.2] {
            for k in [1u32, 2] {
                combos.push((m, speed, k));
            }
        }
    }
    let rows: Vec<_> = combos
        .par_iter()
        .map(|&(m, speed, k)| {
            let trace = integral_poisson(
                effort.n() * m,
                0.9,
                m,
                SizeDist::Pareto {
                    alpha: 1.8,
                    min: 2.0,
                },
                1400,
            );
            let kf = f64::from(k);
            let mut rr = Policy::Rr.make();
            let migratory = simulate(
                &trace,
                rr.as_mut(),
                MachineConfig::with_speed(m, speed),
                SimOptions::default(),
            )
            .unwrap()
            .flow_norm(kf);
            let ratios: Vec<f64> = rules
                .iter()
                .map(|&rule| {
                    let out = simulate_dispatch(&trace, rule, Policy::Rr, m, speed).unwrap();
                    out.schedule.flow_norm(kf) / migratory
                })
                .collect();
            (m, speed, k, ratios)
        })
        .collect();
    for (m, speed, k, ratios) in rows {
        table.push_row(vec![
            m.to_string(),
            fnum(speed),
            k.to_string(),
            fnum(ratios[0]),
            fnum(ratios[1]),
            fnum(ratios[2]),
        ]);
    }
    table.note("Each dispatched machine runs its own single-machine RR; ratios > 1 are the price of giving up migration under the given routing rule.");
    table.note("Expected: least-work ~ 1.0-1.3x (the [2] message); cyclic/random worse on heavy tails at k=2; all gaps shrink with speed.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_least_work_is_close_and_best() {
        let t = &e14(&RunCtx::quick())[0];
        for row in &t.rows {
            let cyclic: f64 = row[3].parse().unwrap();
            let least: f64 = row[4].parse().unwrap();
            let random: f64 = row[5].parse().unwrap();
            // Dispatch can even beat fractional RR slightly (dedicated
            // machines avoid dilution), but should stay in a sane band.
            for r in [cyclic, least, random] {
                assert!(r > 0.3 && r < 20.0, "{row:?}");
            }
            // Least-work is never the worst rule by a large margin.
            assert!(least <= cyclic.max(random) * 1.5 + 1e-9, "{row:?}");
        }
    }
}

//! **E3 — RR below the 3/2 speed threshold for ℓ2.**
//!
//! Claim (paper, Section 1.1, citing \[4\]): RR given only `(1+ε)`-speed
//! has competitive ratio growing with `n` for the ℓ2 norm; "RR is not
//! O(1)-competitive with speed less than 3/2 for the ℓ2-norm objective."
//!
//! Measurement: the geometric-burst family (all size classes released at
//! once — the natural single-busy-period approximation of \[4\]'s
//! recursive construction, whose full nesting that paper does not spell
//! out here) at growing depth, RR at speeds {1.0, 1.2, 1.4} vs the best
//! clairvoyant baseline, with speed 4.4 as the Theorem-1 control.
//!
//! Expected shape: at speeds below ~3/2 the ratio exceeds 1 and *grows*
//! with depth; at 4.4 RR lands far below 1 (it simply has 4.4× the
//! capacity). The unbounded asymptotic growth of \[4\] requires nesting
//! bursts recursively in time; the finite-depth trend here is its
//! measurable shadow.

use super::{Effort, RunCtx};
use crate::ratio::{best_baseline_power, default_baselines, policy_power_sum};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;
use tf_workload::adversarial::geometric_burst;

/// Run E3.
pub fn e3(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let k = 2u32;
    let speeds = [1.0, 1.2, 1.4, 4.4];
    let levels: Vec<u32> = match effort {
        Effort::Quick => vec![1, 3, 5],
        Effort::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
    };
    let mut table = Table::new(
        "E3: RR l2 ratio (vs best baseline) on the geometric burst, by depth and speed",
        &["levels", "n", "s=1.0", "s=1.2", "s=1.4", "s=4.4 (control)"],
    );
    let baselines = default_baselines();

    let rows: Vec<_> = levels
        .par_iter()
        .map(|&lv| {
            let t = geometric_burst(lv, 2);
            let (best, _) = best_baseline_power(&t, 1, k, &baselines);
            let ratios: Vec<f64> = speeds
                .iter()
                .map(|&s| (policy_power_sum(&t, Policy::Rr, 1, s, k) / best).sqrt())
                .collect();
            (lv, t.len(), ratios)
        })
        .collect();

    for (lv, n, ratios) in rows {
        table.push_row(vec![
            lv.to_string(),
            n.to_string(),
            fnum(ratios[0]),
            fnum(ratios[1]),
            fnum(ratios[2]),
            fnum(ratios[3]),
        ]);
    }
    table.note("Burst: 2^l jobs of size 2^(levels-l) per class, all at t=0; RR time-shares across every scale while SRPT clears smallest-first.");
    table.note("Expected: below-3/2 columns sit above 1 and increase with depth; the 4.4 control sits well below 1. [4]'s unbounded asymptotics need its recursive nesting, not reproduced here (construction not given in this paper).");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_low_speed_grows_and_control_stays_small() {
        let t = &e3(&RunCtx::quick())[0];
        let col = |r: &Vec<String>, i: usize| -> f64 { r[i].parse().unwrap() };
        let first = &t.rows[0];
        let last = &t.rows[t.rows.len() - 1];
        // Speed-1 ratio grows with burst depth and exceeds 1.
        assert!(col(last, 2) > col(first, 2) + 0.05, "no growth at speed 1");
        assert!(col(last, 2) > 1.2);
        // Speed 1.2 also above 1 at depth (below the 3/2 threshold).
        assert!(col(last, 3) > 1.0);
        // The 4.4-speed control is far below 1 everywhere.
        for row in &t.rows {
            assert!(col(row, 5) < 1.0, "{row:?}");
        }
    }
}

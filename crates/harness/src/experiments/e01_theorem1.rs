//! **E1 — Theorem 1 headline.**
//!
//! Claim: RR is `2k(1+10ε)`-speed `O(k/ε)`-competitive for the ℓk-norm of
//! flow time, on multiple identical machines.
//!
//! Measurement: run RR at exactly the prescribed speed `η = 2k(1+10ε)`
//! (ε = 0.1 ⇒ η = 4k) for k ∈ {1,2,3} and m ∈ {1,4} over the randomized
//! corpus; report the bracketed empirical ratio next to the theorem's
//! bound `(4γ/(3ε))^{1/k}`. Expected shape: measured ratios are small
//! constants, comfortably below the (loose) theoretical bound, and do not
//! grow with k beyond the theory's `O(k)` scaling.

use super::RunCtx;
use crate::corpus::random_corpus;
use crate::ratio::{default_baselines, empirical_ratios, RatioTask};
use crate::table::{fnum, stats_cells, Table};
use tf_core::{eta, gamma};
use tf_policies::Policy;

/// Run E1.
pub fn e1(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let eps = 0.1;
    let mut table = Table::new(
        "E1: RR at the prescribed speed 2k(1+10eps), eps=0.1 (Theorem 1)",
        &[
            "k",
            "m",
            "speed",
            "instance",
            "ratio>=",
            "ratio<=",
            "theory bound",
            "steps",
            "peak alive",
            "alloc ms",
            "lb src",
        ],
    );
    let baselines = default_baselines();

    // Flatten the whole (k, m, instance) grid into one fan-out: on many
    // cores every lower-bound solve runs concurrently instead of only
    // the 4 instances inside one (k, m) cell. Order-preserving collect
    // keeps rows in the serial (k, m, instance) order.
    let mut meta: Vec<(u32, usize, String)> = Vec::new();
    let mut tasks: Vec<RatioTask> = Vec::new();
    for k in [1u32, 2, 3] {
        for m in [1usize, 4] {
            let corpus = random_corpus(effort.n(), 0.9, m, 100 + u64::from(k));
            let speed = eta(k, eps);
            for inst in corpus {
                meta.push((k, m, inst.name.clone()));
                tasks.push(RatioTask {
                    trace: inst.trace,
                    policy: Policy::Rr,
                    m,
                    speed,
                    k,
                });
            }
        }
    }
    let results = empirical_ratios(&tasks, &baselines);
    for ((k, m, name), r) in meta.into_iter().zip(results) {
        let bound = (4.0 * gamma(k, 0.1) / (3.0 * 0.1)).powf(1.0 / f64::from(k));
        let mut row = vec![
            k.to_string(),
            m.to_string(),
            fnum(eta(k, eps)),
            name,
            fnum(r.ratio_vs_best),
            fnum(r.ratio_vs_lb),
            fnum(bound),
        ];
        row.extend(stats_cells(&r.stats));
        row.push(r.lb_provenance);
        table.push_row(row);
    }
    table.note("ratio>= is vs the best speed-1 baseline (lower estimate); ratio<= is vs the certified LP lower bound (upper estimate). The true competitive ratio on each instance lies between them.");
    table.note("theory bound = (4*gamma/(3*eps))^(1/k), gamma = k(k/eps)^(k-1) — the constant Theorem 1 actually proves.");
    table.note(
        "steps/peak alive/alloc ms are engine counters from the evaluated RR run (SimStats).",
    );
    table.note("lb src names the bound behind ratio<=: lp/2, size, or srpt-m; '(degraded)' marks a budget-exceeded LP solve that fell back to a closed-form bound (campaign --task-timeout).");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_ratios_are_modest_and_below_theory() {
        let tables = e1(&RunCtx::quick());
        let t = &tables[0];
        assert_eq!(t.rows.len(), 3 * 2 * 4); // k × m × corpus
        for row in &t.rows {
            let lo: f64 = row[4].parse().unwrap();
            let hi: f64 = row[5].parse().unwrap();
            let bound: f64 = row[6].parse().unwrap();
            assert!(lo <= hi + 1e-6, "bracket inverted: {row:?}");
            // At 4k-speed RR must beat speed-1 baselines comfortably.
            assert!(lo <= 2.0, "unexpectedly large lower ratio: {row:?}");
            assert!(hi <= bound, "measured exceeded theory: {row:?}");
            // Unbudgeted runs never degrade; the provenance column names
            // the winning bound.
            let src = row.last().unwrap().as_str();
            assert!(
                ["lp/2", "size", "srpt-m"].contains(&src),
                "unexpected lb src: {row:?}"
            );
        }
    }
}

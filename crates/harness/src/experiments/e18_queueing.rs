//! **E18 — queueing-theory cross-validation of the simulator.**
//!
//! RR on one machine *is* M/G/1 processor sharing, whose steady-state mean
//! flow has the textbook closed form `E[S]/(1−ρ)` (insensitive to the
//! size distribution); FCFS obeys Pollaczek–Khinchine. Neither formula
//! knows anything about our engine, so agreement is an independent
//! end-to-end correctness check of the whole pipeline (arrival generation,
//! event-driven integration, completion accounting) — and a guard against
//! the subtle drift bugs discrete-event simulators are famous for.
//!
//! Measurement: long Poisson runs (warmed up, truncated) at ρ ∈
//! {0.5, 0.7, 0.8} with exponential and uniform sizes; simulated mean flow
//! vs theory for RR (= PS) and FCFS, plus PS's uniform conditional
//! slowdown `E[T(x)]/x = 1/(1−ρ)` measured on small vs large jobs.
//! Expected shape: all simulated/theory ratios within a few percent
//! (finite-run noise), including the distribution-insensitivity of PS and
//! the E[S²] sensitivity of FCFS.

use super::{Effort, RunCtx};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_metrics::{mg1_fcfs_mean_flow, mg1_ps_mean_flow};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};
use tf_workload::{ArrivalProcess, SizeDist, WorkloadSpec};

/// Simulate and return mean flow over the "steady" middle of the run
/// (drop the first and last 20% of jobs by arrival order to trim warmup
/// and drain effects).
fn steady_mean_flow(trace: &Trace, policy: Policy) -> f64 {
    let mut alloc = policy.make();
    let s = simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::new(1),
        SimOptions::default(),
    )
    .expect("valid policy run");
    let n = trace.len();
    let lo = n / 5;
    let hi = n - n / 5;
    s.flow[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
}

/// Run E18.
pub fn e18(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let n = match effort {
        Effort::Quick => 20_000,
        Effort::Full => 120_000,
    };
    let mut table = Table::new(
        "E18: simulator vs closed-form M/G/1 queueing theory (m=1)",
        &[
            "sizes",
            "rho",
            "RR sim",
            "PS theory",
            "RR/theory",
            "FCFS sim",
            "FCFS theory",
            "FCFS/theory",
        ],
    );

    let mut combos: Vec<(SizeDist, f64, f64)> = Vec::new(); // dist, E[S^2], rho
    for &rho in &[0.5, 0.7, 0.8] {
        // Exponential mean 1: E[S²] = 2.
        combos.push((SizeDist::Exponential { mean: 1.0 }, 2.0, rho));
        // Uniform [0.5, 1.5]: mean 1, E[S²] = var + mean² = 1/12 + 1.
        combos.push((
            SizeDist::Uniform { lo: 0.5, hi: 1.5 },
            1.0 / 12.0 + 1.0,
            rho,
        ));
    }

    let seeds: u64 = 5;
    let rows: Vec<_> = combos
        .par_iter()
        .map(|&(dist, s2, rho)| {
            let lambda = rho / dist.mean();
            // Average several independent runs: the mean-sojourn estimator
            // at rho = 0.8 has long regeneration cycles, so one run of n
            // jobs is still noisy at the few-percent level.
            let (mut rr, mut fcfs) = (0.0, 0.0);
            for seed in 0..seeds {
                let spec = WorkloadSpec {
                    n,
                    arrivals: ArrivalProcess::Poisson { rate: lambda },
                    sizes: dist,
                    seed: 1800 + (rho * 10.0) as u64 + 131 * seed,
                };
                let trace = spec.generate();
                rr += steady_mean_flow(&trace, Policy::Rr);
                fcfs += steady_mean_flow(&trace, Policy::Fcfs);
            }
            rr /= seeds as f64;
            fcfs /= seeds as f64;
            let ps_theory = mg1_ps_mean_flow(lambda, dist.mean());
            let fcfs_theory = mg1_fcfs_mean_flow(lambda, dist.mean(), s2);
            (dist.label(), rho, rr, ps_theory, fcfs, fcfs_theory)
        })
        .collect();
    for (label, rho, rr, pst, fcfs, ft) in rows {
        table.push_row(vec![
            label,
            fnum(rho),
            fnum(rr),
            fnum(pst),
            fnum(rr / pst),
            fnum(fcfs),
            fnum(ft),
            fnum(fcfs / ft),
        ]);
    }
    table.note("RR on one machine is M/G/1-PS: mean flow E[S]/(1-rho), insensitive to the size distribution. FCFS follows Pollaczek-Khinchine and feels E[S^2].");
    table.note("First/last 20% of jobs trimmed (warmup/drain). Agreement within a few percent certifies the event-driven engine end to end against results it knows nothing about.");

    // ---- E18b: PS's uniform conditional slowdown ---------------------------
    // For M/G/1-PS, E[T(x)]/x = 1/(1-rho) for EVERY size x — proportional
    // fairness in closed form. SRPT, by contrast, buys its mean by giving
    // small jobs slowdown near 1 and charging the large ones.
    let mut slow = Table::new(
        "E18b: conditional slowdown by size quartile (exp sizes, rho=0.7)",
        &[
            "policy",
            "q1 (small)",
            "q2",
            "q3",
            "q4 (large)",
            "PS theory",
        ],
    );
    let rho = 0.7;
    let dist = SizeDist::Exponential { mean: 1.0 };
    let spec = WorkloadSpec {
        n,
        arrivals: ArrivalProcess::Poisson { rate: rho },
        sizes: dist,
        seed: 1899,
    };
    let trace = spec.generate();
    let lo = n / 5;
    let hi = n - n / 5;
    // Quartile thresholds over the steady window, by size.
    let mut sizes: Vec<f64> = trace.jobs()[lo..hi].iter().map(|j| j.size).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| sizes[((sizes.len() - 1) as f64 * f) as usize];
    let cuts = [q(0.25), q(0.5), q(0.75)];
    for policy in [Policy::Rr, Policy::Srpt] {
        let mut alloc = policy.make();
        let s = simulate(
            &trace,
            alloc.as_mut(),
            MachineConfig::new(1),
            SimOptions::default(),
        )
        .expect("valid policy run");
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for j in &trace.jobs()[lo..hi] {
            let bin = cuts.iter().filter(|&&c| j.size > c).count();
            sums[bin] += s.flow[j.id as usize] / j.size;
            counts[bin] += 1;
        }
        let mut row = vec![policy.to_string()];
        for b in 0..4 {
            row.push(fnum(sums[b] / counts[b] as f64));
        }
        row.push(fnum(1.0 / (1.0 - rho)));
        slow.push_row(row);
    }
    slow.note("PS theory: E[T(x)]/x = 1/(1-rho) uniformly in x. Expected: RR's quartiles all near 3.33; SRPT's small-job quartiles near 1 with the cost loaded onto q4 — the fairness contrast in queueing-theory form.");
    vec![table, slow]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_simulator_matches_theory() {
        let t = &e18(&RunCtx::quick())[0];
        for row in &t.rows {
            let rho: f64 = row[1].parse().unwrap();
            let rr_ratio: f64 = row[4].parse().unwrap();
            let fcfs_ratio: f64 = row[7].parse().unwrap();
            // Estimator noise grows sharply with rho; tolerances sized for
            // 5 x 20k-job runs.
            let tol = if rho > 0.75 { 0.10 } else { 0.05 };
            assert!((rr_ratio - 1.0).abs() < tol, "PS deviation: {row:?}");
            assert!((fcfs_ratio - 1.0).abs() < tol, "FCFS deviation: {row:?}");
        }
        // Insensitivity: PS theory identical across distributions at the
        // same rho; FCFS theory differs (E[S^2] term). Spot-check at 0.8.
        let exp = t
            .rows
            .iter()
            .find(|r| r[0].contains("exp") && r[1] == "0.8000")
            .unwrap();
        let unif = t
            .rows
            .iter()
            .find(|r| r[0].contains("unif") && r[1] == "0.8000")
            .unwrap();
        let exp_ps: f64 = exp[3].parse().unwrap();
        let unif_ps: f64 = unif[3].parse().unwrap();
        assert!((exp_ps - unif_ps).abs() < 1e-9);
        let exp_fcfs: f64 = exp[6].parse().unwrap();
        let unif_fcfs: f64 = unif[6].parse().unwrap();
        assert!(exp_fcfs > unif_fcfs);
    }

    #[test]
    fn e18b_slowdown_uniform_under_rr_skewed_under_srpt() {
        let tables = e18(&RunCtx::quick());
        let slow = &tables[1];
        let row = |name: &str| slow.rows.iter().find(|r| r[0] == name).unwrap();
        let rr: Vec<f64> = (1..=4).map(|c| row("RR")[c].parse().unwrap()).collect();
        let srpt: Vec<f64> = (1..=4).map(|c| row("SRPT")[c].parse().unwrap()).collect();
        let theory = 1.0 / (1.0 - 0.7);
        // RR: every quartile within 15% of 1/(1-rho).
        for (i, v) in rr.iter().enumerate() {
            assert!((v / theory - 1.0).abs() < 0.15, "RR q{}: {v}", i + 1);
        }
        // SRPT: small jobs near slowdown 1, large jobs clearly above small.
        assert!(srpt[0] < 1.5, "SRPT q1 {}", srpt[0]);
        assert!(srpt[3] > 1.5 * srpt[0], "SRPT not skewed: {srpt:?}");
    }
}

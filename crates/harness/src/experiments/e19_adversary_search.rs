//! **E19 — mined worst cases: how bad can RR certifiably get?**
//!
//! The cited lower bounds (\[4\]) are hand-crafted; on small integral
//! instances we can instead *search*: hill-climb over traces maximizing
//! RR's **certified true ratio** (exact slotted OPT in the denominator —
//! no brackets). This probes the worst-case landscape directly: the mined
//! ratios floor what any hand construction of the same size achieves, and
//! their decay with speed retraces the augmentation story of E4 with
//! exact numbers.
//!
//! Expected shape: at speed 1 the miner comfortably beats the burst
//! family's ratio at comparable size; mined ratios decay with speed and
//! drop below 1 well before 4+ε — while never contradicting Theorem 1's
//! guarantee at the prescribed speed.

use super::{Effort, RunCtx};
use crate::hunt::{hunt, HuntConfig};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;

/// Run E19.
pub fn e19(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    // Quick also shrinks the instance space: the exact-OPT denominator is
    // exponential in instance size, and hill climbing walks toward larger
    // instances.
    let (steps, restarts, max_jobs, max_size, max_arrival) = match effort {
        Effort::Quick => (100usize, 2usize, 6usize, 4u16, 8u16),
        Effort::Full => (200, 4, 7, 4, 9),
    };
    let mut table = Table::new(
        "E19: adversary-mined worst instances for RR (certified true ratios, m=1, k=2)",
        &[
            "speed",
            "worst ratio",
            "n",
            "instance (arrival:size)",
            "evaluated",
        ],
    );
    let speeds = [1.0, 1.25, 1.5, 2.0, 3.0];
    let rows: Vec<_> = speeds
        .par_iter()
        .map(|&speed| {
            let cfg = HuntConfig {
                speed,
                steps,
                restarts,
                max_jobs,
                max_size,
                max_arrival,
                ..Default::default()
            };
            let res = hunt(Policy::Rr, &cfg);
            let desc: Vec<String> = res
                .trace
                .jobs()
                .iter()
                .map(|j| format!("{}:{}", j.arrival, j.size))
                .collect();
            (
                speed,
                res.ratio,
                res.trace.len(),
                desc.join(" "),
                res.evaluated,
            )
        })
        .collect();
    for (speed, ratio, n, desc, evaluated) in rows {
        table.push_row(vec![
            fnum(speed),
            fnum(ratio),
            n.to_string(),
            desc,
            evaluated.to_string(),
        ]);
    }
    table.note(format!("Hill-climbing over integral traces (<= {max_jobs} jobs, sizes <= {max_size}); ratios are exact (tf-lowerbound::exact in the denominator), so each row is a certified lower bound on RR's worst case at that speed for this instance size."));
    table.note("Expected: well above 1 at speed 1 (beating the hand-crafted burst at comparable n), decaying with speed, below 1 before 4+eps.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_mined_ratios_decay_with_speed() {
        let t = &e19(&RunCtx::quick())[0];
        let ratio = |r: usize| -> f64 { t.rows[r][1].parse().unwrap() };
        assert!(ratio(0) > 1.2, "speed-1 mining too weak: {}", ratio(0));
        // Decay (allow small search noise between adjacent speeds).
        assert!(ratio(t.rows.len() - 1) < ratio(0));
        assert!(ratio(t.rows.len() - 1) < 1.0);
    }
}

//! **E6 — SRPT/SJF/SETF are scalable ((1+ε)-speed O(1)) for ℓk.**
//!
//! Claim (paper, Related Work, citing \[4, 14, 27\]): SRPT, SJF and SETF
//! are `(1+ε)`-speed O(1)-competitive for ℓk-norms of flow time; SRPT and
//! SJF remain so on multiple machines.
//!
//! Measurement: each policy at speed 1.1 for k ∈ {1, 2, 3} and m ∈ {1, 4};
//! worst ratio (vs best baseline) over the random corpus. Expected shape:
//! constants close to 1 — dramatically less speed than RR's 2k(1+10ε),
//! which is the price RR pays for instantaneous fairness.

use super::RunCtx;
use crate::corpus::random_corpus;
use crate::ratio::{default_baselines, empirical_ratio};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;

/// Run E6.
pub fn e6(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let speed = 1.1;
    let policies = [Policy::Srpt, Policy::Sjf, Policy::Setf];
    let mut table = Table::new(
        "E6: clairvoyant & elapsed-time baselines at (1+eps)-speed, eps=0.1",
        &["policy", "k", "m", "worst ratio>=", "worst ratio<="],
    );
    let baselines = default_baselines();

    let mut jobs: Vec<(Policy, u32, usize)> = Vec::new();
    for p in policies {
        for k in [1u32, 2, 3] {
            for m in [1usize, 4] {
                jobs.push((p, k, m));
            }
        }
    }
    let rows: Vec<_> = jobs
        .par_iter()
        .map(|&(p, k, m)| {
            let corpus = random_corpus(effort.n(), 0.9, m, 600 + u64::from(k));
            let mut lo: f64 = 0.0;
            let mut hi: f64 = 0.0;
            for inst in &corpus {
                let r = empirical_ratio(&inst.trace, p, m, speed, k, &baselines);
                lo = lo.max(r.ratio_vs_best);
                hi = hi.max(r.ratio_vs_lb);
            }
            (p, k, m, lo, hi)
        })
        .collect();
    for (p, k, m, lo, hi) in rows {
        table.push_row(vec![
            p.to_string(),
            k.to_string(),
            m.to_string(),
            fnum(lo),
            fnum(hi),
        ]);
    }
    table.note("SETF's multi-machine guarantee is only known for its fractional variant [5] — which is what tf-policies implements.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_baselines_are_nearly_optimal_at_tiny_augmentation() {
        let t = &e6(&RunCtx::quick())[0];
        assert_eq!(t.rows.len(), 3 * 3 * 2);
        for row in &t.rows {
            let lo: f64 = row[3].parse().unwrap();
            // vs the best baseline (which includes themselves at speed 1),
            // a 1.1-speed run is never much above 1... SETF can be worse on
            // heavy tails; keep a generous constant.
            assert!(lo < 4.0, "{row:?}");
        }
    }
}

//! The `stream` experiment family: RR vs SRPT on *open* workloads driven
//! through the bounded-memory streaming engine.
//!
//! Unlike E1–E20, which materialise a [`tf_workload`] trace and call
//! [`tf_simcore::simulate`], this family pulls jobs one at a time from an
//! [`OpenWorkload`] generator and retires each job the moment it
//! completes, so a 10⁷-job run holds only the alive set (≈ ρ/(1−ρ) jobs
//! in expectation) plus O(1) accumulator state. Flow-time statistics come
//! from the mergeable one-pass accumulators in [`tf_metrics::streaming`]
//! — the run also exercises their `merge` path by accumulating into a
//! per-chunk sketch and folding it into the run total every
//! [`StreamParams::chunk`] completions, the way a sharded collector
//! would.
//!
//! The family is dispatched by name (`experiments stream`) rather than
//! living in the e1–e20 registry: at its default scale (10⁷ jobs) it is a
//! throughput/memory benchmark, not a tables-only experiment, and `all`
//! runs should not pay for it implicitly. Besides the tables it writes
//! `BENCH_4.json` at the repo root recording jobs/sec, peak RSS
//! (`VmHWM`), and the streamed ℓ₂ for each run — the record the CI
//! stream-smoke job asserts against.
//!
//! Scale can be overridden without recompiling via `TF_STREAM_N` and
//! `TF_STREAM_RHO` (comma-separated lists), which CI uses to keep the
//! smoke run short.

use std::io::Write as _;
use std::time::Instant;

use crate::table::{fnum, Table};
use crate::RunCtx;
use tf_metrics::{FlowStats, StreamingFlowStats, StreamingNorm};
use tf_policies::Policy;
use tf_simcore::{simulate_stream, MachineConfig, StreamOptions};
use tf_workload::{OpenWorkload, SizeDist, StreamBound};

/// Scale knobs for one `stream` family run.
#[derive(Debug, Clone)]
pub struct StreamParams {
    /// Job counts, run in ascending order so the RSS high-water mark of a
    /// smaller run bounds that of a larger one from below.
    pub ns: Vec<u64>,
    /// Target utilizations ρ = λ·E\[p\]/m.
    pub rhos: Vec<f64>,
    /// Policies to compare (default: RR vs the clairvoyant SRPT yardstick).
    pub policies: Vec<Policy>,
    /// Base RNG seed (per-run seeds derive from it, so every (n, ρ) cell
    /// sees a different arrival sequence but reruns reproduce exactly).
    pub seed: u64,
    /// Completions per accumulator chunk before folding into the run
    /// total (exercises the streaming `merge` path on the hot loop).
    pub chunk: u64,
    /// Whether to write `BENCH_4.json` (the CLI does; unit tests don't).
    pub write_bench: bool,
}

impl StreamParams {
    /// Paper-scale defaults for the given effort, with `TF_STREAM_N` /
    /// `TF_STREAM_RHO` environment overrides applied.
    pub fn for_effort(effort: crate::Effort) -> Self {
        let mut p = StreamParams {
            ns: vec![1_000_000, 10_000_000],
            rhos: match effort {
                crate::Effort::Quick => vec![0.9],
                crate::Effort::Full => vec![0.7, 0.9, 0.99],
            },
            policies: vec![Policy::Rr, Policy::Srpt],
            seed: 0x2015_5AA0,
            chunk: 65_536,
            write_bench: false,
        };
        if let Some(ns) = env_list("TF_STREAM_N") {
            p.ns = ns.iter().map(|x| *x as u64).collect();
            p.ns.sort_unstable();
        }
        if let Some(rhos) = env_list("TF_STREAM_RHO") {
            p.rhos = rhos;
        }
        p
    }
}

/// Parse a comma-separated numeric list from the environment; `None` when
/// unset, empty, or any element fails to parse (a typo should fall back
/// to the defaults loudly rather than run a truncated sweep).
fn env_list(var: &str) -> Option<Vec<f64>> {
    let raw = std::env::var(var).ok()?;
    let vals: Vec<f64> = raw
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .ok()?;
    if vals.is_empty() || vals.iter().any(|v| !v.is_finite() || *v <= 0.0) {
        eprintln!("ignoring {var}={raw:?}: not a list of positive numbers");
        return None;
    }
    Some(vals)
}

/// One (n, ρ, policy) cell of the sweep.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Jobs streamed.
    pub n: u64,
    /// Target utilization.
    pub rho: f64,
    /// Policy that ran.
    pub policy: Policy,
    /// Flow-time summary from the streaming accumulators.
    pub stats: FlowStats,
    /// Per-job ℓ₂: `(Σ F_j² / n)^{1/2}` from the max-factored sketch.
    pub l2_normalized: f64,
    /// Completions per wall-clock second.
    pub jobs_per_sec: f64,
    /// Engine memory high-water mark (alive jobs).
    pub peak_alive: usize,
    /// Process `VmHWM` in MiB after this run (0 off Linux).
    pub peak_rss_mb: f64,
}

/// Run one cell: stream `n` Poisson(ρ) × Exp(1) jobs through `policy` on
/// a single unit-speed machine, folding flows into chunked accumulators.
fn run_one(n: u64, rho: f64, policy: Policy, params: &StreamParams) -> StreamRun {
    // Mix the cell coordinates into the seed so cells are independent but
    // each is reproducible in isolation.
    let seed = params.seed ^ (n.rotate_left(17)) ^ rho.to_bits();
    let workload = OpenWorkload::poisson(
        rho,
        1,
        SizeDist::Exponential { mean: 1.0 },
        StreamBound::Count(n),
        seed,
    );
    let mut source = workload.stream().expect("stream params are validated");
    let mut alloc = policy.make();
    let opts = StreamOptions {
        // E[p]/speed/64, the materialised engine's default step heuristic,
        // supplied explicitly because a stream cannot know the mean size.
        max_step: alloc.continuous().then_some(1.0 / 64.0),
        ..StreamOptions::default()
    };

    let mut total = StreamingFlowStats::new(128);
    let mut l2 = StreamingNorm::new(2.0);
    let mut chunk_stats = StreamingFlowStats::new(128);
    let mut chunk_l2 = StreamingNorm::new(2.0);
    let chunk = params.chunk.max(1);

    let t0 = Instant::now();
    let report = simulate_stream(
        &mut source,
        alloc.as_mut(),
        MachineConfig::new(1),
        opts,
        &mut |job| {
            chunk_stats.push(job.flow);
            chunk_l2.push(job.flow);
            if chunk_stats.n() >= chunk {
                total.merge(&chunk_stats);
                l2.merge(&chunk_l2);
                chunk_stats = StreamingFlowStats::new(128);
                chunk_l2 = StreamingNorm::new(2.0);
            }
        },
    )
    .expect("open Poisson stream simulates cleanly");
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    total.merge(&chunk_stats);
    l2.merge(&chunk_l2);

    assert_eq!(total.n(), n, "every generated job must complete");
    StreamRun {
        n,
        rho,
        policy,
        stats: total.finish(),
        l2_normalized: l2.normalized_value(),
        jobs_per_sec: report.completed as f64 / secs,
        peak_alive: report.stats.peak_alive,
        peak_rss_mb: vm_hwm_mb(),
    }
}

/// Process peak resident set (`VmHWM`) in MiB; 0 when unavailable.
/// Within one process the high-water mark is monotone, so with runs
/// ordered by ascending n, `hwm(n₂)/hwm(n₁) ≈ 1` is direct evidence the
/// streaming engine's footprint does not grow with n.
fn vm_hwm_mb() -> f64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Ok(kb) = rest.trim().trim_end_matches("kB").trim().parse::<f64>() {
                        return kb / 1024.0;
                    }
                }
            }
        }
    }
    0.0
}

/// The `stream` experiment family entry point used by the dispatcher:
/// paper-scale parameters for the context's effort, plus the
/// `BENCH_4.json` record.
pub fn stream(ctx: &RunCtx) -> Vec<Table> {
    let mut params = StreamParams::for_effort(ctx.effort);
    // Under `cargo test` the dispatcher test runs this entry point at toy
    // scale; don't let it clobber the committed benchmark record.
    params.write_bench = !cfg!(test);
    stream_with(&params)
}

/// Run the sweep at explicit parameters and render the tables. Exposed so
/// tests can run tiny instances without touching `BENCH_4.json`.
pub fn stream_with(params: &StreamParams) -> Vec<Table> {
    let mut runs: Vec<StreamRun> = Vec::new();
    // Ascending n within each (ρ, policy) so the VmHWM flatness reading
    // (see `vm_hwm_mb`) is valid.
    let mut ns = params.ns.clone();
    ns.sort_unstable();
    for &rho in &params.rhos {
        for &policy in &params.policies {
            for &n in &ns {
                runs.push(run_one(n, rho, policy, params));
            }
        }
    }

    let mut main = Table::new(
        "stream: RR vs SRPT on open Poisson×Exp(1) workloads (streaming engine)",
        &[
            "n",
            "rho",
            "policy",
            "l2(F)/n^1/2",
            "mean F",
            "p99 F",
            "max F",
            "jobs/s",
            "peak alive",
            "RSS MB",
        ],
    );
    for r in &runs {
        main.push_row(vec![
            r.n.to_string(),
            format!("{}", r.rho),
            r.policy.to_string(),
            fnum(r.l2_normalized),
            fnum(r.stats.mean),
            fnum(r.stats.p99),
            fnum(r.stats.max),
            fnum(r.jobs_per_sec),
            r.peak_alive.to_string(),
            fnum(r.peak_rss_mb),
        ]);
    }
    main.note("open M/M/1 stream: Poisson arrivals at utilization rho, Exp(1) sizes, one unit-speed machine");
    main.note("per-job flows retired on completion; stats from mergeable streaming accumulators (t-digest p99)");
    main.note(
        "RSS MB is the process VmHWM after the run: flat across n is the bounded-memory claim",
    );

    let mut ratio = Table::new(
        "stream: streamed RR/SRPT l2 ratio",
        &["n", "rho", "RR l2/n^1/2", "SRPT l2/n^1/2", "ratio"],
    );
    for &rho in &params.rhos {
        for &n in &ns {
            let find = |p: Policy| {
                runs.iter()
                    .find(|r| r.n == n && r.rho == rho && r.policy == p)
            };
            if let (Some(rr), Some(srpt)) = (find(Policy::Rr), find(Policy::Srpt)) {
                ratio.push_row(vec![
                    n.to_string(),
                    format!("{rho}"),
                    fnum(rr.l2_normalized),
                    fnum(srpt.l2_normalized),
                    fnum(rr.l2_normalized / srpt.l2_normalized),
                ]);
            }
        }
    }
    ratio.note(
        "empirical streamed analogue of the paper's l2 competitiveness: ratio stays O(1) in n",
    );

    if params.write_bench {
        write_bench4(&runs);
    }

    let mut tables = vec![main];
    if !ratio.rows.is_empty() {
        tables.push(ratio);
    }
    tables
}

/// Write `BENCH_4.json` at the repo root: one record per run plus the
/// per-policy RSS flatness ratio `hwm(n_max)/hwm(n_min)` (1.0 ≡ perfectly
/// flat; the CI smoke job asserts it stays under 1.1).
fn write_bench4(runs: &[StreamRun]) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_4.json");

    let mut out = String::from("{\n  \"stream\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"rho\": {}, \"policy\": {:?}, \"jobs_per_sec\": {:.1}, \"peak_alive\": {}, \"peak_rss_mb\": {:.1}, \"l2_normalized\": {:.4}, \"mean_flow\": {:.4}, \"p99_flow\": {:.4}}}{}\n",
            r.n,
            r.rho,
            r.policy.to_string(),
            r.jobs_per_sec,
            r.peak_alive,
            r.peak_rss_mb,
            r.l2_normalized,
            r.stats.mean,
            r.stats.p99,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"rss_flat_ratio\": {\n");
    let mut lines = Vec::new();
    let mut seen: Vec<(f64, Policy)> = Vec::new();
    for r in runs {
        if seen.iter().any(|(rho, p)| *rho == r.rho && *p == r.policy) {
            continue;
        }
        seen.push((r.rho, r.policy));
        let cell: Vec<&StreamRun> = runs
            .iter()
            .filter(|x| x.rho == r.rho && x.policy == r.policy)
            .collect();
        if cell.len() < 2 {
            continue;
        }
        // Runs execute in ascending n, so first/last bracket the sweep.
        let (lo, hi) = (cell[0], cell[cell.len() - 1]);
        if lo.peak_rss_mb > 0.0 {
            lines.push(format!(
                "    \"{}_rho{}\": {:.4}",
                hi.policy,
                hi.rho,
                hi.peak_rss_mb / lo.peak_rss_mb
            ));
        }
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }\n}\n");

    let mut f = std::fs::File::create(&path).expect("create BENCH_4.json");
    f.write_all(out.as_bytes()).expect("write BENCH_4.json");
    eprintln!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> StreamParams {
        StreamParams {
            ns: vec![500, 2000],
            rhos: vec![0.8],
            policies: vec![Policy::Rr, Policy::Srpt],
            seed: 7,
            chunk: 64,
            write_bench: false,
        }
    }

    #[test]
    fn tiny_sweep_produces_consistent_tables() {
        let tables = stream_with(&tiny_params());
        assert_eq!(tables.len(), 2);
        // 2 ns × 1 rho × 2 policies.
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 2);
        for t in &tables {
            for row in &t.rows {
                assert_eq!(row.len(), t.headers.len(), "ragged row in {}", t.title);
            }
        }
    }

    #[test]
    fn srpt_beats_rr_on_mean_flow() {
        let mut p = tiny_params();
        p.ns = vec![3000];
        let rr = run_one(3000, 0.8, Policy::Rr, &p);
        let srpt = run_one(3000, 0.8, Policy::Srpt, &p);
        // SRPT minimises total (= mean) flow on one machine; with 3000
        // jobs at rho = 0.8 the gap is far outside noise.
        assert!(
            srpt.stats.mean < rr.stats.mean,
            "SRPT mean {} !< RR mean {}",
            srpt.stats.mean,
            rr.stats.mean
        );
        assert!(rr.peak_alive >= 1 && rr.stats.n == 3000);
    }

    #[test]
    fn chunked_merge_matches_single_chunk() {
        // Same cell accumulated with chunk=32 and chunk=u64::MAX must
        // agree: merging is lossless for moments/norms.
        let mut a = tiny_params();
        a.chunk = 32;
        let mut b = tiny_params();
        b.chunk = u64::MAX;
        let ra = run_one(1000, 0.8, Policy::Rr, &a);
        let rb = run_one(1000, 0.8, Policy::Rr, &b);
        assert_eq!(ra.stats.n, rb.stats.n);
        assert!((ra.stats.mean - rb.stats.mean).abs() <= 1e-9 * rb.stats.mean);
        assert!((ra.l2_normalized - rb.l2_normalized).abs() <= 1e-9 * rb.l2_normalized);
        assert_eq!(ra.stats.max.to_bits(), rb.stats.max.to_bits());
    }

    #[test]
    fn seeds_make_cells_reproducible() {
        let p = tiny_params();
        let r1 = run_one(800, 0.8, Policy::Rr, &p);
        let r2 = run_one(800, 0.8, Policy::Rr, &p);
        assert_eq!(r1.stats.mean.to_bits(), r2.stats.mean.to_bits());
        assert_eq!(r1.l2_normalized.to_bits(), r2.l2_normalized.to_bits());
    }

    #[test]
    fn env_list_parses_and_rejects() {
        std::env::set_var("TF_STREAM_TEST_LIST", "1000, 2000");
        assert_eq!(env_list("TF_STREAM_TEST_LIST"), Some(vec![1000.0, 2000.0]));
        std::env::set_var("TF_STREAM_TEST_LIST", "12,bogus");
        assert_eq!(env_list("TF_STREAM_TEST_LIST"), None);
        std::env::set_var("TF_STREAM_TEST_LIST", "-3");
        assert_eq!(env_list("TF_STREAM_TEST_LIST"), None);
        std::env::remove_var("TF_STREAM_TEST_LIST");
        assert_eq!(env_list("TF_STREAM_TEST_LIST"), None);
    }
}

//! **E11 — quality of the LP relaxation (Section 3.1).**
//!
//! Claim (paper, Section 3.1): "the above LP lower bounds the optimal flow
//! time of a feasible schedule within factor 2γ" — with the γ scaling
//! stripped, `LP/2 ≤ OPTᵏ`.
//!
//! Measurement: where OPT is *exactly* computable (m = 1, k = 1 via SRPT),
//! report LP/2 as a fraction of OPT — how much of the factor-2 slack is
//! real. For k = 2, report the bracket width `(best/LB)^{1/2}` that all
//! ratio experiments inherit. Expected shape: LP/2 recovers a large
//! fraction of OPT (well above the worst-case 1/2); bracket widths are
//! small constants.

use super::RunCtx;
use crate::corpus::random_corpus;
use crate::lbcache::cached_lk_lower_bound;
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_lowerbound::lp_relaxation_value;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

/// Run E11.
pub fn e11(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let corpus = random_corpus(effort.n(), 0.9, 1, 1100);

    let mut exact = Table::new(
        "E11a: LP/2 vs the exact l1 optimum (m=1, k=1)",
        &[
            "instance",
            "LP/2",
            "OPT (SRPT)",
            "LP/2 over OPT",
            "raw LP over OPT",
        ],
    );
    let rows: Vec<_> = corpus
        .par_iter()
        .map(|inst| {
            let lp = lp_relaxation_value(&inst.trace, 1, 1);
            let mut srpt = Policy::Srpt.make();
            let opt = simulate(
                &inst.trace,
                srpt.as_mut(),
                MachineConfig::new(1),
                SimOptions::default(),
            )
            .unwrap()
            .total_flow();
            (inst.name.clone(), lp.objective, opt)
        })
        .collect();
    for (name, lp, opt) in rows {
        exact.push_row(vec![
            name,
            fnum(lp / 2.0),
            fnum(opt),
            fnum(lp / 2.0 / opt),
            fnum(lp / opt),
        ]);
    }
    exact.note("'raw LP over OPT' <= 2 is the paper's Section 3.1 claim; values near 2 mean the relaxation is nearly tight before halving.");

    let mut bracket = Table::new(
        "E11b: ratio-bracket width for l2 (m in {1,4})",
        &["m", "instance", "LB^(1/2)", "best^(1/2)", "bracket width"],
    );
    // One fan-out over the full (m, instance) grid instead of a serial
    // m loop of small parallel batches; order-preserving collect keeps
    // the row order.
    let mut work: Vec<(usize, String, Trace)> = Vec::new();
    for m in [1usize, 4] {
        let corpus = random_corpus(effort.n(), 0.9, m, 1150);
        for inst in corpus {
            work.push((m, inst.name, inst.trace));
        }
    }
    let rows: Vec<_> = work
        .par_iter()
        .map(|(m, name, trace)| {
            let lb = cached_lk_lower_bound(trace, *m, 2);
            let best = [Policy::Srpt, Policy::Sjf, Policy::Setf, Policy::Rr]
                .iter()
                .map(|p| {
                    let mut a = p.make();
                    simulate(
                        trace,
                        a.as_mut(),
                        MachineConfig::new(*m),
                        SimOptions::default(),
                    )
                    .unwrap()
                    .flow_power_sum(2.0)
                })
                .fold(f64::INFINITY, f64::min);
            (*m, name.clone(), lb.value.sqrt(), best.sqrt())
        })
        .collect();
    for (m, name, lb, best) in rows {
        bracket.push_row(vec![
            m.to_string(),
            name,
            fnum(lb),
            fnum(best),
            fnum(best / lb),
        ]);
    }
    bracket.note("bracket width = best-baseline norm / LB norm; every reported ratio interval in E1-E6 has at most this multiplicative uncertainty.");

    // ---- E11c: closing the bracket exactly on tiny instances --------------
    let mut tiny = Table::new(
        "E11c: tiny instances — LP/2 vs exact slotted OPT vs best policy (m=1, k=2)",
        &[
            "instance",
            "LP/2",
            "exact OPT",
            "best policy",
            "LP/2 over exact",
            "RR@4.4 true ratio",
        ],
    );
    let tiny_instances: Vec<(&str, Vec<(f64, f64)>)> = vec![
        (
            "two-scales",
            vec![(0.0, 1.0), (0.0, 4.0), (1.0, 1.0), (2.0, 2.0)],
        ),
        ("batch", vec![(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]),
        (
            "staggered",
            vec![(0.0, 3.0), (1.0, 1.0), (2.0, 3.0), (4.0, 1.0), (4.0, 1.0)],
        ),
        (
            "bursty-mix",
            vec![(0.0, 4.0), (0.0, 1.0), (3.0, 1.0), (3.0, 1.0), (6.0, 2.0)],
        ),
    ];
    use tf_lowerbound::{exact_slotted_opt, ExactLimits};
    for (name, pairs) in tiny_instances {
        let t = Trace::from_pairs(pairs).unwrap();
        let lp = lp_relaxation_value(&t, 1, 2).objective / 2.0;
        let ex = exact_slotted_opt(&t, 1, 2, ExactLimits::default())
            .expect("tiny instance within state budget")
            .power_sum;
        let best = [Policy::Srpt, Policy::Sjf, Policy::Setf, Policy::Rr]
            .iter()
            .map(|p| {
                let mut a = p.make();
                simulate(&t, a.as_mut(), MachineConfig::new(1), SimOptions::default())
                    .unwrap()
                    .flow_power_sum(2.0)
            })
            .fold(f64::INFINITY, f64::min);
        let mut rr = Policy::Rr.make();
        let rr_fast = simulate(
            &t,
            rr.as_mut(),
            MachineConfig::with_speed(1, 4.4),
            SimOptions::default(),
        )
        .unwrap()
        .flow_power_sum(2.0);
        tiny.push_row(vec![
            name.to_string(),
            fnum(lp),
            fnum(ex),
            fnum(best),
            fnum(lp / ex),
            fnum((rr_fast / ex).sqrt()),
        ]);
    }
    tiny.note("exact OPT = exhaustive slot-structured optimum (tf-lowerbound::exact); on one machine this is the true optimum for integral instances, so the last column is RR's TRUE l2 competitive ratio at speed 4.4 — no bracket.");
    vec![exact, bracket, tiny]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_lp_is_a_valid_and_decent_bound() {
        let tables = e11(&RunCtx::quick());
        for row in &tables[0].rows {
            let frac: f64 = row[3].parse().unwrap();
            let raw: f64 = row[4].parse().unwrap();
            assert!(frac <= 1.0 + 1e-9, "LP/2 exceeded OPT: {row:?}");
            assert!(raw <= 2.0 + 1e-9, "raw LP exceeded 2*OPT: {row:?}");
            assert!(frac > 0.4, "LP surprisingly weak: {row:?}");
        }
        for row in &tables[1].rows {
            let width: f64 = row[4].parse().unwrap();
            assert!((1.0 - 1e-9..4.0).contains(&width), "{row:?}");
        }
        // E11c: LP/2 ≤ exact ≤ best policy, and the exact search certifies
        // a true sub-1 ratio for 4.4-speed RR on every tiny instance.
        for row in &tables[2].rows {
            let lp: f64 = row[1].parse().unwrap();
            let ex: f64 = row[2].parse().unwrap();
            let best: f64 = row[3].parse().unwrap();
            let true_ratio: f64 = row[5].parse().unwrap();
            assert!(lp <= ex + 1e-9, "{row:?}");
            assert!(ex <= best + 1e-9, "{row:?}");
            assert!(true_ratio < 1.0, "{row:?}");
        }
    }
}

//! **E9 — plain RR vs age-weighted RR for ℓ2.**
//!
//! Claim (paper, Section 1.2): "the weighted variant of RR that
//! distributes machines to jobs in proportion to their ages was shown to
//! be O(1)-speed O(1)-competitive for the ℓ2-norm \[12\] … there was no
//! strong reason to believe RR would perform well" — the paper's
//! contribution is that *plain* RR works too.
//!
//! Measurement: both policies at speeds {2.2, 4.4} for ℓ2 over the random
//! corpus, plus the engine event count (AgedRR's rates vary continuously,
//! so it costs adaptive stepping). Expected shape: comparable bounded
//! ratios — empirical support for the paper's message that obliviousness
//! to ages costs little — with AgedRR slightly ahead on instances
//! dominated by lingering old jobs, at a large simulation-cost premium.

use super::RunCtx;
use crate::corpus::random_corpus;
use crate::ratio::{default_baselines, empirical_ratio};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions};

/// Run E9.
pub fn e9(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let k = 2u32;
    let speeds = [2.2, 4.4];
    let mut table = Table::new(
        "E9: plain RR vs age-weighted RR (AgedRR) for the l2 norm (m=1)",
        &[
            "instance",
            "speed",
            "RR ratio>=",
            "AgedRR ratio>=",
            "RR events",
            "AgedRR events",
        ],
    );
    let baselines = default_baselines();
    let corpus = random_corpus(effort.n(), 0.9, 1, 900);

    let rows: Vec<_> = corpus
        .par_iter()
        .flat_map(|inst| {
            speeds
                .par_iter()
                .map(|&s| {
                    let rr = empirical_ratio(&inst.trace, Policy::Rr, 1, s, k, &baselines);
                    let aged = empirical_ratio(&inst.trace, Policy::AgedRr, 1, s, k, &baselines);
                    let cfg = MachineConfig::with_speed(1, s);
                    let rr_ev = simulate(
                        &inst.trace,
                        Policy::Rr.make().as_mut(),
                        cfg,
                        SimOptions::default(),
                    )
                    .unwrap()
                    .events;
                    let aged_ev = simulate(
                        &inst.trace,
                        Policy::AgedRr.make().as_mut(),
                        cfg,
                        SimOptions::default(),
                    )
                    .unwrap()
                    .events;
                    (
                        inst.name.clone(),
                        s,
                        rr.ratio_vs_best,
                        aged.ratio_vs_best,
                        rr_ev,
                        aged_ev,
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    for (name, s, rr, aged, rr_ev, aged_ev) in rows {
        table.push_row(vec![
            name,
            fnum(s),
            fnum(rr),
            fnum(aged),
            rr_ev.to_string(),
            aged_ev.to_string(),
        ]);
    }
    table.note("AgedRR = machines proportional to job age (the [12] policy); continuous rates force adaptive-step simulation, hence the event blow-up.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_both_policies_bounded_and_agedrr_costs_more_events() {
        let t = &e9(&RunCtx::quick())[0];
        for row in &t.rows {
            let rr: f64 = row[2].parse().unwrap();
            let aged: f64 = row[3].parse().unwrap();
            assert!(rr < 4.0 && aged < 4.0, "{row:?}");
            let rr_ev: u64 = row[4].parse().unwrap();
            let aged_ev: u64 = row[5].parse().unwrap();
            assert!(aged_ev > rr_ev, "{row:?}");
        }
    }
}

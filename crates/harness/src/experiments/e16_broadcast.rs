//! **E16 — the broadcast setting: shared transmissions change the game.**
//!
//! Claim (paper, Section 1.2): "In the closely related broadcast
//! scheduling setting, jobs asking for the same data can be processed
//! simultaneously. … RR is O(1)-speed O(1)-competitive for the ℓ1-norm in
//! both settings \[12\], [but] not O(1)-competitive even with any
//! O(1)-speed for the ℓ2-norm \[15\]."
//!
//! Measurement, two tables:
//! * **E16a** — policy comparison on a hot/cold workload: the broadcast
//!   gain (requested work / transmitted work), ℓ1, ℓ2, max flow for both
//!   RR flavors, LWF, and MRF. Expected: large broadcast gains; LWF best
//!   or near-best on ℓ2 (it exists to tame tails); MRF starves singletons.
//! * **E16b** — the dilution family: one long "victim" page request vs
//!   repeated swarm batches for fresh pages. Per-*request* RR lets the
//!   swarm crowd out the victim by a factor `≈ swarm` (ℓ2 ratio grows
//!   with swarm); per-*page* RR treats the swarm as one peer and stays
//!   flat — the aggregation choice RR's broadcast analyses hinge on.

use super::{Effort, RunCtx};
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_broadcast::{
    simulate_broadcast, BroadcastInstance, BroadcastPolicy, Lwf, Mrf, PerPageRR, PerRequestRR,
};

fn run_policy(i: &BroadcastInstance, which: usize, speed: f64) -> tf_broadcast::BroadcastSchedule {
    // A tiny factory keeping trait objects local.
    let mut boxed: Box<dyn BroadcastPolicy> = match which {
        0 => Box::new(PerPageRR),
        1 => Box::new(PerRequestRR),
        2 => Box::new(Lwf),
        _ => Box::new(Mrf),
    };
    simulate_broadcast(i, boxed.as_mut(), speed)
}

/// Run E16.
pub fn e16(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let scale = match effort {
        Effort::Quick => 1usize,
        Effort::Full => 4,
    };

    // ---- E16a: hot/cold policy comparison ---------------------------------
    let hot_cold = BroadcastInstance::hot_cold(10 * scale, 8, 2.0, 10 * scale);
    let mut a = Table::new(
        "E16a: broadcast policies on a hot/cold workload (speed 1)",
        &["policy", "gain", "l1", "l2", "max flow"],
    );
    let names = ["RR/page", "RR/request", "LWF", "MRF"];
    let rows: Vec<_> = (0..4usize)
        .into_par_iter()
        .map(|w| {
            let s = run_policy(&hot_cold, w, 1.0);
            (
                names[w],
                hot_cold.requested_work() / s.transmitted,
                s.flow_norm(1.0),
                s.flow_norm(2.0),
                s.flow_norm(f64::INFINITY),
            )
        })
        .collect();
    for (name, gain, l1, l2, max) in rows {
        a.push_row(vec![
            name.to_string(),
            fnum(gain),
            fnum(l1),
            fnum(l2),
            fnum(max),
        ]);
    }
    a.note("gain = requested work / transmitted work — broadcast's non-conservation of work (one transmission serves a whole batch).");

    // ---- E16b: dilution — per-request vs per-page RR ----------------------
    let mut b = Table::new(
        "E16b: victim dilution — RR per request vs RR per page (l2 ratio to LWF)",
        &[
            "swarm",
            "n",
            "RR/request l2",
            "RR/page l2",
            "victim flow req",
            "victim flow page",
        ],
    );
    let swarms: Vec<usize> = match effort {
        Effort::Quick => vec![2, 8, 32],
        Effort::Full => vec![2, 8, 32, 128],
    };
    let rows: Vec<_> = swarms
        .par_iter()
        .map(|&swarm| {
            let victim_len = 8.0;
            let rounds = (victim_len * (swarm as f64 + 2.0)).ceil() as usize;
            let i = BroadcastInstance::dilution(victim_len, swarm, rounds);
            let req = run_policy(&i, 1, 1.0);
            let page = run_policy(&i, 0, 1.0);
            let lwf = run_policy(&i, 2, 1.0);
            (
                swarm,
                i.n_requests(),
                req.flow_norm(2.0) / lwf.flow_norm(2.0),
                page.flow_norm(2.0) / lwf.flow_norm(2.0),
                req.flow[0],
                page.flow[0],
            )
        })
        .collect();
    for (swarm, n, r2, p2, vf_req, vf_page) in rows {
        b.push_row(vec![
            swarm.to_string(),
            n.to_string(),
            fnum(r2),
            fnum(p2),
            fnum(vf_req),
            fnum(vf_page),
        ]);
    }
    b.note("The victim (request 0, long page) is diluted by per-request RR proportionally to the swarm size; per-page RR is immune — batches pool into one page-share.");
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_gain_and_dilution_shapes() {
        let tables = e16(&RunCtx::quick());
        // E16a: every policy shows a broadcast gain > 1 (batches shared).
        for row in &tables[0].rows {
            let gain: f64 = row[1].parse().unwrap();
            assert!(gain > 1.5, "{row:?}");
        }
        // E16b: per-request victim flow grows with swarm; per-page flat.
        let b = &tables[1];
        let vf_req = |r: usize| -> f64 { b.rows[r][4].parse().unwrap() };
        let vf_page = |r: usize| -> f64 { b.rows[r][5].parse().unwrap() };
        let last = b.rows.len() - 1;
        assert!(
            vf_req(last) > 2.0 * vf_req(0),
            "no dilution: {} vs {}",
            vf_req(last),
            vf_req(0)
        );
        assert!(
            vf_page(last) < 2.0 * vf_page(0) + 1e-9,
            "per-page RR got diluted"
        );
    }
}

//! **E20 — the k = ∞ endpoint: maximum flow time.**
//!
//! The paper's footnote on norms: "In practice, k ∈ \[1, 3\] ∪ {∞} are
//! considered." The ℓ∞ norm (max flow) is the far end of the
//! fairness spectrum the ℓk family interpolates — and it has an exact
//! optimum on one machine: FCFS minimizes maximum flow time, so ratios
//! here are *true* competitive ratios, no brackets.
//!
//! Measurement: max-flow ratio to FCFS for RR/SRPT/SJF/SETF/MLFQ at
//! speeds {1, 2.2}, on the random corpus and on the starvation instance.
//! Expected shape: modest constants on the random corpus — but on the
//! saturated starvation instance EVERY preempting policy (RR included)
//! pays a large ℓ∞ factor over FCFS, which front-runs the long job. This
//! is the k → ∞ story behind Theorem 1's speed requirement: η = 2k(1+10ε)
//! grows with k precisely because RR's guarantee must degrade as the norm
//! approaches max flow, where FCFS-style front-running is unbeatable and
//! fair sharing is the wrong shape.

use super::{Effort, RunCtx};
use crate::corpus::random_corpus;
use crate::table::{fnum, Table};
use rayon::prelude::*;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};
use tf_workload::adversarial::srpt_starvation;

fn max_flow(trace: &Trace, policy: Policy, speed: f64) -> f64 {
    let mut alloc = policy.make();
    simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(1, speed),
        SimOptions::default(),
    )
    .expect("valid policy run")
    .flow_norm(f64::INFINITY)
}

/// Run E20.
pub fn e20(ctx: &RunCtx) -> Vec<Table> {
    let effort = ctx.effort;
    let mut table = Table::new(
        "E20: maximum (l-infinity) flow — true ratios to FCFS (exact OPT on m=1)",
        &["instance", "speed", "RR", "SRPT", "SJF", "SETF", "MLFQ"],
    );
    let policies = [
        Policy::Rr,
        Policy::Srpt,
        Policy::Sjf,
        Policy::Setf,
        Policy::Mlfq,
    ];

    let mut instances = random_corpus(effort.n(), 0.9, 1, 2000);
    let (long, stream) = match effort {
        Effort::Quick => (12.0, 60),
        Effort::Full => (40.0, 400),
    };
    instances.push(crate::corpus::Instance {
        name: "starvation".into(),
        trace: srpt_starvation(long, 1.0, stream, 1.0),
    });

    let rows: Vec<_> = instances
        .par_iter()
        .flat_map(|inst| {
            [1.0, 2.2]
                .into_par_iter()
                .map(|speed| {
                    let opt = max_flow(&inst.trace, Policy::Fcfs, 1.0);
                    let ratios: Vec<f64> = policies
                        .iter()
                        .map(|&p| max_flow(&inst.trace, p, speed) / opt)
                        .collect();
                    (inst.name.clone(), speed, ratios)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    for (name, speed, ratios) in rows {
        let mut row = vec![name, fnum(speed)];
        row.extend(ratios.iter().map(|&r| fnum(r)));
        table.push_row(row);
    }
    table.note("FCFS minimizes max flow on one machine, so every entry is a TRUE competitive ratio for l-infinity.");
    table.note("Expected: modest constants on the random corpus; on the saturated starvation instance every preempting policy pays a large factor over front-running FCFS — the k->infinity divergence that explains why Theorem 1 needs speed growing with k.");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_corpus_modest_but_saturation_diverges() {
        let t = &e20(&RunCtx::quick())[0];
        for row in &t.rows {
            let speed: f64 = row[1].parse().unwrap();
            let rr: f64 = row[2].parse().unwrap();
            if row[0] != "starvation" {
                // Random corpus at rho 0.9: modest constants; with 2.2x
                // speed RR matches or beats speed-1 FCFS.
                assert!(rr > 0.0 && rr < 4.0, "RR max-flow ratio off: {row:?}");
                if speed > 2.0 {
                    assert!(rr <= 1.1, "{row:?}");
                }
            } else if (speed - 1.0).abs() < 1e-9 {
                // Saturated instance: FCFS's front-running wins big for
                // l-infinity — every preempting policy, RR included, pays a
                // large factor (the k->infinity divergence).
                for c in 2..7 {
                    let v: f64 = row[c].parse().unwrap();
                    assert!(v >= 1.0 - 1e-6, "beat exact OPT?! {row:?}");
                }
                assert!(rr > 3.0, "expected l-infinity divergence: {row:?}");
            }
        }
    }
}

//! Experiment implementations E1–E20. See the crate docs and DESIGN.md for
//! the claim-to-experiment mapping.

mod e01_theorem1;
mod e02_l2_headline;
mod e03_low_speed_blowup;
mod e04_speed_sweep;
mod e05_l1;
mod e06_clairvoyant;
mod e07_starvation;
mod e08_instantaneous;
mod e09_agedrr;
mod e10_dualfit;
mod e11_lp_quality;
mod e12_quantum;
mod e13_machines;
mod e14_dispatch;
mod e15_speedup_curves;
mod e16_broadcast;
mod e17_weighted;
mod e18_queueing;
mod e19_adversary_search;
mod e20_max_flow;
mod stream;

pub use e01_theorem1::e1;
pub use e02_l2_headline::e2;
pub use e03_low_speed_blowup::e3;
pub use e04_speed_sweep::e4;
pub use e05_l1::e5;
pub use e06_clairvoyant::e6;
pub use e07_starvation::e7;
pub use e08_instantaneous::e8;
pub use e09_agedrr::e9;
pub use e10_dualfit::e10;
pub use e11_lp_quality::e11;
pub use e12_quantum::e12;
pub use e13_machines::e13;
pub use e14_dispatch::e14;
pub use e15_speedup_curves::e15;
pub use e16_broadcast::e16;
pub use e17_weighted::e17;
pub use e18_queueing::e18;
pub use e19_adversary_search::e19;
pub use e20_max_flow::e20;
pub use stream::{stream, stream_with, StreamParams, StreamRun};

use crate::table::Table;

pub use crate::runctx::RunCtx;

/// How big to run: `Quick` keeps each experiment under a second for tests;
/// `Full` is the paper-scale run used by the CLI and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small instances, single repetition — CI-friendly.
    Quick,
    /// Full-scale tables.
    Full,
}

impl Effort {
    /// Baseline job count for random workloads.
    pub fn n(self) -> usize {
        match self {
            Effort::Quick => 30,
            Effort::Full => 120,
        }
    }

    /// Scale parameter for adversarial families (e.g. cascade levels).
    pub fn scale(self) -> u32 {
        match self {
            Effort::Quick => 3,
            Effort::Full => 6,
        }
    }
}

type ExperimentFn = fn(&RunCtx) -> Vec<Table>;

/// The experiment registry in presentation order. [`run_experiment`] and
/// [`all_ids`] both derive from this table, so the dispatcher and the id
/// list cannot drift apart (an earlier revision listed e1–e19 here but
/// dispatched e20 too, silently dropping it from `all` runs).
const REGISTRY: &[(&str, ExperimentFn)] = &[
    ("e1", e1),
    ("e2", e2),
    ("e3", e3),
    ("e4", e4),
    ("e5", e5),
    ("e6", e6),
    ("e7", e7),
    ("e8", e8),
    ("e9", e9),
    ("e10", e10),
    ("e11", e11),
    ("e12", e12),
    ("e13", e13),
    ("e14", e14),
    ("e15", e15),
    ("e16", e16),
    ("e17", e17),
    ("e18", e18),
    ("e19", e19),
    ("e20", e20),
];

/// Named experiment *families* dispatched alongside the numbered
/// registry but deliberately excluded from [`all_ids`]: at default scale
/// they are throughput/memory benchmarks (`stream` pushes 10⁷ jobs), so
/// `all` runs should opt in by naming them explicitly.
const FAMILIES: &[(&str, ExperimentFn)] = &[("stream", stream)];

/// Run an experiment by id (`"e1"`..`"e20"`, case-insensitive) under the
/// given [`RunCtx`]. Returns `None` for unknown ids. The whole experiment
/// is wrapped in a `harness.<id>` span so per-experiment wall-clock shows
/// up in traces and the timing table.
///
/// Under an active campaign ([`crate::campaign`]) the finished table set
/// is journaled per experiment, so a resumed run replays completed
/// experiments verbatim — including wall-clock cells like "alloc ms"
/// that would otherwise differ between runs — and only recomputes the
/// one that was in flight when the previous run died.
pub fn run_experiment_ctx(id: &str, ctx: &RunCtx) -> Option<Vec<Table>> {
    let id = id.to_ascii_lowercase();
    REGISTRY
        .iter()
        .chain(FAMILIES.iter())
        .find(|(name, _)| *name == id)
        .map(|(name, f)| {
            let _span = tf_obs::span!("harness", *name);
            let key = format!("exp:{name}:{:?}", ctx.effort);
            crate::campaign::run_or_replay(&key, || f(ctx))
        })
}

/// [`run_experiment_ctx`] with a default context at the given effort —
/// the stable convenience entry point (cache on, no tracing changes).
pub fn run_experiment(id: &str, effort: Effort) -> Option<Vec<Table>> {
    run_experiment_ctx(&id.to_ascii_lowercase(), &RunCtx::with_effort(effort))
}

/// All *numbered* experiment ids in order (what `all` runs). Named
/// families ([`family_ids`]) are dispatched by [`run_experiment_ctx`] but
/// must be requested explicitly.
pub fn all_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// Ids of the named experiment families (e.g. `"stream"`).
pub fn family_ids() -> Vec<&'static str> {
    FAMILIES.iter().map(|(name, _)| *name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry covers e1..e20 contiguously with unique ids — the
    /// shape regression that once dropped "e20" from `all` runs.
    #[test]
    fn registry_is_contiguous_and_unique() {
        let ids = all_ids();
        assert_eq!(ids.len(), 20);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, format!("e{}", i + 1));
        }
    }

    /// The `stream` family dispatches by name but stays out of `all`.
    #[test]
    fn stream_family_dispatches_but_is_not_in_all() {
        assert!(!all_ids().contains(&"stream"));
        assert_eq!(family_ids(), vec!["stream"]);
        // Shrink the sweep via the env overrides so dispatch coverage
        // stays test-sized (the env is only read by the stream family).
        std::env::set_var("TF_STREAM_N", "300");
        std::env::set_var("TF_STREAM_RHO", "0.5");
        let tables = run_experiment("STREAM", Effort::Quick).unwrap();
        std::env::remove_var("TF_STREAM_N");
        std::env::remove_var("TF_STREAM_RHO");
        assert!(!tables.is_empty());
        assert!(tables[0].rows.iter().any(|r| r[0] == "300"));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("e99", Effort::Quick).is_none());
        assert!(run_experiment("", Effort::Quick).is_none());
    }

    #[test]
    fn ids_are_case_insensitive() {
        assert!(run_experiment("E7", Effort::Quick).is_some());
    }

    /// Every experiment runs at Quick effort and yields non-empty tables
    /// with consistent row arity.
    #[test]
    fn all_experiments_run_quick() {
        for id in all_ids() {
            let tables = run_experiment(id, Effort::Quick).unwrap();
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
                for row in &t.rows {
                    assert_eq!(
                        row.len(),
                        t.headers.len(),
                        "{id}: ragged row in {}",
                        t.title
                    );
                }
            }
        }
    }
}

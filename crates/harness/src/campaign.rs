//! Fault-tolerant campaign runner: crash-safe journal, resume, per-task
//! deadlines with bounded retry, and graceful degradation.
//!
//! A *campaign* is a long batch of deterministic tasks — experiment
//! tables, fuzz chunks, hunt restarts. Today a killed process throws all
//! of it away; with a campaign directory attached (`--campaign DIR` in
//! the bins) every completed task's result is appended to a journal
//! first, so `--resume` replays finished work from disk and recomputes
//! only the rest. Because every task in this repo is a pure function of
//! its key (seeded RNGs, order-preserving fan-outs — the PR-2/3
//! determinism pins), a resumed run's final output is byte-identical to
//! an uninterrupted one, modulo the wall-clock columns that are already
//! nondeterministic run-to-run (and masked by `tests/determinism.rs`).
//!
//! ## On-disk layout (under the campaign directory)
//!
//! * `journal.jsonl` — append-only; one `{"key": …, "value": …}` object
//!   per completed task. A `SIGKILL` mid-write can leave only a partial
//!   *final* line, which the loader skips; every intact line is a fully
//!   serialized result. Results are JSON-roundtrip-exact (`f64` via
//!   ryu), so replayed values match recomputed ones bit for bit.
//! * `manifest.json` — written once by [`Campaign::finish`] via
//!   temp-file + atomic rename; records the run key and final counters.
//!   Its presence marks a campaign that ran to completion.
//!
//! ## Degradation
//!
//! With `--task-timeout SECS` each task gets a [`SolveBudget`]; the
//! certified LP lower bound polls it and aborts cleanly, falling back to
//! the closed-form bounds ([`tf_lowerbound::lk_lower_bound_budgeted`]).
//! The weakened bound is still *valid*, the output row records the
//! provenance (`lb src` column), [`Campaign::note_degraded`] counts it —
//! and the degraded value is **never** written to the lower-bound cache,
//! where it would silently weaken later unlimited runs.
//!
//! Like the other process-wide run knobs (`lbcache::set_enabled`,
//! `rayon::set_thread_override`, `tf_obs::install`), the active campaign
//! is a process global installed by [`crate::RunCtx::apply`]; library
//! code consults [`active`] so deep call sites (the rayon fan-out in
//! [`crate::ratio::empirical_ratios`], the fuzz loop in `tf-audit`) need
//! no extra plumbing.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use tf_lowerbound::SolveBudget;

/// How a campaign run is configured (one `--campaign DIR` invocation).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCfg {
    /// Directory holding `journal.jsonl` and `manifest.json`.
    pub dir: PathBuf,
    /// Replay completed tasks from an existing journal (`--resume`);
    /// without it an existing journal is truncated and the campaign
    /// starts fresh.
    pub resume: bool,
    /// Per-task wall-clock deadline (`--task-timeout SECS`); `None`
    /// means tasks run to completion.
    pub task_timeout: Option<Duration>,
    /// Attempt cap for [`Campaign::run_fallible`] (first try included).
    pub max_attempts: u32,
}

impl CampaignCfg {
    /// Campaign in `dir` with no timeout, no resume, 3 attempts.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CampaignCfg {
            dir: dir.into(),
            resume: false,
            task_timeout: None,
            max_attempts: 3,
        }
    }

    /// Enable resume-from-journal.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Set the per-task deadline.
    pub fn task_timeout(mut self, d: Duration) -> Self {
        self.task_timeout = Some(d);
        self
    }
}

/// Completed-task log plus its append writer.
struct Journal {
    completed: HashMap<String, String>,
    writer: BufWriter<File>,
}

/// One line of `journal.jsonl`.
#[derive(Serialize, Deserialize)]
struct JournalLine {
    key: String,
    value: serde_json::Value,
}

/// Final counters, written atomically as `manifest.json` by
/// [`Campaign::finish`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Caller-supplied identity of the run (ids + effort fingerprint).
    pub run_key: String,
    /// Tasks whose results were replayed from the journal.
    pub replays: u64,
    /// Tasks computed (and journaled) this process.
    pub computed: u64,
    /// Total task attempts, including retries.
    pub attempts: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Lower-bound solves that degraded to closed-form bounds.
    pub degradations: u64,
}

/// A live campaign: journal + counters. Shared across worker threads.
pub struct Campaign {
    cfg: CampaignCfg,
    journal: Mutex<Journal>,
    replays: AtomicU64,
    computed: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    degradations: AtomicU64,
}

static ACTIVE: Mutex<Option<Arc<Campaign>>> = Mutex::new(None);
static ACTIVE_ON: AtomicBool = AtomicBool::new(false);

/// Open (or resume) a campaign in `cfg.dir` and install it as the
/// process-wide active campaign. Returns the handle; call
/// [`Campaign::finish`] after the run to write the manifest.
pub fn install(cfg: CampaignCfg) -> std::io::Result<Arc<Campaign>> {
    let c = Arc::new(Campaign::open(cfg)?);
    let mut slot = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(c.clone());
    ACTIVE_ON.store(true, Ordering::Relaxed);
    Ok(c)
}

/// Remove the active campaign (tests; a finished campaign may also be
/// detached so later code runs unjournaled).
pub fn clear() {
    let mut slot = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE_ON.store(false, Ordering::Relaxed);
    *slot = None;
}

/// The process-wide active campaign, if one is installed. The fast path
/// (no campaign) is a single relaxed load.
pub fn active() -> Option<Arc<Campaign>> {
    if !ACTIVE_ON.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// The per-task [`SolveBudget`] of the active campaign: its
/// `--task-timeout` starting now, or unlimited when no campaign (or no
/// timeout) is installed.
pub fn task_budget() -> SolveBudget {
    match active() {
        Some(c) => c.task_budget(),
        None => SolveBudget::unlimited(),
    }
}

/// Run `compute` under the active campaign if one is installed (journal
/// replay + record), or directly otherwise. The convenience wrapper the
/// library fan-outs use.
pub fn run_or_replay<T, F>(key: &str, compute: F) -> T
where
    T: Serialize + DeserializeOwned,
    F: FnOnce() -> T,
{
    match active() {
        Some(c) => c.run(key, compute),
        None => compute(),
    }
}

/// As [`run_or_replay`], but journal the computed value only when
/// `worth_journaling(&value)` holds. Used for tasks whose "dirty"
/// outcomes must be recomputed on resume — e.g. fuzz chunks with
/// violations, which need to re-shrink and re-write counterexample
/// records rather than replay a summary of them.
pub fn run_or_replay_if<T, F, P>(key: &str, compute: F, worth_journaling: P) -> T
where
    T: Serialize + DeserializeOwned,
    F: FnOnce() -> T,
    P: FnOnce(&T) -> bool,
{
    match active() {
        Some(c) => c.run_if(key, compute, worth_journaling),
        None => compute(),
    }
}

impl Campaign {
    fn open(cfg: CampaignCfg) -> std::io::Result<Campaign> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = cfg.dir.join("journal.jsonl");
        let mut completed = HashMap::new();
        if cfg.resume {
            if let Ok(text) = std::fs::read_to_string(&path) {
                for line in text.lines() {
                    // A kill mid-append can truncate only the last line;
                    // skip anything that does not parse.
                    if let Ok(l) = serde_json::from_str::<JournalLine>(line) {
                        if let Ok(raw) = serde_json::to_string(&l.value) {
                            completed.insert(l.key, raw);
                        }
                    }
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(!completed.is_empty() || cfg.resume)
            .truncate(completed.is_empty() && !cfg.resume)
            .write(true)
            .open(&path)?;
        tf_obs::counter!("campaign", "journal_loaded", completed.len() as f64);
        Ok(Campaign {
            cfg,
            journal: Mutex::new(Journal {
                completed,
                writer: BufWriter::new(file),
            }),
            replays: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
        })
    }

    /// The campaign's configuration.
    pub fn cfg(&self) -> &CampaignCfg {
        &self.cfg
    }

    /// A fresh per-task budget (deadline = now + `--task-timeout`).
    pub fn task_budget(&self) -> SolveBudget {
        match self.cfg.task_timeout {
            Some(d) => SolveBudget::with_timeout(d),
            None => SolveBudget::unlimited(),
        }
    }

    fn lookup(&self, key: &str) -> Option<String> {
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .completed
            .get(key)
            .cloned()
    }

    /// Append `value` for `key` and flush, so a kill after this point
    /// never loses the task. I/O errors degrade to "not journaled" —
    /// the campaign never makes a run fail.
    fn record<T: Serialize>(&self, key: &str, value: &T) {
        let Ok(value) = serde_json::to_value(value) else {
            return;
        };
        let line = JournalLine {
            key: key.to_string(),
            value,
        };
        let Ok(mut json) = serde_json::to_string(&line) else {
            return;
        };
        json.push('\n');
        let mut j = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        if j.writer.write_all(json.as_bytes()).is_ok() {
            let _ = j.writer.flush();
        }
    }

    /// Replay `key` from the journal, or compute and journal it.
    ///
    /// `T` must round-trip through JSON exactly (every `Serialize` type
    /// in this workspace does: numbers are f64/u64, serialized losslessly).
    pub fn run<T, F>(&self, key: &str, compute: F) -> T
    where
        T: Serialize + DeserializeOwned,
        F: FnOnce() -> T,
    {
        if let Some(raw) = self.lookup(key) {
            if let Ok(v) = serde_json::from_str::<T>(&raw) {
                self.replays.fetch_add(1, Ordering::Relaxed);
                tf_obs::instant!("campaign", "replay");
                return v;
            }
            // Journaled under an older schema: recompute (and re-journal
            // under the same key; the loader keeps the last occurrence).
        }
        self.attempts.fetch_add(1, Ordering::Relaxed);
        tf_obs::instant!("campaign", "attempt");
        let v = compute();
        self.record(key, &v);
        self.computed.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// As [`Campaign::run`], but the computed value is journaled only
    /// when `worth_journaling(&value)` holds; other values are returned
    /// without being recorded, so a resumed campaign recomputes them.
    pub fn run_if<T, F, P>(&self, key: &str, compute: F, worth_journaling: P) -> T
    where
        T: Serialize + DeserializeOwned,
        F: FnOnce() -> T,
        P: FnOnce(&T) -> bool,
    {
        if let Some(raw) = self.lookup(key) {
            if let Ok(v) = serde_json::from_str::<T>(&raw) {
                self.replays.fetch_add(1, Ordering::Relaxed);
                tf_obs::instant!("campaign", "replay");
                return v;
            }
        }
        self.attempts.fetch_add(1, Ordering::Relaxed);
        tf_obs::instant!("campaign", "attempt");
        let v = compute();
        if worth_journaling(&v) {
            self.record(key, &v);
            self.computed.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// As [`Campaign::run`] for fallible tasks: up to
    /// `cfg.max_attempts` tries with jittered exponential backoff
    /// between them. Only an `Ok` result is journaled; the final `Err`
    /// is returned for the caller to surface (or skip) — one bad task
    /// must not abort the campaign.
    pub fn run_fallible<T, E, F>(&self, key: &str, mut attempt: F) -> Result<T, E>
    where
        T: Serialize + DeserializeOwned,
        F: FnMut(u32) -> Result<T, E>,
    {
        if let Some(raw) = self.lookup(key) {
            if let Ok(v) = serde_json::from_str::<T>(&raw) {
                self.replays.fetch_add(1, Ordering::Relaxed);
                tf_obs::instant!("campaign", "replay");
                return Ok(v);
            }
        }
        let max = self.cfg.max_attempts.max(1);
        let mut last = None;
        for i in 0..max {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            tf_obs::instant!("campaign", "attempt");
            match attempt(i) {
                Ok(v) => {
                    self.record(key, &v);
                    self.computed.fetch_add(1, Ordering::Relaxed);
                    return Ok(v);
                }
                Err(e) => {
                    last = Some(e);
                    if i + 1 < max {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        tf_obs::instant!("campaign", "retry");
                        std::thread::sleep(backoff(key, i));
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Count one lower-bound degradation (budget-exceeded LP solve that
    /// fell back to closed-form bounds).
    pub fn note_degraded(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
        tf_obs::instant!("campaign", "degraded");
    }

    /// Counters so far, as a [`Manifest`] (also the shape `finish`
    /// persists).
    pub fn manifest(&self, run_key: &str) -> Manifest {
        Manifest {
            run_key: run_key.to_string(),
            replays: self.replays.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
        }
    }

    /// Campaign counters as a flat [`tf_obs::ObsRegistry`] under the
    /// `campaign.` namespace, mergeable with `cache.`/`sim.`/`mcmf.`.
    pub fn registry(&self) -> tf_obs::ObsRegistry {
        let m = self.manifest("");
        tf_obs::ObsRegistry::from_counters([
            ("campaign.replays", m.replays as f64),
            ("campaign.computed", m.computed as f64),
            ("campaign.attempts", m.attempts as f64),
            ("campaign.retries", m.retries as f64),
            ("campaign.degradations", m.degradations as f64),
        ])
    }

    /// Flush the journal and write `manifest.json` via temp-file +
    /// atomic rename: its presence marks a campaign that completed.
    pub fn finish(&self, run_key: &str) -> std::io::Result<Manifest> {
        {
            let mut j = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
            j.writer.flush()?;
        }
        let m = self.manifest(run_key);
        let json = serde_json::to_string_pretty(&m).expect("manifest serializes");
        let path = self.cfg.dir.join("manifest.json");
        let tmp = self
            .cfg
            .dir
            .join(format!("manifest.tmp{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &path)?;
        Ok(m)
    }
}

/// Exponential backoff with deterministic jitter: base 25 ms doubling
/// per attempt, capped at 2 s, plus up to 100% jitter drawn from an
/// FNV-1a hash of `(key, attempt)` — no RNG state, so two processes
/// retrying the same key still decorrelate from *other* keys.
fn backoff(key: &str, attempt: u32) -> Duration {
    let base_ms = 25u64.saturating_mul(1 << attempt.min(6)).min(2_000);
    let mut h = 0xcbf29ce484222325u64 ^ u64::from(attempt);
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    Duration::from_millis(base_ms + h % (base_ms + 1))
}

/// Stable fingerprint helper for campaign task keys (FNV-1a over raw
/// bytes, like the lower-bound cache key).
pub fn fingerprint(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that install the process-global campaign.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn scratch(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tf-campaign-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn computes_then_replays_identically() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("replay");
        let c = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let v: f64 = c.run("t1", || 0.1 + 0.2);
        c.finish("test").unwrap();
        drop(c);

        let c2 = Campaign::open(CampaignCfg::new(&dir).resume(true)).unwrap();
        let replayed: f64 = c2.run("t1", || panic!("must replay, not recompute"));
        assert_eq!(replayed.to_bits(), v.to_bits(), "bit-exact roundtrip");
        let m = c2.manifest("test");
        assert_eq!((m.replays, m.computed), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_final_line_is_skipped() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("torn");
        let c = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let _: u32 = c.run("a", || 7);
        let _: u32 = c.run("b", || 8);
        drop(c);
        // Simulate a SIGKILL mid-append: truncate inside the last line.
        let path = dir.join("journal.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();

        let c2 = Campaign::open(CampaignCfg::new(&dir).resume(true)).unwrap();
        let a: u32 = c2.run("a", || panic!("intact line must replay"));
        assert_eq!(a, 7);
        let b: u32 = c2.run("b", || 80); // torn line: recomputed
        assert_eq!(b, 80);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn without_resume_an_existing_journal_is_discarded() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("fresh");
        let c = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let _: u32 = c.run("a", || 1);
        drop(c);
        let c2 = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let a: u32 = c2.run("a", || 2);
        assert_eq!(a, 2, "fresh campaign must not replay old results");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_fallible_retries_then_succeeds_and_journals() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("retry");
        let mut cfg = CampaignCfg::new(&dir);
        cfg.max_attempts = 3;
        let c = Campaign::open(cfg).unwrap();
        let mut calls = 0u32;
        let r: Result<u32, String> = c.run_fallible("flaky", |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(format!("transient {attempt}"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(calls, 3);
        let m = c.manifest("t");
        assert_eq!((m.attempts, m.retries, m.computed), (3, 2, 1));

        // Journaled: a resumed campaign replays without calling again.
        drop(c);
        let c2 = Campaign::open(CampaignCfg::new(&dir).resume(true)).unwrap();
        let r2: Result<u32, String> = c2.run_fallible("flaky", |_| panic!("must replay"));
        assert_eq!(r2.unwrap(), 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_fallible_exhausts_attempts_and_reports_last_error() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("fail");
        let mut cfg = CampaignCfg::new(&dir);
        cfg.max_attempts = 2;
        let c = Campaign::open(cfg).unwrap();
        let r: Result<u32, String> = c.run_fallible("doomed", |i| Err(format!("boom {i}")));
        assert_eq!(r.unwrap_err(), "boom 1");
        let m = c.manifest("t");
        assert_eq!((m.attempts, m.retries, m.computed), (2, 1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_active_budget_and_clear() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("global");
        assert!(active().is_none());
        assert!(task_budget().is_unlimited());
        let c = install(CampaignCfg::new(&dir).task_timeout(Duration::from_secs(60))).unwrap();
        assert!(active().is_some());
        assert!(!task_budget().is_unlimited());
        let v: u32 = run_or_replay("k", || 5);
        assert_eq!(v, 5);
        c.note_degraded();
        assert_eq!(c.registry().get("campaign.degradations"), Some(1.0));
        clear();
        assert!(active().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_if_skips_journaling_unworthy_values() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("runif");
        let c = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let dirty: u32 = c.run_if("chunk", || 13, |v| *v == 0);
        assert_eq!(dirty, 13);
        let clean: u32 = c.run_if("ok", || 0, |v| *v == 0);
        assert_eq!(clean, 0);
        drop(c);

        let c2 = Campaign::open(CampaignCfg::new(&dir).resume(true)).unwrap();
        let recomputed: u32 = c2.run_if("chunk", || 14, |v| *v == 0);
        assert_eq!(recomputed, 14, "unjournaled value must recompute");
        let replayed: u32 = c2.run_if("ok", || panic!("must replay"), |_| true);
        assert_eq!(replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_writes_manifest_atomically() {
        let _g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = scratch("manifest");
        let c = Campaign::open(CampaignCfg::new(&dir)).unwrap();
        let _: u32 = c.run("x", || 9);
        let m = c.finish("run-xyz").unwrap();
        let text = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let on_disk: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(on_disk, m);
        assert_eq!(on_disk.run_key, "run-xyz");
        assert_eq!(on_disk.computed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        for attempt in 0..10 {
            let d = backoff("some:key", attempt);
            assert_eq!(d, backoff("some:key", attempt));
            assert!(
                d <= Duration::from_millis(4_000),
                "attempt {attempt}: {d:?}"
            );
        }
        assert_ne!(backoff("a", 0), backoff("b", 0), "jitter decorrelates keys");
    }
}

//! Plain-text / markdown / CSV tables for experiment output.

use serde::{Deserialize, Serialize};
use tf_simcore::SimStats;

/// A rendered experiment result: title, column headers, string rows, and
/// free-form notes (methodology, caveats).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Title, e.g. `"E1: Theorem 1 headline (k=2)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// An empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Fixed-width text rendering.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// GitHub-flavored markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n_{n}_\n"));
        }
        out
    }

    /// CSV rendering (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Headers for the standard engine-stats columns appended to experiment
/// tables; [`stats_cells`] produces the matching cells. Keeping one shared
/// definition means every table spells the columns the same way.
pub const STATS_HEADERS: [&str; 3] = ["steps", "peak alive", "alloc ms"];

/// Render one run's (or an aggregate's) [`SimStats`] as cells matching
/// [`STATS_HEADERS`].
pub fn stats_cells(s: &SimStats) -> Vec<String> {
    vec![
        s.steps().to_string(),
        s.peak_alive.to_string(),
        fnum(s.alloc_secs() * 1e3),
    ]
}

/// Per-stage timing table built from the tracing layer's buffered span
/// summaries ([`tf_obs::summary`]): one row per `(category, span)` pair
/// with call count, total wall-clock, and mean duration. Returns `None`
/// when no spans were recorded (tracing off, or nothing instrumented
/// ran), so callers can skip rendering an empty table.
pub fn timing_table() -> Option<Table> {
    let summaries = tf_obs::summary();
    if summaries.is_empty() {
        return None;
    }
    let mut t = Table::new("stage timings", &["stage", "calls", "total ms", "mean ms"]);
    for s in &summaries {
        let total_ms = s.total_ns as f64 / 1e6;
        t.push_row(vec![
            format!("{}.{}", s.cat, s.name),
            s.count.to_string(),
            fnum(total_ms),
            fnum(total_ms / s.count.max(1) as f64),
        ]);
    }
    t.note("spans aggregated by (category, name); durations are wall-clock");
    Some(t)
}

/// Format a float with 4 significant digits — compact but comparable.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let mag = x.abs().log10().floor() as i32;
    let decimals = (3 - mag).clamp(0, 6) as usize;
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["xx".into(), "y,z".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let s = sample().to_text();
        assert!(s.contains("== demo =="));
        assert!(s.contains("a   b") || s.contains(" a"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn markdown_rendering() {
        let s = sample().to_markdown();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("_a note_"));
    }

    #[test]
    fn csv_escapes() {
        let s = sample().to_csv();
        assert!(s.contains("\"y,z\""));
        assert!(s.starts_with("a,b\n"));
    }

    #[test]
    fn stats_cells_match_headers() {
        let s = SimStats {
            arrival_steps: 2,
            completion_steps: 3,
            peak_alive: 7,
            alloc_ns: 1_500_000,
            ..Default::default()
        };
        let cells = stats_cells(&s);
        assert_eq!(cells.len(), STATS_HEADERS.len());
        assert_eq!(cells[0], "5");
        assert_eq!(cells[1], "7");
        assert_eq!(cells[2], "1.500");
    }

    #[test]
    fn timing_table_reflects_recorded_spans() {
        tf_obs::install_collect();
        {
            let _s = tf_obs::span!("tabletest", "stage_a");
        }
        let t = timing_table().expect("spans were recorded");
        assert_eq!(t.headers, vec!["stage", "calls", "total ms", "mean ms"]);
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == "tabletest.stage_a")
            .expect("our span aggregates into a row");
        let calls: u64 = row[1].parse().unwrap();
        assert!(calls >= 1);
        tf_obs::install(tf_obs::SinkSpec::Off);
    }

    #[test]
    fn fnum_significant_digits() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(123.456), "123.5");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(0.000123456), "0.000123");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}

//! [`RunCtx`] — one run context for the whole experiment pipeline.
//!
//! Effort, output directory, cache policy, worker-thread override, and
//! the tracing sink used to be plumbed ad hoc: each binary parsed its own
//! flags and poked the relevant globals (`lbcache::set_enabled`,
//! `rayon::set_thread_override`) in its own order. `RunCtx` gathers the
//! knobs in one value that the three binaries build from their command
//! lines and every experiment receives by reference, so a new knob is one
//! field plus one flag instead of a cross-cutting edit.

use std::path::PathBuf;

use crate::experiments::Effort;
use tf_obs::SinkSpec;

/// Everything an experiment run needs to know beyond the experiment id.
///
/// Construct with [`RunCtx::quick`] / [`RunCtx::full`] (or
/// [`Default::default`], which is full effort) and chain the setters.
/// Call [`RunCtx::apply`] once, before running experiments, to push the
/// cache/thread/trace settings into the process globals they live in.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCtx {
    /// Instance scale: quick (CI) or full (paper-scale tables).
    pub effort: Effort,
    /// Directory tables are written to (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Whether the on-disk lower-bound cache may be read and written.
    pub cache: bool,
    /// Worker-thread override for the rayon fan-outs (`None` = default).
    pub threads: Option<usize>,
    /// Tracing sink for this run ([`SinkSpec::Off`] = no tracing).
    pub trace: SinkSpec,
    /// Crash-safe campaign journal (`--campaign DIR`); `None` = off.
    pub campaign: Option<crate::campaign::CampaignCfg>,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            effort: Effort::Full,
            out_dir: None,
            cache: true,
            threads: None,
            trace: SinkSpec::Off,
            campaign: None,
        }
    }
}

impl RunCtx {
    /// Quick-effort context with all other knobs at their defaults.
    pub fn quick() -> Self {
        RunCtx {
            effort: Effort::Quick,
            ..Default::default()
        }
    }

    /// Full-effort context with all other knobs at their defaults.
    pub fn full() -> Self {
        RunCtx::default()
    }

    /// Context with the given effort.
    pub fn with_effort(effort: Effort) -> Self {
        RunCtx {
            effort,
            ..Default::default()
        }
    }

    /// Set the output directory for rendered tables.
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = Some(dir.into());
        self
    }

    /// Disable the on-disk lower-bound cache for this run.
    pub fn no_cache(mut self) -> Self {
        self.cache = false;
        self
    }

    /// Override the rayon worker-thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Set the tracing sink.
    pub fn trace(mut self, sink: SinkSpec) -> Self {
        self.trace = sink;
        self
    }

    /// Attach a crash-safe campaign journal (see [`crate::campaign`]).
    pub fn campaign(mut self, cfg: crate::campaign::CampaignCfg) -> Self {
        self.campaign = Some(cfg);
        self
    }

    /// Push the context into the process globals it governs: the
    /// lower-bound cache gate, the rayon thread override, the tf-obs
    /// sink, and (when configured) the campaign journal. Call once
    /// before running experiments; the settings stay in effect
    /// afterwards (tests that flip them back hold the serializing lock
    /// in `tests/determinism.rs`).
    ///
    /// # Errors
    /// Only campaign installation does I/O; every other knob is
    /// infallible. `Err` means the campaign directory or journal could
    /// not be opened.
    pub fn apply(&self) -> std::io::Result<()> {
        crate::lbcache::set_enabled(self.cache);
        if let Some(n) = self.threads {
            rayon::set_thread_override(n);
        }
        tf_obs::install(self.trace.clone());
        if let Some(cfg) = &self.campaign {
            crate::campaign::install(cfg.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_cached_untraced() {
        let ctx = RunCtx::default();
        assert_eq!(ctx.effort, Effort::Full);
        assert!(ctx.cache);
        assert!(ctx.out_dir.is_none());
        assert!(ctx.threads.is_none());
        assert!(ctx.trace.is_off());
    }

    #[test]
    fn builder_setters_compose() {
        let ctx = RunCtx::quick()
            .out_dir("results")
            .no_cache()
            .threads(2)
            .trace(SinkSpec::Collect);
        assert_eq!(ctx.effort, Effort::Quick);
        assert_eq!(
            ctx.out_dir.as_deref(),
            Some(std::path::Path::new("results"))
        );
        assert!(!ctx.cache);
        assert_eq!(ctx.threads, Some(2));
        assert_eq!(ctx.trace, SinkSpec::Collect);
    }
}

//! Automated adversary search: hill-climbing over small instances to
//! maximize a policy's **true** competitive ratio.
//!
//! The lower-bound constructions cited by the paper (\[4\], \[15\]) are
//! hand-crafted. On small integral instances we can do better than
//! hand-crafting: `tf-lowerbound::exact` computes the exact optimum, so
//! the ratio `alg / OPT` is a certified number, and a stochastic local
//! search over traces becomes a *worst-case instance miner*. Experiment
//! E19 uses it to probe how bad RR can actually get at each speed on
//! instances of bounded size — an empirical floor under the adversarial
//! families of E3/E4.
//!
//! Search moves: perturb one job's arrival or size, add a job, remove a
//! job; accept strictly improving moves (hill climbing) with seeded
//! restarts. All instances stay integral so the exact solver applies.
//!
//! The climb is **generation-based**: each step proposes a batch of
//! [`HuntConfig::batch`] independent mutations and evaluates their
//! certified ratios in parallel (the exact-OPT solve dominates, so this
//! is where the cores go), then accepts the best strict improvement.
//! Candidate RNGs are derived by index from a per-generation seed and
//! the winner is the first index attaining the maximum, so results are
//! byte-identical whatever the thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tf_lowerbound::{exact_slotted_opt, ExactLimits};
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace, TraceBuilder};

use crate::campaign;

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct HuntConfig {
    /// Number of machines.
    pub m: usize,
    /// Policy speed (OPT runs at 1).
    pub speed: f64,
    /// Norm exponent.
    pub k: u32,
    /// Maximum jobs per instance.
    pub max_jobs: usize,
    /// Maximum job size (integral).
    pub max_size: u16,
    /// Maximum arrival time (integral).
    pub max_arrival: u16,
    /// Hill-climbing generations per restart.
    pub steps: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Candidate mutations proposed (and evaluated in parallel) per
    /// generation; total evaluations ≈ `restarts × steps × batch`.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            m: 1,
            speed: 1.0,
            k: 2,
            max_jobs: 9,
            max_size: 6,
            max_arrival: 12,
            steps: 400,
            restarts: 6,
            batch: 8,
            seed: 0xBADC0DE,
        }
    }
}

/// Outcome of a hunt: the worst instance found and its certified ratio.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// The instance attaining the worst ratio.
    pub trace: Trace,
    /// Certified norm-scale ratio `(algᵏ / OPTᵏ)^{1/k}` (exact OPT).
    pub ratio: f64,
    /// Ratios at the end of each restart (to gauge search stability).
    pub restart_ratios: Vec<f64>,
    /// Candidate instances evaluated.
    pub evaluated: usize,
}

/// Certified norm-scale ratio of `policy` at `cfg.speed` on `trace`
/// (exact slotted OPT as the denominator). Returns `None` if the exact
/// search exceeds its budget or the instance is degenerate.
///
/// The state budget is deliberately modest: the hill climber evaluates
/// thousands of candidates, and a candidate too big to solve exactly is
/// simply rejected (treated as no improvement) rather than paid for.
pub fn true_ratio(trace: &Trace, policy: Policy, cfg: &HuntConfig) -> Option<f64> {
    if trace.is_empty() {
        return None;
    }
    let limits = ExactLimits {
        max_states: 150_000,
    };
    let opt = exact_slotted_opt(trace, cfg.m, cfg.k, limits)?.power_sum;
    if opt <= 0.0 {
        return None;
    }
    let mut alloc = policy.make();
    let alg = simulate(
        trace,
        alloc.as_mut(),
        MachineConfig::with_speed(cfg.m, cfg.speed),
        SimOptions::default(),
    )
    .ok()?
    .flow_power_sum(f64::from(cfg.k));
    Some((alg / opt).powf(1.0 / f64::from(cfg.k)))
}

fn random_instance(rng: &mut StdRng, cfg: &HuntConfig) -> Vec<(u16, u16)> {
    let n = rng.gen_range(2..=cfg.max_jobs);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..=cfg.max_arrival),
                rng.gen_range(1..=cfg.max_size),
            )
        })
        .collect()
}

fn build(jobs: &[(u16, u16)]) -> Trace {
    let mut b = TraceBuilder::new();
    for &(a, p) in jobs {
        b.push(f64::from(a), f64::from(p));
    }
    b.build().expect("integral jobs are valid")
}

/// Mutate one aspect of the instance.
fn mutate(rng: &mut StdRng, jobs: &[(u16, u16)], cfg: &HuntConfig) -> Vec<(u16, u16)> {
    let mut out = jobs.to_vec();
    match rng.gen_range(0..4u8) {
        0 if !out.is_empty() => {
            // Nudge an arrival.
            let i = rng.gen_range(0..out.len());
            let delta: i32 = if rng.gen() { 1 } else { -1 };
            out[i].0 = (i32::from(out[i].0) + delta).clamp(0, i32::from(cfg.max_arrival)) as u16;
        }
        1 if !out.is_empty() => {
            // Nudge a size.
            let i = rng.gen_range(0..out.len());
            let delta: i32 = if rng.gen() { 1 } else { -1 };
            out[i].1 = (i32::from(out[i].1) + delta).clamp(1, i32::from(cfg.max_size)) as u16;
        }
        2 if out.len() < cfg.max_jobs => {
            out.push((
                rng.gen_range(0..=cfg.max_arrival),
                rng.gen_range(1..=cfg.max_size),
            ));
        }
        _ if out.len() > 2 => {
            let i = rng.gen_range(0..out.len());
            out.remove(i);
        }
        _ => {}
    }
    out
}

/// SplitMix64 finalizer: decorrelates per-candidate seeds derived by
/// index from one generation seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One restart's journaled outcome: the instance it converged to, its
/// certified ratio, and the evaluation count. This is the granularity
/// the campaign journal checkpoints a hunt at — a killed hunt resumes
/// at the first unfinished restart.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RestartOutcome {
    arrivals: Vec<u16>,
    sizes: Vec<u16>,
    ratio: f64,
    evaluated: u64,
}

impl RestartOutcome {
    fn jobs(&self) -> Vec<(u16, u16)> {
        self.arrivals
            .iter()
            .copied()
            .zip(self.sizes.iter().copied())
            .collect()
    }
}

/// One seeded restart of the hill climb (extracted from [`hunt`] so the
/// campaign journal can checkpoint per restart).
fn run_restart(policy: Policy, cfg: &HuntConfig, restart_seed: u64) -> RestartOutcome {
    let batch = cfg.batch.max(1);
    let mut evaluated = 0u64;
    let mut rng = StdRng::seed_from_u64(restart_seed);
    let mut cur = random_instance(&mut rng, cfg);
    let mut cur_ratio = loop {
        evaluated += 1;
        if let Some(r) = true_ratio(&build(&cur), policy, cfg) {
            break r;
        }
        cur = random_instance(&mut rng, cfg);
    };
    for _ in 0..cfg.steps {
        // One sequential draw per generation keeps the seed chain
        // identical whatever the evaluation parallelism below.
        let gen_seed: u64 = rng.gen();
        let cands: Vec<Vec<(u16, u16)>> = (0..batch)
            .map(|i| {
                let mut crng = StdRng::seed_from_u64(splitmix64(gen_seed.wrapping_add(i as u64)));
                mutate(&mut crng, &cur, cfg)
            })
            .collect();
        evaluated += batch as u64;
        // The expensive part — one exact-OPT solve per candidate —
        // fans out across cores, order-preserving. Candidate `i`
        // records onto logical track `i + 1` so trace structure is
        // independent of the worker-thread count.
        let indexed: Vec<(u32, &Vec<(u16, u16)>)> = (0u32..).zip(cands.iter()).collect();
        let ratios: Vec<Option<f64>> = indexed
            .par_iter()
            .map(|&(i, c)| {
                let _track = tf_obs::set_track(i + 1);
                true_ratio(&build(c), policy, cfg)
            })
            .collect();
        let mut winner: Option<(usize, f64)> = None;
        for (i, r) in ratios.iter().enumerate() {
            if let Some(r) = *r {
                if r > cur_ratio && winner.is_none_or(|(_, w)| r > w) {
                    winner = Some((i, r));
                }
            }
        }
        if let Some((i, r)) = winner {
            cur_ratio = r;
            cur.clone_from(&cands[i]);
        }
    }
    let (arrivals, sizes) = cur.iter().copied().unzip();
    RestartOutcome {
        arrivals,
        sizes,
        ratio: cur_ratio,
        evaluated,
    }
}

/// Campaign journal key for one restart: policy + every search knob +
/// the restart's index and seed.
fn restart_key(policy: Policy, cfg: &HuntConfig, index: usize, seed: u64) -> String {
    let mut bytes: Vec<u8> = Vec::with_capacity(96);
    bytes.extend_from_slice(policy.to_string().as_bytes());
    bytes.extend_from_slice(&(cfg.m as u64).to_le_bytes());
    bytes.extend_from_slice(&cfg.speed.to_bits().to_le_bytes());
    bytes.extend_from_slice(&cfg.k.to_le_bytes());
    bytes.extend_from_slice(&(cfg.max_jobs as u64).to_le_bytes());
    bytes.extend_from_slice(&cfg.max_size.to_le_bytes());
    bytes.extend_from_slice(&cfg.max_arrival.to_le_bytes());
    bytes.extend_from_slice(&(cfg.steps as u64).to_le_bytes());
    bytes.extend_from_slice(&(cfg.batch as u64).to_le_bytes());
    bytes.extend_from_slice(&(index as u64).to_le_bytes());
    bytes.extend_from_slice(&seed.to_le_bytes());
    format!("hunt:{:016x}", campaign::fingerprint(bytes))
}

/// Hill-climb for the worst certified ratio of `policy` under `cfg`.
///
/// Deterministic in `cfg.seed` regardless of how many threads evaluate
/// each generation: candidates are seeded by index and the accepted
/// winner is the first index attaining the generation's maximum ratio.
///
/// Restart seeds are pre-drawn from the master RNG (the same draw
/// sequence the restart loop used to make inline), so each restart is a
/// pure function of its seed — the unit the campaign journal
/// checkpoints and replays.
pub fn hunt(policy: Policy, cfg: &HuntConfig) -> HuntResult {
    let mut obs_span = tf_obs::span!("harness", "hunt");
    let mut master = StdRng::seed_from_u64(cfg.seed);
    let restart_seeds: Vec<u64> = (0..cfg.restarts).map(|_| master.gen()).collect();

    let mut best_jobs: Vec<(u16, u16)> = Vec::new();
    let mut best_ratio = 0.0f64;
    let mut restart_ratios = Vec::with_capacity(cfg.restarts);
    let mut evaluated = 0usize;

    for (index, &seed) in restart_seeds.iter().enumerate() {
        let outcome = campaign::run_or_replay(&restart_key(policy, cfg, index, seed), || {
            run_restart(policy, cfg, seed)
        });
        evaluated += outcome.evaluated as usize;
        restart_ratios.push(outcome.ratio);
        if outcome.ratio > best_ratio {
            best_ratio = outcome.ratio;
            best_jobs = outcome.jobs();
        }
    }

    if tf_obs::enabled() {
        obs_span.arg("evaluated", evaluated as f64);
        obs_span.arg("ratio", best_ratio);
        tf_obs::counter!("harness", "hunt_evaluated", evaluated as f64);
    }
    HuntResult {
        trace: build(&best_jobs),
        ratio: best_ratio,
        restart_ratios,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HuntConfig {
        HuntConfig {
            steps: 60,
            restarts: 2,
            max_jobs: 6,
            max_arrival: 8,
            max_size: 4,
            ..Default::default()
        }
    }

    #[test]
    fn true_ratio_is_one_for_srpt_l1() {
        // SRPT at speed 1 on one machine IS the optimum for k=1.
        let cfg = HuntConfig {
            k: 1,
            ..quick_cfg()
        };
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (3.0, 2.0)]).unwrap();
        let r = true_ratio(&t, Policy::Srpt, &cfg).unwrap();
        assert!((r - 1.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn hunt_finds_ratio_above_one_for_rr_at_speed_one() {
        let cfg = quick_cfg();
        let res = hunt(Policy::Rr, &cfg);
        assert!(res.ratio > 1.0, "search failed to beat 1.0: {}", res.ratio);
        assert!(!res.trace.is_empty());
        assert!(res.evaluated > 100);
        // Certified: recompute independently.
        let check = true_ratio(&res.trace, Policy::Rr, &cfg).unwrap();
        assert!((check - res.ratio).abs() < 1e-9);
    }

    #[test]
    fn hunting_faster_rr_finds_smaller_ratios() {
        let slow = hunt(Policy::Rr, &quick_cfg());
        let fast = hunt(
            Policy::Rr,
            &HuntConfig {
                speed: 3.0,
                ..quick_cfg()
            },
        );
        assert!(fast.ratio < slow.ratio, "{} vs {}", fast.ratio, slow.ratio);
    }

    #[test]
    fn ratio_none_on_empty() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        assert!(true_ratio(&t, Policy::Rr, &quick_cfg()).is_none());
    }
}

//! Seeded replication: run a measurement across independent seeds and
//! summarize it — mean, sample standard deviation, and extremes — so
//! tables can carry uncertainty instead of single draws.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Summary of replicated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replicates {
    /// Number of replicates.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Replicates {
    /// Summarize a slice of observations.
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Replicates {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Replicates {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Render as `mean ± std` with 4 significant digits.
    pub fn display(&self) -> String {
        format!(
            "{} ± {}",
            crate::table::fnum(self.mean),
            crate::table::fnum(self.std_dev)
        )
    }

    /// Half-width of a ~95% normal confidence interval on the mean
    /// (`1.96·std/√n`; rough — replicates are few).
    pub fn ci95(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Run `measure(seed)` for `seeds` consecutive seeds starting at `base`,
/// in parallel, and summarize.
pub fn replicate<F>(base: u64, seeds: u64, measure: F) -> Replicates
where
    F: Fn(u64) -> f64 + Sync,
{
    let values: Vec<f64> = (0..seeds)
        .into_par_iter()
        .map(|i| measure(base + i))
        .collect();
    Replicates::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let r = Replicates::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(r.n, 3);
        assert!((r.mean - 2.0).abs() < 1e-12);
        assert!((r.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 3.0);
        assert!(r.ci95() > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Replicates::from_values(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.std_dev, 0.0);
        let single = Replicates::from_values(&[5.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.mean, 5.0);
    }

    #[test]
    fn replicate_is_deterministic_and_seed_sensitive() {
        let f = |seed: u64| (seed % 7) as f64;
        let a = replicate(10, 5, f);
        let b = replicate(10, 5, f);
        assert_eq!(a, b);
        let c = replicate(11, 5, f);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn replicated_simulation_reduces_spread() {
        // Real use: mean RR flow over Poisson workloads; more seeds give a
        // tighter CI.
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions};
        use tf_workload::{ArrivalProcess, SizeDist, WorkloadSpec};
        let measure = |seed: u64| {
            let t = WorkloadSpec {
                n: 300,
                arrivals: ArrivalProcess::Poisson { rate: 0.8 },
                sizes: SizeDist::Exponential { mean: 1.0 },
                seed,
            }
            .generate();
            let mut rr = Policy::Rr.make();
            simulate(
                &t,
                rr.as_mut(),
                MachineConfig::new(1),
                SimOptions::default(),
            )
            .unwrap()
            .total_flow()
                / 300.0
        };
        let few = replicate(1, 3, measure);
        let many = replicate(1, 12, measure);
        // Same data prefix → same ballpark mean.
        assert!((few.mean - many.mean).abs() < 3.0 * many.std_dev + 1.0);
        // CI shrinks with n only in expectation — the sample std is itself
        // random — so compare the half-widths at a common std, which leaves
        // exactly the deterministic 1/√n factor.
        let at_common_std = |r: &Replicates| 1.96 * many.std_dev / (r.n as f64).sqrt();
        assert!(at_common_std(&many) < at_common_std(&few));
        assert!(many.ci95().is_finite() && many.ci95() > 0.0);
    }

    #[test]
    fn display_format() {
        let r = Replicates::from_values(&[2.0, 2.0]);
        assert_eq!(r.display(), "2.000 ± 0");
    }
}

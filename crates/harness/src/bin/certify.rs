//! Produce a Theorem 1 dual-fitting certificate for a trace file.
//!
//! ```text
//! certify <trace.json> [--m M] [--k K] [--eps E] [--speed S] [--pretty]
//! ```
//!
//! Reads a JSON trace (as written by `tf_workload::traceio::save_trace`),
//! runs RR at the prescribed speed `2k(1+10ε)` (or `--speed`), builds the
//! Section 3.2 dual variables, checks every inequality, and prints the
//! certificate as JSON on stdout. Exit code 0 iff certified.

use tf_core::{verify_theorem1_at_speed, Certificate};
use tf_workload::traceio::load_trace;

fn usage() -> ! {
    eprintln!("usage: certify <trace.json> [--m M] [--k K] [--eps E] [--speed S] [--pretty]");
    std::process::exit(2);
}

fn main() {
    let mut path = None;
    let mut m = 1usize;
    let mut k = 2u32;
    let mut eps = 0.05f64;
    let mut speed: Option<f64> = None;
    let mut pretty = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--k" => {
                k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--eps" => {
                eps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--speed" => {
                speed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--pretty" => pretty = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else { usage() };
    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read trace {path}: {e}");
            std::process::exit(2);
        }
    };
    let speed = speed.unwrap_or_else(|| tf_core::eta(k, eps));
    let cert: Certificate = match verify_theorem1_at_speed(&trace, m, k, eps, speed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "sim: {} steps ({} arrival, {} completion, {} review, {} adaptive), peak alive {}, {} segments, allocate {:.3} ms",
        cert.sim.steps(),
        cert.sim.arrival_steps,
        cert.sim.completion_steps,
        cert.sim.review_steps,
        cert.sim.adaptive_steps,
        cert.sim.peak_alive,
        cert.sim.segments_recorded,
        cert.sim.alloc_secs() * 1e3,
    );
    let json = if pretty {
        serde_json::to_string_pretty(&cert)
    } else {
        serde_json::to_string(&cert)
    }
    .expect("certificate serializes");
    println!("{json}");
    std::process::exit(if cert.certified() { 0 } else { 1 });
}

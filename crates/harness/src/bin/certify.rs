//! Produce a Theorem 1 dual-fitting certificate for a trace file.
//!
//! ```text
//! certify <trace.json> [--m M] [--k K] [--eps E] [--speed S] [--pretty]
//!         [--threads N] [--trace PATH]
//! ```
//!
//! Reads a JSON trace (as written by `tf_workload::traceio::save_trace`),
//! runs RR at the prescribed speed `2k(1+10ε)` (or `--speed`), builds the
//! Section 3.2 dual variables, checks every inequality, and prints the
//! certificate as JSON on stdout. Exit code 0 iff certified.
//!
//! With `TF_TRACE` set (`jsonl`/`chrome`), the run is traced (default
//! path `certify.jsonl` / `certify.trace.json`, overridable with
//! `--trace`) and the merged counter registry — engine counters plus
//! min-cost-flow solver counters — is printed to stderr.

use tf_core::{verify_theorem1_at_speed, Certificate};
use tf_harness::RunCtx;
use tf_workload::traceio::load_trace;

fn usage() -> ! {
    eprintln!(
        "usage: certify <trace.json> [--m M] [--k K] [--eps E] [--speed S] [--pretty] [--threads N] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut path = None;
    let mut m = 1usize;
    let mut k = 2u32;
    let mut eps = 0.05f64;
    let mut speed: Option<f64> = None;
    let mut pretty = false;
    let mut ctx = RunCtx::full();
    let mut trace_path: Option<std::path::PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--m" => {
                m = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--k" => {
                k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--eps" => {
                eps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--speed" => {
                speed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--pretty" => pretty = true,
            "--threads" => {
                ctx.threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => {
                trace_path = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ))
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => path = Some(other.to_string()),
        }
    }
    ctx.trace = tf_obs::SinkSpec::from_env(trace_path, "certify").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Err(e) = ctx.apply() {
        eprintln!("cannot apply run context: {e}");
        std::process::exit(2);
    }

    let Some(path) = path else { usage() };
    let trace = match load_trace(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read trace {path}: {e}");
            std::process::exit(2);
        }
    };
    let speed = speed.unwrap_or_else(|| tf_core::eta(k, eps));
    let cert: Certificate = {
        let _span = tf_obs::span!("harness", "certify");
        match verify_theorem1_at_speed(&trace, m, k, eps, speed) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simulation failed: {e}");
                std::process::exit(2);
            }
        }
    };
    eprintln!(
        "sim: {} steps ({} arrival, {} completion, {} review, {} adaptive), peak alive {}, {} segments, allocate {:.3} ms",
        cert.sim.steps(),
        cert.sim.arrival_steps,
        cert.sim.completion_steps,
        cert.sim.review_steps,
        cert.sim.adaptive_steps,
        cert.sim.peak_alive,
        cert.sim.segments_recorded,
        cert.sim.alloc_secs() * 1e3,
    );
    if !ctx.trace.is_off() {
        // One flat registry over every layer the run touched: engine
        // step/alloc counters, MCMF solver work, and lb-cache traffic.
        let mut reg = cert.sim.registry();
        reg.merge(&tf_lowerbound::last_solve_stats().registry());
        reg.merge(&tf_harness::lbcache::registry());
        for (key, value) in reg.iter() {
            eprintln!("counter {key} = {value}");
        }
        match tf_obs::flush() {
            Ok(Some(p)) => eprintln!("trace written to {}", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
    let json = if pretty {
        serde_json::to_string_pretty(&cert)
    } else {
        serde_json::to_string(&cert)
    }
    .expect("certificate serializes");
    println!("{json}");
    std::process::exit(if cert.certified() { 0 } else { 1 });
}

//! Grid-sweep CLI: evaluate policies across a JSON-declared grid.
//!
//! ```text
//! sweep <config.json> [--format text|md|csv] [--no-cache] [--threads N] [--trace PATH]
//! ```
//!
//! Example config:
//! ```json
//! {
//!   "instances": [{"Poisson": {"n": 60, "rho": 0.9,
//!                   "sizes": {"Exponential": {"mean": 4.0}}, "seed": 7}}],
//!   "policies": ["rr", "srpt", "laps:0.25"],
//!   "speeds": [1.0, 2.2, 4.4],
//!   "ks": [1, 2],
//!   "ms": [1, 4]
//! }
//! ```
//!
//! Tracing follows `TF_TRACE` (`jsonl`/`chrome`; default output
//! `sweep.jsonl` / `sweep.trace.json`, overridable with `--trace`); when
//! on, a per-stage timing table is printed to stderr after the sweep.

use std::time::Duration;
use tf_harness::campaign::{self, CampaignCfg};
use tf_harness::sweep::{run_sweep, SweepConfig};
use tf_harness::table::timing_table;
use tf_harness::RunCtx;

fn usage() -> ! {
    eprintln!(
        "usage: sweep <config.json> [--format text|md|csv] [--no-cache] [--threads N] [--trace PATH]\n\
         \x20            [--campaign DIR] [--resume] [--task-timeout SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut path = None;
    let mut format = "text".to_string();
    let mut ctx = RunCtx::full();
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut campaign_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut task_timeout: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => format = args.next().unwrap_or_else(|| usage()),
            "--no-cache" => ctx.cache = false,
            "--campaign" => {
                campaign_dir = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ))
            }
            "--resume" => resume = true,
            "--task-timeout" => {
                task_timeout = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                ctx.threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => {
                trace_path = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ))
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => path = Some(other.to_string()),
        }
    }
    ctx.trace = tf_obs::SinkSpec::from_env(trace_path, "sweep").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(dir) = campaign_dir {
        let mut c = CampaignCfg::new(dir).resume(resume);
        if let Some(secs) = task_timeout {
            c = c.task_timeout(Duration::from_secs_f64(secs));
        }
        ctx.campaign = Some(c);
    } else if resume || task_timeout.is_some() {
        eprintln!("--resume/--task-timeout require --campaign DIR");
        usage();
    }
    if let Err(e) = ctx.apply() {
        eprintln!("cannot open campaign directory: {e}");
        std::process::exit(2);
    }

    let Some(path) = path else { usage() };
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let cfg: SweepConfig = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("bad config: {e}");
        std::process::exit(2);
    });
    let table = run_sweep(&cfg).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    let rendered = {
        let _span = tf_obs::span!("harness", "render_table");
        match format.as_str() {
            "text" => table.to_text(),
            "md" | "markdown" => table.to_markdown(),
            "csv" => table.to_csv(),
            _ => usage(),
        }
    };
    println!("{rendered}");
    if let Some(c) = campaign::active() {
        match c.finish(&format!("sweep:{path}")) {
            Ok(m) => eprintln!(
                "campaign: {} replayed, {} computed, {} attempts, {} retries, {} degradations",
                m.replays, m.computed, m.attempts, m.retries, m.degradations
            ),
            Err(e) => eprintln!("campaign: manifest write failed: {e}"),
        }
    }
    if !ctx.trace.is_off() {
        if let Some(t) = timing_table() {
            eprintln!("{}", t.to_text());
        }
        match tf_obs::flush() {
            Ok(Some(p)) => eprintln!("trace written to {}", p.display()),
            Ok(None) => {}
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}

//! Grid-sweep CLI: evaluate policies across a JSON-declared grid.
//!
//! ```text
//! sweep <config.json> [--format text|md|csv]
//! ```
//!
//! Example config:
//! ```json
//! {
//!   "instances": [{"Poisson": {"n": 60, "rho": 0.9,
//!                   "sizes": {"Exponential": {"mean": 4.0}}, "seed": 7}}],
//!   "policies": ["rr", "srpt", "laps:0.25"],
//!   "speeds": [1.0, 2.2, 4.4],
//!   "ks": [1, 2],
//!   "ms": [1, 4]
//! }
//! ```

use tf_harness::sweep::{run_sweep, SweepConfig};

fn usage() -> ! {
    eprintln!("usage: sweep <config.json> [--format text|md|csv] [--no-cache]");
    std::process::exit(2);
}

fn main() {
    let mut path = None;
    let mut format = "text".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => format = args.next().unwrap_or_else(|| usage()),
            "--no-cache" => tf_harness::lbcache::set_enabled(false),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else { usage() };
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let cfg: SweepConfig = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("bad config: {e}");
        std::process::exit(2);
    });
    let table = run_sweep(&cfg).unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(2);
    });
    match format.as_str() {
        "text" => println!("{}", table.to_text()),
        "md" | "markdown" => println!("{}", table.to_markdown()),
        "csv" => println!("{}", table.to_csv()),
        _ => usage(),
    }
}

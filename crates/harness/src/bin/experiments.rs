//! CLI entry point: run experiments and print/persist their tables.
//!
//! ```text
//! experiments [e1 e2 ... | all] [--quick] [--no-cache] [--format text|md|csv]
//!             [--out DIR] [--threads N] [--trace PATH]
//! ```
//!
//! Tracing is controlled by the `TF_TRACE` environment variable (`off`,
//! `jsonl`, `chrome`); `--trace PATH` overrides the default output path
//! (`experiments.jsonl` / `experiments.trace.json`). When tracing is on, a per-stage
//! timing table is printed after the experiment tables and the trace file
//! is written on exit.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;
use tf_harness::campaign::{self, CampaignCfg};
use tf_harness::experiments::{all_ids, family_ids, run_experiment_ctx};
use tf_harness::table::timing_table;
use tf_harness::{Effort, RunCtx, Table};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
}

fn usage() -> ! {
    let ids = all_ids();
    eprintln!(
        "usage: experiments [{first} {second} ... | all | {families}] [--quick] [--no-cache] [--format text|md|csv] [--out DIR] [--threads N] [--trace PATH]\n\
         \x20                  [--campaign DIR] [--resume] [--task-timeout SECS]\n\
         Runs the {first}-{last} experiment suite (see DESIGN.md) and prints the tables.\n\
         Named families ({families}) run only when requested: `stream` pushes 10^7 jobs\n\
         through the bounded-memory open-workload engine and writes BENCH_4.json\n\
         (scale overrides: TF_STREAM_N / TF_STREAM_RHO, comma-separated).\n\
         --no-cache         recompute lower bounds instead of reading results/cache/\n\
         --threads N        fix the worker-thread count (default: one per core)\n\
         --trace PATH       write the TF_TRACE-selected trace format to PATH\n\
         --campaign DIR     journal completed tasks to DIR (crash-safe; see docs/ROBUSTNESS.md)\n\
         --resume           replay completed tasks from the campaign journal\n\
         --task-timeout S   per-task lower-bound budget in seconds (degrades to closed-form)",
        first = ids.first().unwrap_or(&"e1"),
        second = ids.get(1).unwrap_or(&"e2"),
        last = ids.last().unwrap_or(&"e1"),
        families = family_ids().join(" "),
    );
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut ctx = RunCtx::full();
    let mut format = Format::Text;
    let mut trace_path: Option<PathBuf> = None;
    let mut campaign_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut task_timeout: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => ctx.effort = Effort::Quick,
            "--no-cache" => ctx.cache = false,
            "--campaign" => {
                campaign_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--resume" => resume = true,
            "--task-timeout" => {
                task_timeout = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("md") | Some("markdown") => Format::Markdown,
                    Some("csv") => Format::Csv,
                    _ => usage(),
                }
            }
            "--out" => {
                ctx.out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--threads" => {
                ctx.threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace" => trace_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    ctx.trace = tf_obs::SinkSpec::from_env(trace_path, "experiments").unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(dir) = campaign_dir {
        let mut c = CampaignCfg::new(dir).resume(resume);
        if let Some(secs) = task_timeout {
            c = c.task_timeout(Duration::from_secs_f64(secs));
        }
        ctx.campaign = Some(c);
    } else if resume || task_timeout.is_some() {
        eprintln!("--resume/--task-timeout require --campaign DIR");
        usage();
    }
    if let Err(e) = ctx.apply() {
        eprintln!("cannot open campaign directory: {e}");
        std::process::exit(2);
    }

    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_ids().into_iter().map(String::from).collect();
    }

    if let Some(dir) = &ctx.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for id in &ids {
        let Some(tables) = run_experiment_ctx(id, &ctx) else {
            eprintln!(
                "unknown experiment: {id} (known: {}, {})",
                all_ids().join(", "),
                family_ids().join(", ")
            );
            std::process::exit(2);
        };
        for (i, t) in tables.iter().enumerate() {
            let rendered = {
                let _span = tf_obs::span!("harness", "render_table");
                render(t, format)
            };
            println!("{rendered}");
            if let Some(dir) = &ctx.out_dir {
                let ext = match format {
                    Format::Text => "txt",
                    Format::Markdown => "md",
                    Format::Csv => "csv",
                };
                let path = dir.join(format!("{id}_{i}.{ext}"));
                let mut f = std::fs::File::create(&path).expect("create table file");
                f.write_all(rendered.as_bytes()).expect("write table file");
            }
        }
    }

    if let Some(c) = campaign::active() {
        let run_key = format!("experiments:{}:{:?}", ids.join(","), ctx.effort);
        match c.finish(&run_key) {
            Ok(m) => eprintln!(
                "campaign: {} replayed, {} computed, {} attempts, {} retries, {} degradations",
                m.replays, m.computed, m.attempts, m.retries, m.degradations
            ),
            Err(e) => eprintln!("campaign: manifest write failed: {e}"),
        }
    }

    if !ctx.trace.is_off() {
        if let Some(t) = timing_table() {
            eprintln!("{}", t.to_text());
        }
        match tf_obs::flush() {
            Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("trace write failed: {e}"),
        }
    }
}

fn render(t: &Table, f: Format) -> String {
    match f {
        Format::Text => t.to_text(),
        Format::Markdown => t.to_markdown(),
        Format::Csv => t.to_csv(),
    }
}

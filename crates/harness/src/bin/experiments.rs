//! CLI entry point: run experiments and print/persist their tables.
//!
//! ```text
//! experiments [e1 e2 ... | all] [--quick] [--no-cache] [--format text|md|csv] [--out DIR]
//! ```

use std::io::Write;
use std::path::PathBuf;
use tf_harness::experiments::{all_ids, run_experiment};
use tf_harness::{Effort, Table};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
}

fn usage() -> ! {
    let ids = all_ids();
    eprintln!(
        "usage: experiments [{first} {second} ... | all] [--quick] [--no-cache] [--format text|md|csv] [--out DIR]\n\
         Runs the {first}-{last} experiment suite (see DESIGN.md) and prints the tables.\n\
         --no-cache  recompute lower bounds instead of reading results/cache/",
        first = ids.first().unwrap_or(&"e1"),
        second = ids.get(1).unwrap_or(&"e2"),
        last = ids.last().unwrap_or(&"e1"),
    );
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut effort = Effort::Full;
    let mut format = Format::Text;
    let mut out_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--no-cache" => tf_harness::lbcache::set_enabled(false),
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("md") | Some("markdown") => Format::Markdown,
                    Some("csv") => Format::Csv,
                    _ => usage(),
                }
            }
            "--out" => out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_ids().into_iter().map(String::from).collect();
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for id in &ids {
        let Some(tables) = run_experiment(id, effort) else {
            eprintln!("unknown experiment: {id} (known: {})", all_ids().join(", "));
            std::process::exit(2);
        };
        for (i, t) in tables.iter().enumerate() {
            let rendered = render(t, format);
            println!("{rendered}");
            if let Some(dir) = &out_dir {
                let ext = match format {
                    Format::Text => "txt",
                    Format::Markdown => "md",
                    Format::Csv => "csv",
                };
                let path = dir.join(format!("{id}_{i}.{ext}"));
                let mut f = std::fs::File::create(&path).expect("create table file");
                f.write_all(rendered.as_bytes()).expect("write table file");
            }
        }
    }
}

fn render(t: &Table, f: Format) -> String {
    match f {
        Format::Text => t.to_text(),
        Format::Markdown => t.to_markdown(),
        Format::Csv => t.to_csv(),
    }
}

//! Golden equivalence: the streaming engine against the materialised one.
//!
//! [`tf_simcore::simulate_stream`] claims to be *numerically identical*
//! to [`tf_simcore::simulate`] — same admission rule, step selection,
//! arrival snapping, and completion threshold, differing only in what it
//! retains. This suite pins that claim across **every** policy in the
//! registry on closed traces (n ≤ 10³): each streamed completion must
//! match the materialised one bit for bit, not merely within tolerance.
//! Any divergence — a reordered float operation, a different step choice
//! — shows up as a failed `to_bits` comparison naming the first job.
//!
//! A second group pins the streaming accumulators (`tf_metrics`) against
//! the materialised statistics on the same schedules: exact agreement
//! for moments and norms, rank-error-bounded agreement for the t-digest
//! percentiles.

use tf_metrics::{flow_stats, lk_norm, StreamingFlowStats, StreamingNorm};
use tf_policies::Policy;
use tf_simcore::{
    simulate, simulate_stream, CompletedJob, MachineConfig, SimOptions, StreamOptions, Trace,
    TraceSource, ABS_EPS,
};
use tf_workload::{PoissonWorkload, SizeDist};

/// The closed golden instances: (label, trace, machine environment).
fn golden_instances() -> Vec<(String, Trace, MachineConfig)> {
    let mut out = Vec::new();

    // M/G/1 at moderate load, exponential sizes.
    let t = PoissonWorkload::new(400, 0.8, 1, SizeDist::Exponential { mean: 1.0 }, 11).generate();
    out.push(("poisson-exp".into(), t, MachineConfig::new(1)));

    // Heavy-tailed sizes on two machines, briefly overloaded.
    let t = PoissonWorkload::new(
        250,
        1.3,
        2,
        SizeDist::Pareto {
            alpha: 1.8,
            min: 0.5,
        },
        12,
    )
    .generate();
    out.push(("poisson-pareto-m2".into(), t, MachineConfig::new(2)));

    // Tie-heavy integral batch trace: many simultaneous arrivals and
    // equal sizes stress completion-threshold and snapping order.
    let t = Trace::from_pairs((0..300).map(|i| ((i / 10) as f64, 1.0 + (i % 4) as f64))).unwrap();
    out.push(("batched-ties".into(), t, MachineConfig::new(1)));

    // Fractional speed: exercises job_cap clamping and the speed-scaled
    // adaptive step on continuous policies.
    let t =
        PoissonWorkload::new(200, 0.9, 1, SizeDist::Uniform { lo: 0.1, hi: 3.0 }, 13).generate();
    out.push((
        "poisson-uniform-s1.5".into(),
        t,
        MachineConfig::with_speed(1, 1.5),
    ));

    out
}

/// The materialised engine's default adaptive step for `trace` — computed
/// here explicitly so the *same* value can be handed to both engines
/// (`simulate` would derive it internally; `simulate_stream` cannot, as a
/// stream has no whole-trace mean size).
fn engine_default_max_step(trace: &Trace, cfg: &MachineConfig) -> f64 {
    let n = trace.len();
    let mean = if n > 0 {
        trace.total_size() / n as f64
    } else {
        1.0
    };
    (mean / cfg.speed / 64.0).max(ABS_EPS)
}

#[test]
fn streamed_completions_are_bit_identical_for_all_policies() {
    for (label, trace, cfg) in golden_instances() {
        for policy in Policy::all() {
            let mut mat_alloc = policy.make();
            let continuous = mat_alloc.continuous();
            let max_step = continuous.then(|| engine_default_max_step(&trace, &cfg));

            let sched = simulate(
                &trace,
                mat_alloc.as_mut(),
                cfg,
                SimOptions {
                    max_step,
                    ..SimOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{label}/{policy}: materialised run failed: {e}"));

            let mut stream_alloc = policy.make();
            let mut source = TraceSource::new(&trace);
            let mut streamed: Vec<CompletedJob> = Vec::with_capacity(trace.len());
            let report = simulate_stream(
                &mut source,
                stream_alloc.as_mut(),
                cfg,
                StreamOptions {
                    max_step,
                    ..StreamOptions::default()
                },
                &mut |job| streamed.push(job),
            )
            .unwrap_or_else(|e| panic!("{label}/{policy}: streamed run failed: {e}"));

            assert_eq!(
                report.completed as usize,
                trace.len(),
                "{label}/{policy}: not every job completed"
            );
            assert_eq!(
                report.events, sched.events,
                "{label}/{policy}: event counts diverged"
            );
            assert_eq!(
                report.stats.peak_alive, sched.stats.peak_alive,
                "{label}/{policy}: peak alive diverged"
            );

            // Streamed jobs retire in completion order; compare per job id.
            for job in &streamed {
                let id = job.id as usize;
                assert_eq!(
                    job.completion.to_bits(),
                    sched.completion[id].to_bits(),
                    "{label}/{policy}: completion of job {id} diverged \
                     (streamed {} vs materialised {})",
                    job.completion,
                    sched.completion[id]
                );
                assert_eq!(
                    job.flow.to_bits(),
                    sched.flow[id].to_bits(),
                    "{label}/{policy}: flow of job {id} diverged"
                );
            }
        }
    }
}

#[test]
fn streaming_accumulators_match_materialised_stats_on_schedules() {
    for (label, trace, cfg) in golden_instances() {
        // One representative policy per instance is enough here — the
        // accumulators only see the flow vector, not the policy.
        let mut alloc = Policy::Rr.make();
        let sched = simulate(&trace, alloc.as_mut(), cfg, SimOptions::default()).unwrap();

        let mut acc = StreamingFlowStats::new(128);
        let mut l2 = StreamingNorm::new(2.0);
        let mut linf = StreamingNorm::new(f64::INFINITY);
        for &f in &sched.flow {
            acc.push(f);
            l2.push(f);
            linf.push(f);
        }
        let s = acc.finish();
        let exact = flow_stats(&sched.flow);

        assert_eq!(s.n, exact.n, "{label}: n");
        assert_eq!(s.min.to_bits(), exact.min.to_bits(), "{label}: min");
        assert_eq!(s.max.to_bits(), exact.max.to_bits(), "{label}: max");
        let rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1e-300);
        assert!(
            rel(s.total, exact.total),
            "{label}: total {} vs {}",
            s.total,
            exact.total
        );
        assert!(
            rel(s.mean, exact.mean),
            "{label}: mean {} vs {}",
            s.mean,
            exact.mean
        );
        assert!(
            (s.variance - exact.variance).abs() <= 1e-6 * exact.variance.max(1e-300),
            "{label}: variance {} vs {}",
            s.variance,
            exact.variance
        );

        // t-digest percentiles are rank-accurate, not value-accurate: in
        // a heavy tail a handful of ranks can span a wide value range, so
        // the check is on the *rank* of the reported quantile. With
        // compression 128 and n ≤ 10³ the digest holds ≲ 2 samples per
        // centroid, so a few ranks of slack is generous.
        let mut sorted = sched.flow.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let slack = 3.0_f64.max(2.0 * n / 128.0);
        for (q, digest_p) in [(0.5, s.p50), (0.9, s.p90), (0.99, s.p99)] {
            let below = sorted.partition_point(|&x| x < digest_p) as f64;
            let at_or_below = sorted.partition_point(|&x| x <= digest_p) as f64;
            let target = q * n;
            assert!(
                below - slack <= target && target <= at_or_below + slack,
                "{label}: p{q}: digest {digest_p} sits at ranks \
                 [{below}, {at_or_below}] of {n}, target {target} ± {slack}"
            );
        }

        let exact_l2 = lk_norm(&sched.flow, 2.0);
        assert!(
            rel(l2.value(), exact_l2),
            "{label}: l2 {} vs {}",
            l2.value(),
            exact_l2
        );
        assert_eq!(
            linf.value().to_bits(),
            exact.max.to_bits(),
            "{label}: l-infinity"
        );
    }
}

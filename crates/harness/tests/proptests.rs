//! Property tests for harness machinery: ratio brackets and tables.

use proptest::prelude::*;
use tf_harness::ratio::{default_baselines, empirical_ratio};
use tf_harness::table::{fnum, Table};
use tf_policies::Policy;
use tf_simcore::Trace;

fn arb_integral_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u32..15, 1u32..6), 1..12).prop_map(|pairs| {
        Trace::from_pairs(pairs.into_iter().map(|(a, p)| (f64::from(a), f64::from(p))))
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ratio bracket is always ordered: lower estimate ≤ upper
    /// estimate, both positive, and the LB never exceeds the best
    /// baseline.
    #[test]
    fn bracket_is_always_ordered(t in arb_integral_trace(), k in 1u32..3,
                                 speed in 0.5f64..4.0) {
        let r = empirical_ratio(&t, Policy::Rr, 1, speed, k, &default_baselines());
        prop_assert!(r.lower_bound <= r.best_power_sum * (1.0 + 1e-9) + 1e-9);
        prop_assert!(r.ratio_vs_best <= r.ratio_vs_lb * (1.0 + 1e-9) + 1e-9);
        prop_assert!(r.ratio_vs_best > 0.0);
        prop_assert!(r.alg_power_sum > 0.0);
    }

    /// Table rendering never loses rows or columns across the three
    /// formats.
    #[test]
    fn table_renders_consistently(rows in prop::collection::vec(
        prop::collection::vec("[a-z0-9.,]{0,8}", 3..=3), 1..10)) {
        let mut t = Table::new("prop", &["a", "b", "c"]);
        for r in &rows {
            t.push_row(r.clone());
        }
        let text = t.to_text();
        let md = t.to_markdown();
        let csv = t.to_csv();
        // Text: title + header + rule + rows.
        prop_assert_eq!(text.lines().count(), 3 + rows.len());
        // Markdown: title + blank + header + rule + rows.
        prop_assert_eq!(md.lines().count(), 4 + rows.len());
        // CSV: header + rows.
        prop_assert_eq!(csv.lines().count(), 1 + rows.len());
    }

    /// fnum always produces a parseable number with ≤ 7 significant-ish
    /// characters of noise (stable for table diffing).
    #[test]
    fn fnum_is_parseable(x in -1e9f64..1e9) {
        let s = fnum(x);
        let back: f64 = s.parse().unwrap();
        if x != 0.0 {
            prop_assert!(((back - x) / x).abs() < 1e-3, "{x} -> {s}");
        }
    }
}

//! Determinism under parallelism: every rayon-style fan-out in the
//! harness must be order-preserving and seed-driven, so the *same* bytes
//! come out whether the pool has 1 thread or many.
//!
//! Timing cells ("alloc ms") are masked before comparison — they are the
//! one intentionally non-deterministic column in experiment tables.

use std::sync::Mutex;
use tf_harness::hunt::{hunt, HuntConfig};
use tf_harness::{run_experiment, run_experiment_ctx, Effort, RunCtx, Table};
use tf_policies::Policy;

/// The thread override and the lbcache switch are process-global;
/// serialize the tests that flip them.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

/// Render tables to text with every timing column masked.
fn masked_text(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        let timing_cols: Vec<usize> = t
            .headers
            .iter()
            .enumerate()
            .filter_map(|(i, h)| (h == "alloc ms").then_some(i))
            .collect();
        out.push_str(&t.title);
        out.push('\n');
        out.push_str(&t.headers.join("|"));
        out.push('\n');
        for row in &t.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if timing_cols.contains(&i) {
                        "<t>".to_string()
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&cells.join("|"));
            out.push('\n');
        }
        for n in &t.notes {
            out.push_str(n);
            out.push('\n');
        }
    }
    out
}

#[test]
fn hunt_is_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_KNOBS.lock().unwrap();
    let cfg = HuntConfig {
        steps: 25,
        restarts: 2,
        max_jobs: 6,
        max_arrival: 8,
        max_size: 4,
        batch: 5,
        ..Default::default()
    };

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let prev = rayon::set_thread_override(threads);
        let res = hunt(Policy::Rr, &cfg);
        rayon::set_thread_override(prev);
        runs.push(res);
    }

    let (one, many) = (&runs[0], &runs[1]);
    assert_eq!(one.ratio.to_bits(), many.ratio.to_bits());
    assert_eq!(one.evaluated, many.evaluated);
    assert_eq!(one.restart_ratios.len(), many.restart_ratios.len());
    for (a, b) in one.restart_ratios.iter().zip(&many.restart_ratios) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let jobs = |r: &tf_harness::hunt::HuntResult| -> Vec<(u64, u64)> {
        r.trace
            .jobs()
            .iter()
            .map(|j| (j.arrival.to_bits(), j.size.to_bits()))
            .collect()
    };
    assert_eq!(jobs(one), jobs(many));
}

#[test]
fn e1_quick_tables_are_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_KNOBS.lock().unwrap();
    // Bypass the on-disk cache: both runs must exercise the full solver
    // path, and a warm cache would mask order bugs anyway.
    tf_harness::lbcache::set_enabled(false);

    let mut texts = Vec::new();
    for threads in [1usize, 4] {
        let prev = rayon::set_thread_override(threads);
        let tables = run_experiment("e1", Effort::Quick).expect("e1 exists");
        rayon::set_thread_override(prev);
        texts.push(masked_text(&tables));
    }
    tf_harness::lbcache::set_enabled(true);

    assert!(!texts[0].is_empty());
    assert_eq!(
        texts[0], texts[1],
        "e1 tables differ between 1-thread and 4-thread runs"
    );
}

/// Golden trace test: the chrome-trace rendering of a traced `e1 --quick`
/// run is byte-identical whatever the worker-thread count, once the two
/// sanctioned wall-clock fields (`ts`/`dur`, plus the alloc-time counter
/// sample) are masked. Everything else — event kinds, categories, names,
/// logical tracks, per-track order, span args, counter values — must come
/// out of the deterministic (track, seq) pipeline.
#[test]
fn e1_quick_chrome_trace_is_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_KNOBS.lock().unwrap();
    // Cold path both times: a cache hit on one run but not the other
    // would legitimately change the trace.
    tf_harness::lbcache::set_enabled(false);

    let mut rendered = Vec::new();
    for threads in [1usize, 4] {
        let prev = rayon::set_thread_override(threads);
        tf_obs::install_collect();
        let _tables = run_experiment_ctx("e1", &RunCtx::quick()).expect("e1 exists");
        let mut events = tf_obs::take_events();
        tf_obs::install(tf_obs::SinkSpec::Off);
        rayon::set_thread_override(prev);

        for e in &mut events {
            e.ts_ns = 0;
            e.dur_ns = 0;
            if e.name == "alloc_ns" {
                e.value = 0.0;
            }
        }
        rendered.push(tf_obs::render_chrome(&events));
    }
    tf_harness::lbcache::set_enabled(true);

    assert_eq!(
        rendered[0], rendered[1],
        "masked chrome traces differ between 1-thread and 4-thread runs"
    );

    // The rendering is real chrome trace_event JSON with the spans the
    // instrumented layers are supposed to emit.
    let json: serde_json::Value = serde_json::from_str(&rendered[0]).expect("chrome trace parses");
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let has_span = |cat: &str, name: &str| {
        events.iter().any(|e| {
            e.get("cat").and_then(|v| v.as_str()) == Some(cat)
                && e.get("name").and_then(|v| v.as_str()) == Some(name)
                && e.get("ph").and_then(|v| v.as_str()) == Some("X")
        })
    };
    for (cat, name) in [
        ("harness", "e1"),
        ("harness", "ratio_task"),
        ("sim", "simulate"),
        ("lb", "lk_lower_bound"),
        ("lb", "solve"),
        ("mcmf", "solve"),
        ("mcmf", "dijkstra"),
    ] {
        assert!(has_span(cat, name), "missing span {cat}.{name}");
    }
    // Fan-out spans land on task-indexed tracks, not OS thread ids: the
    // ratio tasks must occupy more than one logical track.
    let ratio_tracks: std::collections::BTreeSet<i64> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("ratio_task"))
        .filter_map(|e| match e.get("tid") {
            Some(serde_json::Value::Int(t)) => Some(*t),
            Some(serde_json::Value::UInt(t)) => Some(*t as i64),
            _ => None,
        })
        .collect();
    assert!(
        ratio_tracks.len() > 1,
        "ratio tasks all on one track: {ratio_tracks:?}"
    );
}

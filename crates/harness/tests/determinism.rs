//! Determinism under parallelism: every rayon-style fan-out in the
//! harness must be order-preserving and seed-driven, so the *same* bytes
//! come out whether the pool has 1 thread or many.
//!
//! Timing cells ("alloc ms") are masked before comparison — they are the
//! one intentionally non-deterministic column in experiment tables.

use std::sync::Mutex;
use tf_harness::hunt::{hunt, HuntConfig};
use tf_harness::{run_experiment, Effort, Table};
use tf_policies::Policy;

/// The thread override and the lbcache switch are process-global;
/// serialize the tests that flip them.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

/// Render tables to text with every timing column masked.
fn masked_text(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        let timing_cols: Vec<usize> = t
            .headers
            .iter()
            .enumerate()
            .filter_map(|(i, h)| (h == "alloc ms").then_some(i))
            .collect();
        out.push_str(&t.title);
        out.push('\n');
        out.push_str(&t.headers.join("|"));
        out.push('\n');
        for row in &t.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if timing_cols.contains(&i) {
                        "<t>".to_string()
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&cells.join("|"));
            out.push('\n');
        }
        for n in &t.notes {
            out.push_str(n);
            out.push('\n');
        }
    }
    out
}

#[test]
fn hunt_is_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_KNOBS.lock().unwrap();
    let cfg = HuntConfig {
        steps: 25,
        restarts: 2,
        max_jobs: 6,
        max_arrival: 8,
        max_size: 4,
        batch: 5,
        ..Default::default()
    };

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let prev = rayon::set_thread_override(threads);
        let res = hunt(Policy::Rr, &cfg);
        rayon::set_thread_override(prev);
        runs.push(res);
    }

    let (one, many) = (&runs[0], &runs[1]);
    assert_eq!(one.ratio.to_bits(), many.ratio.to_bits());
    assert_eq!(one.evaluated, many.evaluated);
    assert_eq!(one.restart_ratios.len(), many.restart_ratios.len());
    for (a, b) in one.restart_ratios.iter().zip(&many.restart_ratios) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let jobs = |r: &tf_harness::hunt::HuntResult| -> Vec<(u64, u64)> {
        r.trace
            .jobs()
            .iter()
            .map(|j| (j.arrival.to_bits(), j.size.to_bits()))
            .collect()
    };
    assert_eq!(jobs(one), jobs(many));
}

#[test]
fn e1_quick_tables_are_byte_identical_across_thread_counts() {
    let _guard = GLOBAL_KNOBS.lock().unwrap();
    // Bypass the on-disk cache: both runs must exercise the full solver
    // path, and a warm cache would mask order bugs anyway.
    tf_harness::lbcache::set_enabled(false);

    let mut texts = Vec::new();
    for threads in [1usize, 4] {
        let prev = rayon::set_thread_override(threads);
        let tables = run_experiment("e1", Effort::Quick).expect("e1 exists");
        rayon::set_thread_override(prev);
        texts.push(masked_text(&tables));
    }
    tf_harness::lbcache::set_enabled(true);

    assert!(!texts[0].is_empty());
    assert_eq!(
        texts[0], texts[1],
        "e1 tables differ between 1-thread and 4-thread runs"
    );
}

//! Campaign crash-safety, end to end: the `experiments` binary run under
//! `--campaign` can be SIGKILLed at an arbitrary point and resumed with
//! `--resume` to produce byte-identical tables (modulo the "alloc ms"
//! column, the one intentionally wall-clock cell — the same masking as
//! `tests/determinism.rs`).
//!
//! Spawning the real binary (`CARGO_BIN_EXE_experiments`) is the point:
//! SIGKILL gives no chance to flush or unwind, so surviving it proves the
//! journal's append+flush-per-task discipline, not a graceful shutdown
//! path.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::Duration;
use tf_harness::campaign::Manifest;

const IDS: [&str; 2] = ["e1", "e2"];

fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tf-campaign-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn experiments(campaign: Option<(&Path, bool)>) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    cmd.args(IDS).args(["--quick", "--format", "csv"]);
    if let Some((dir, resume)) = campaign {
        cmd.arg("--campaign").arg(dir);
        if resume {
            cmd.arg("--resume");
        }
    }
    cmd
}

fn run(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Mask every "alloc ms" cell in the CSV table stream (multiple tables,
/// each starting with its own header line).
fn masked_csv(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let mut alloc_col: Option<usize> = None;
    let mut out = String::new();
    for line in text.lines() {
        let cells: Vec<&str> = line.split(',').collect();
        if let Some(i) = cells.iter().position(|c| *c == "alloc ms") {
            alloc_col = Some(i);
            out.push_str(line);
        } else if let Some(i) = alloc_col.filter(|&i| i < cells.len()) {
            let masked: Vec<&str> = cells
                .iter()
                .enumerate()
                .map(|(j, c)| if j == i { "<t>" } else { *c })
                .collect();
            out.push_str(&masked.join(","));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

fn read_manifest(dir: &Path) -> Manifest {
    let text = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest.json exists");
    serde_json::from_str(&text).expect("manifest parses")
}

/// A completed campaign resumed in a fresh process replays everything
/// from the journal — zero recomputation, identical bytes out.
#[test]
fn full_replay_is_byte_identical_and_counted() {
    let dir = scratch("replay");
    let first = run(&mut experiments(Some((&dir, false))));
    let m = read_manifest(&dir);
    assert!(m.computed > 0, "first run must journal tasks: {m:?}");
    assert_eq!(m.replays, 0, "nothing to replay on a fresh run: {m:?}");

    let second = run(&mut experiments(Some((&dir, true))));
    let m2 = read_manifest(&dir);
    assert!(
        m2.replays > 0,
        "resume must replay from the journal: {m2:?}"
    );
    assert_eq!(m2.computed, 0, "a complete journal leaves no work: {m2:?}");

    // Full replay reproduces even the wall-clock cells: the journal holds
    // the first run's tables verbatim.
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "full replay must be byte-identical, unmasked"
    );
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("replayed"),
        "resume must report replay counters on stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL the campaign at an arbitrary mid-run point; `--resume` must
/// complete it to the same masked bytes as an uninterrupted run.
#[test]
fn sigkill_then_resume_matches_uninterrupted_run() {
    let control_dir = scratch("kill-control");
    // --no-cache on every run in this test: warm lower-bound cache would
    // let the victim finish before the kill lands.
    let control = run(experiments(Some((&control_dir, false))).arg("--no-cache"));

    let dir = scratch("kill");
    let mut child = experiments(Some((&dir, false)))
        .arg("--no-cache")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn experiments binary");
    // Kill once the journal holds some-but-not-all tasks: a genuine
    // mid-run kill point, with unflushed work guaranteed to be in flight.
    // If the child beats the poll and exits, the test degenerates to the
    // full-replay case — still a valid resume, just less interesting.
    let journal = dir.join("journal.jsonl");
    for _ in 0..200 {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 3 || child.try_wait().expect("poll child").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();

    let resumed = run(experiments(Some((&dir, true))).arg("--no-cache"));
    assert_eq!(
        masked_csv(&control.stdout),
        masked_csv(&resumed.stdout),
        "kill+resume diverged from the uninterrupted run"
    );
    let m = read_manifest(&dir);
    assert_eq!(
        m.degradations, 0,
        "no timeout was set, nothing may degrade: {m:?}"
    );
    std::fs::remove_dir_all(&control_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Without `--campaign`, `--resume` is rejected (exit 2, usage).
#[test]
fn resume_without_campaign_is_an_error() {
    let out = experiments(None)
        .arg("--resume")
        .output()
        .expect("spawn experiments binary");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--campaign"), "unhelpful error: {stderr}");
}

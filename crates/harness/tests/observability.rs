//! The programmatic observability surface: counters from the engine, the
//! min-cost-flow solver, and the lower-bound cache merge into one flat
//! [`tf_obs::ObsRegistry`] with disjoint namespaces.

use tf_policies::RoundRobin;
use tf_simcore::{Simulation, Trace};

#[test]
fn registries_merge_across_layers() {
    let trace = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0), (4.0, 2.0)]).unwrap();

    let mut rr = RoundRobin::new();
    let sched = Simulation::of(&trace).policy(&mut rr).run().unwrap();
    let mut reg = sched.stats.registry();

    // The shared solver is thread-local: the stats read below must happen
    // on the thread that ran the bound.
    let lb = tf_lowerbound::lk_lower_bound(&trace, 1, 2);
    assert!(lb.value > 0.0);
    reg.merge(&tf_lowerbound::last_solve_stats().registry());
    reg.merge(&tf_harness::lbcache::registry());

    for key in [
        "sim.jobs_admitted",
        "sim.peak_alive",
        "mcmf.phases",
        "mcmf.heap_pops",
        "cache.hits",
    ] {
        assert!(reg.get(key).is_some(), "missing {key}: {reg:?}");
    }
    assert!(reg.get("sim.jobs_admitted").unwrap() >= 4.0);
    assert!(reg.get("mcmf.heap_pops").unwrap() > 0.0);

    // Merging the same engine registry twice sums counters but
    // max-combines gauges.
    let peak = reg.get("sim.peak_alive").unwrap();
    let jobs = reg.get("sim.jobs_admitted").unwrap();
    reg.merge(&sched.stats.registry());
    assert_eq!(reg.get("sim.peak_alive").unwrap(), peak);
    assert_eq!(reg.get("sim.jobs_admitted").unwrap(), jobs * 2.0);
}

//! Property tests: the lower bound must never exceed the objective of any
//! feasible schedule, on arbitrary integral traces.

use proptest::prelude::*;
use tf_lowerbound::lk_lower_bound;
use tf_policies::Policy;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

fn arb_integral_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u32..20, 1u32..8), 1..14).prop_map(|pairs| {
        Trace::from_pairs(pairs.into_iter().map(|(a, p)| (f64::from(a), f64::from(p))))
            .expect("valid jobs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Soundness: LB(Σ F^k) ≤ Σ F^k of every policy at speed 1 (each is a
    /// feasible schedule, so each upper-bounds OPT).
    #[test]
    fn lower_bound_is_sound(t in arb_integral_trace(), m in 1usize..4, k in 1u32..4) {
        let lb = lk_lower_bound(&t, m, k);
        for p in [Policy::Rr, Policy::Srpt, Policy::Sjf, Policy::Setf, Policy::Fcfs] {
            let mut alloc = p.make();
            let s = simulate(&t, alloc.as_mut(), MachineConfig::new(m), SimOptions::default()).unwrap();
            let obj = s.flow_power_sum(f64::from(k));
            prop_assert!(lb.value <= obj * (1.0 + 1e-9) + 1e-9,
                "m={m} k={k} {p}: LB {} > {obj}", lb.value);
        }
    }

    /// The bound is positive on non-empty instances and weakly increasing
    /// in k for sizes ≥ 1 (since p^k and ages^k grow).
    #[test]
    fn bound_positive_and_monotone_in_k(t in arb_integral_trace(), m in 1usize..3) {
        let l1 = lk_lower_bound(&t, m, 1).value;
        let l2 = lk_lower_bound(&t, m, 2).value;
        let l3 = lk_lower_bound(&t, m, 3).value;
        prop_assert!(l1 > 0.0);
        // All sizes ≥ 1 ⇒ F_j ≥ 1 ⇒ power sums nondecreasing in k, and all
        // three component bounds respect that.
        prop_assert!(l2 >= l1 * 0.5 - 1e-9, "{l2} vs {l1}");
        prop_assert!(l3 >= l2 * 0.5 - 1e-9, "{l3} vs {l2}");
    }

    /// The tight (FCFS-makespan) horizon is lossless: extending the LP's
    /// time horizon never changes the optimum (the exchange-argument
    /// justification of `tight_horizon`, validated empirically).
    #[test]
    fn tight_horizon_is_lossless(t in arb_integral_trace(), m in 1usize..3, k in 1u32..3) {
        use tf_lowerbound::lp_relaxation_value_at_horizon;
        let tight = lp_relaxation_value_at_horizon(&t, m, k, false, None);
        let loose = lp_relaxation_value_at_horizon(&t, m, k, false, Some(tight.horizon + 37));
        prop_assert!((tight.objective - loose.objective).abs() <= 1e-9 * tight.objective.max(1.0),
            "tight {} vs loose {}", tight.objective, loose.objective);
    }

    /// Solver equivalence: the optimized arena solver (early-exit
    /// Dijkstra, multi-unit blocking phases, per-job pruning) matches the
    /// PR-1 successive-shortest-paths oracle on random traces across
    /// k ∈ {1,2,3}, m ∈ {1,2,4}, and its flow passes the independent
    /// negative-cycle certificate.
    #[test]
    fn optimized_lp_matches_ssp_oracle_and_certifies(t in arb_integral_trace()) {
        use tf_lowerbound::{lp_relaxation_value_certified, lp_relaxation_value_reference};
        for m in [1usize, 2, 4] {
            for k in [1u32, 2, 3] {
                let fast = lp_relaxation_value_certified(&t, m, k, false);
                let slow = lp_relaxation_value_reference(&t, m, k, false);
                prop_assert_eq!(fast.routed, slow.routed, "m={} k={}", m, k);
                prop_assert!(
                    (fast.objective - slow.objective).abs() <= 1e-6 * (1.0 + slow.objective.abs()),
                    "m={} k={}: optimized {} vs oracle {}", m, k, fast.objective, slow.objective);
            }
        }
    }

    /// End-to-end: the combined bound through the optimized path equals
    /// the bound through the reference path (same winning component).
    #[test]
    fn lower_bound_matches_reference_pipeline(t in arb_integral_trace(), m in 1usize..4, k in 1u32..4) {
        use tf_lowerbound::lk_lower_bound_reference;
        let fast = lk_lower_bound(&t, m, k);
        let slow = lk_lower_bound_reference(&t, m, k);
        prop_assert!((fast.value - slow.value).abs() <= 1e-6 * (1.0 + slow.value.abs()),
            "m={} k={}: {} vs {}", m, k, fast.value, slow.value);
    }

    /// More machines never increase the bound (capacity only helps OPT).
    #[test]
    fn bound_monotone_in_machines(t in arb_integral_trace(), k in 1u32..4) {
        let b1 = lk_lower_bound(&t, 1, k).value;
        let b2 = lk_lower_bound(&t, 2, k).value;
        let b4 = lk_lower_bound(&t, 4, k).value;
        prop_assert!(b2 <= b1 + 1e-9);
        prop_assert!(b4 <= b2 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Warm-start equivalence (audit check X4): chaining dual handles
    /// across a machine-count sweep reproduces every cold exact bound.
    /// The warm path re-validates the remapped potentials before trusting
    /// them, so a stale or corrupt handle can slow a solve down but never
    /// change its value.
    #[test]
    fn warm_chained_colgen_matches_cold(t in arb_integral_trace(), k in 1u32..4) {
        use tf_lowerbound::{lk_lower_bound_colgen_budgeted, LpWarmStart, SolveBudget};
        let unlimited = SolveBudget::unlimited();
        let mut warm: Option<LpWarmStart> = None;
        for m in [1usize, 2, 3] {
            let cold = lk_lower_bound(&t, m, k);
            let (w, next, _) =
                lk_lower_bound_colgen_budgeted(&t, m, k, &unlimited, warm.as_ref())
                    .expect("unlimited budget never trips");
            prop_assert!((w.value - cold.value).abs() <= 1e-6 * (1.0 + cold.value.abs()),
                "m={m} k={k}: warm {} vs cold {}", w.value, cold.value);
            warm = Some(next);
        }
    }

    /// Column generation is exact, not approximate: clean pricing implies
    /// full-LP dual feasibility, so the restricted optimum IS the LP
    /// optimum — on every random trace, from a cold start.
    #[test]
    fn colgen_equals_the_full_lp(t in arb_integral_trace(), m in 1usize..4, k in 1u32..4) {
        use tf_lowerbound::{lk_lower_bound_colgen_budgeted, SolveBudget};
        let exact = lk_lower_bound(&t, m, k);
        let (cg, _, _) =
            lk_lower_bound_colgen_budgeted(&t, m, k, &SolveBudget::unlimited(), None)
                .expect("unlimited budget never trips");
        prop_assert!((cg.value - exact.value).abs() <= 1e-6 * (1.0 + exact.value.abs()),
            "m={m} k={k}: colgen {} vs exact {}", cg.value, exact.value);
        prop_assert!((cg.lp_raw - exact.lp_raw).abs() <= 1e-6 * (1.0 + exact.lp_raw.abs()),
            "m={m} k={k}: colgen LP {} vs exact LP {}", cg.lp_raw, exact.lp_raw);
    }

    /// Aggregation soundness (audit check X5): the interval-aggregated
    /// solve certifies a sandwich `lp_lo ≤ LP ≤ lp_hi` around the exact
    /// LP value, its reported gap is honest, and the combined bound it
    /// derives never beats the exact combined bound.
    #[test]
    fn aggregated_bound_sandwiches_the_exact_lp(t in arb_integral_trace(), m in 1usize..3, k in 1u32..3) {
        use tf_lowerbound::{lk_lower_bound_aggregated, AggConfig, SolveBudget};
        let exact = lk_lower_bound(&t, m, k);
        let agg = lk_lower_bound_aggregated(&t, m, k, &AggConfig::default(), &SolveBudget::unlimited())
            .expect("unlimited budget never trips");
        let tol = 1e-6 * (1.0 + exact.lp_raw.abs());
        prop_assert!(agg.lp_lo <= exact.lp_raw + tol,
            "m={m} k={k}: agg lo {} above exact LP {}", agg.lp_lo, exact.lp_raw);
        prop_assert!(exact.lp_raw <= agg.lp_hi + tol,
            "m={m} k={k}: exact LP {} above agg hi {}", exact.lp_raw, agg.lp_hi);
        prop_assert!(agg.lp_lo <= agg.lp_hi + tol);
        if agg.lp_lo > 0.0 {
            let gap = (agg.lp_hi - agg.lp_lo) / agg.lp_lo;
            prop_assert!((gap - agg.rel_gap).abs() <= 1e-9 * (1.0 + gap), "reported gap is stale");
        }
        prop_assert!(agg.value <= exact.value * (1.0 + 1e-6) + 1e-9,
            "m={m} k={k}: agg bound {} beats exact {}", agg.value, exact.value);
    }
}

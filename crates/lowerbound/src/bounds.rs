//! Cheap combinatorial lower bounds complementing the LP.

use tf_policies::Srpt;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

/// `Σ_j p_j^k`: every job's flow is at least its size on unit-speed
/// machines, so this lower-bounds `Σ_j F_j^k` for any schedule.
pub fn size_bound(trace: &Trace, k: f64) -> f64 {
    trace.jobs().iter().map(|j| j.size.powf(k)).sum()
}

/// The *super-machine* relaxation bound for total (ℓ1) flow time:
/// replace `m` unit-speed machines by one machine of speed `m` **with the
/// per-job one-machine cap removed**. Every feasible `m`-machine schedule
/// remains feasible in the relaxation, and SRPT (work-conserving, full
/// rate on the shortest remaining job) is optimal for total flow time on a
/// single machine — so its relaxed total flow lower-bounds `OPT`'s.
///
/// For `m = 1` this *is* the exact ℓ1 optimum.
pub fn srpt_super_machine_bound(trace: &Trace, m: usize) -> f64 {
    // One machine of speed m; per-job cap equals machine speed, i.e. the
    // relaxation lets one job absorb all m machines — exactly what we want.
    let cfg = MachineConfig::with_speed(1, m as f64);
    let mut srpt = Srpt::new();
    simulate(trace, &mut srpt, cfg, SimOptions::default())
        .expect("SRPT simulation cannot fail on a valid trace")
        .total_flow()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_policies::Policy;

    #[test]
    fn size_bound_values() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 3.0)]).unwrap();
        assert_eq!(size_bound(&t, 1.0), 5.0);
        assert_eq!(size_bound(&t, 2.0), 13.0);
    }

    #[test]
    fn super_machine_bound_is_exact_on_one_machine() {
        let t = Trace::from_pairs([(0.0, 4.0), (1.0, 1.0)]).unwrap();
        // SRPT on one machine: flows 5 and 1 → 6 (see policy tests).
        assert!((srpt_super_machine_bound(&t, 1) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn super_machine_bound_below_every_m_machine_policy() {
        let t = Trace::from_pairs([(0.0, 3.0), (0.0, 1.0), (1.0, 2.0), (3.0, 1.0)]).unwrap();
        for m in [2usize, 3] {
            let lb = srpt_super_machine_bound(&t, m);
            for p in Policy::all() {
                let mut alloc = p.make();
                let f = simulate(
                    &t,
                    alloc.as_mut(),
                    MachineConfig::new(m),
                    SimOptions::default(),
                )
                .unwrap()
                .total_flow();
                assert!(lb <= f + 1e-9, "m={m} {p}: {lb} > {f}");
            }
        }
    }

    #[test]
    fn super_machine_relaxation_can_beat_any_real_schedule() {
        // With m=2 and one big job, the relaxation halves its flow —
        // strictly below what any real 2-machine schedule achieves.
        let t = Trace::from_pairs([(0.0, 4.0)]).unwrap();
        let lb = srpt_super_machine_bound(&t, 2);
        assert!((lb - 2.0).abs() < 1e-9);
    }
}

//! Cooperative solve budgets.
//!
//! Long-running campaigns cannot afford one adversarial instance wedging
//! a worker: the MCMF substrate under the LP relaxation is polynomial
//! but its constants grow with the time horizon, and a fuzzer (or a
//! user) will eventually feed it something slow. A [`SolveBudget`]
//! carries an optional wall-clock deadline and an optional shared cancel
//! flag; the solver polls it at phase boundaries and every few thousand
//! heap operations, so a budgeted solve returns `None` within
//! milliseconds of the deadline instead of being killed mid-write or
//! running forever.
//!
//! Budgets are *cooperative*: exceeding one abandons the solve cleanly
//! (no partial result is ever reported as a bound — a partial flow's
//! cost is not a valid LP value). Callers that need an answer anyway
//! fall back to the closed-form bounds, recording the degradation — see
//! `tf-harness`'s campaign layer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock deadline and/or external cancel flag for one solve.
///
/// Cheap to clone (an `Instant` and an `Arc`); [`SolveBudget::unlimited`]
/// never trips and compiles down to two branch-predicted loads per poll.
#[derive(Clone, Debug, Default)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// A budget that never trips: the solve runs to completion.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Trip once `timeout` of wall clock has elapsed from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        SolveBudget {
            deadline: Some(Instant::now() + timeout),
            cancel: None,
        }
    }

    /// Trip at the given instant.
    pub fn with_deadline(deadline: Instant) -> Self {
        SolveBudget {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// Also trip when `flag` becomes `true` (e.g. a supervising thread
    /// or signal handler requesting cancellation).
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Whether this budget can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Poll the budget: `true` once the deadline has passed or the
    /// cancel flag is set. Monotone — once `true`, always `true`.
    pub fn exhausted(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Time left until the deadline (`None` if no deadline is set;
    /// zero once exhausted).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let b = SolveBudget::with_timeout(Duration::ZERO);
        assert!(!b.is_unlimited());
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = SolveBudget::with_timeout(Duration::from_secs(3600));
        assert!(!b.exhausted());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_flag_trips_independently_of_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = SolveBudget::with_timeout(Duration::from_secs(3600)).cancelled_by(flag.clone());
        assert!(!b.exhausted());
        flag.store(true, Ordering::Relaxed);
        assert!(b.exhausted());
    }
}

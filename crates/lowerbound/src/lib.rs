#![warn(missing_docs)]

//! # tf-lowerbound — certified lower bounds on `OPT`'s ℓk flow
//!
//! Competitive ratios compare an algorithm to the *optimal clairvoyant
//! offline schedule*, which is intractable to compute exactly for ℓk flow
//! on multiple machines. The paper sidesteps OPT the same way we do: its
//! analysis (Section 3.1) lower-bounds OPT by a time-indexed LP relaxation
//! and proves
//!
//! ```text
//!   LP  ≤  2 · Σ_j F_j^k(OPT)        (with the γ factor stripped)
//! ```
//!
//! because for any feasible schedule, `Σ_t x_jt (t−r_j)^k / p_j ≤ F_j^k`
//! and `Σ_t x_jt p_j^k / p_j = p_j^k ≤ F_j^k`.
//!
//! We compute that LP **exactly** for integral traces by casting it as a
//! min-cost transportation problem (jobs supply `p_j` units; unit time
//! slots have capacity `m`; the per-job per-slot rate cap of a feasible
//! schedule adds edge capacity 1) and solving it with our own
//! successive-shortest-paths min-cost-flow solver ([`mcmf`]).
//!
//! Two cheaper bounds complement it:
//! * [`bounds::size_bound`] — `Σ_j p_j^k`, since `F_j ≥ p_j` at speed 1;
//! * [`bounds::srpt_super_machine_bound`] — for ℓ1: SRPT on a single
//!   speed-`m` machine with relaxed per-job cap is optimal for the
//!   relaxation, hence a lower bound; *exact* OPT when `m = 1, k = 1`.
//!
//! [`lk_lower_bound`] combines them and reports which bound won.
//!
//! ## Audited continuously
//!
//! Two `tf-audit` checks gate this crate (see `docs/VALIDATION.md`):
//! `X1-LB-DOMINANCE` fuzzes the dominance `lk_lower_bound ≤ Σ_j F_j^k`
//! against every registered policy's measured speed-1 schedule (each one
//! is feasible, so a violation indicts the bound), and `X3-SOLVER-EQUIV`
//! pins the optimized solver to [`lk_lower_bound_reference`] — the PR-1
//! unit-augmenting implementation retained as an executable oracle — on
//! both the combined bound and the raw LP value.

pub mod agg;
pub mod bounds;
pub mod budget;
pub mod exact;
pub mod lp;
pub mod mcmf;

pub use agg::{lk_lower_bound_aggregated, AggConfig, AggregatedBound};
pub use bounds::{size_bound, srpt_super_machine_bound};
pub use budget::SolveBudget;
pub use exact::{exact_slotted_opt, ExactLimits, ExactResult};
pub use lp::{
    last_solve_stats, lp_relaxation_solution, lp_relaxation_value, lp_relaxation_value_at_horizon,
    lp_relaxation_value_budgeted, lp_relaxation_value_certified,
    lp_relaxation_value_colgen_budgeted, lp_relaxation_value_reference,
    lp_relaxation_value_warm_budgeted, lp_relaxation_value_weighted, LpSchedule, LpSolution,
    LpSolver, LpWarmStart, SSP_CROSSOVER_JOBS,
};
pub use mcmf::{FlowResult, McmfGraph, McmfStats, MinCostFlow, WarmStart};

use serde::{Deserialize, Serialize};
use tf_simcore::Trace;

/// Which component produced the winning lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BoundKind {
    /// `Σ p_j^k`.
    Size,
    /// Time-indexed LP relaxation / 2.
    Lp,
    /// SRPT on the speed-`m` super machine (ℓ1 only).
    SrptSuperMachine,
    /// Interval-aggregated LP relaxation / 2, with a certified
    /// aggregation gap (see [`agg`]). Still a rigorous lower bound —
    /// the gap only measures distance to the *exact* LP value.
    LpAgg,
}

impl BoundKind {
    /// Short provenance label for tables and bench records.
    pub fn label(self) -> &'static str {
        match self {
            BoundKind::Size => "size",
            BoundKind::Lp => "lp/2",
            BoundKind::SrptSuperMachine => "srpt-m",
            BoundKind::LpAgg => "lp-agg",
        }
    }
}

/// A certified lower bound on `Σ_j F_j^k` of the optimal speed-1 schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowerBound {
    /// The bound value (on the k-th *power sum*, not the norm).
    pub value: f64,
    /// Which component bound was largest.
    pub kind: BoundKind,
    /// The LP relaxation value before halving (0 if LP was skipped).
    pub lp_raw: f64,
}

impl LowerBound {
    /// The implied lower bound on the ℓk *norm*: `value^{1/k}`.
    pub fn norm(&self, k: f64) -> f64 {
        self.value.powf(1.0 / k)
    }
}

/// Best available lower bound on `Σ_j F_j^k` for the optimal schedule on
/// `m` unit-speed machines.
///
/// The trace must be integral (integer arrivals and sizes) for the exact
/// LP component; call [`Trace::to_integral`] first otherwise — note the
/// rounded instance's bound certifies the rounded instance, so experiments
/// generate integral traces directly.
///
/// `k` must be a positive integer value (the paper's setting; the LP cost
/// uses exact integer powers).
pub fn lk_lower_bound(trace: &Trace, m: usize, k: u32) -> LowerBound {
    let mut obs_span = tf_obs::span!("lb", "lk_lower_bound");
    obs_span.arg("n", trace.len() as f64);
    obs_span.arg("m", m as f64);
    obs_span.arg("k", f64::from(k));
    let kf = f64::from(k);
    let size = size_bound(trace, kf);
    let mut best = LowerBound {
        value: size,
        kind: BoundKind::Size,
        lp_raw: 0.0,
    };

    if trace.is_integral(1e-9) && !trace.is_empty() {
        let lp = lp_relaxation_value(trace, m, k);
        best.lp_raw = lp.objective;
        let half = lp.objective / 2.0;
        if half > best.value {
            best.value = half;
            best.kind = BoundKind::Lp;
        }
    }

    if k == 1 {
        let srpt = srpt_super_machine_bound(trace, m);
        if srpt > best.value {
            best.value = srpt;
            best.kind = BoundKind::SrptSuperMachine;
        }
    }
    best
}

/// A lower bound plus the record of whether its LP component was
/// abandoned for budget reasons (see [`lk_lower_bound_budgeted`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetedBound {
    /// The best bound obtained within the budget. Always a *valid*
    /// lower bound — degradation only weakens it, never corrupts it.
    pub bound: LowerBound,
    /// `true` if the LP solve was abandoned and the bound fell back to
    /// the closed-form components. Degraded bounds must not be cached
    /// as if they were the full bound.
    pub degraded: bool,
}

/// [`lk_lower_bound`] under a cooperative [`SolveBudget`]: if the LP
/// relaxation (the only super-linear component) exceeds the budget, the
/// solve is abandoned cleanly and the result degrades to the best
/// closed-form bound ([`size_bound`], and for `k = 1` the SRPT
/// super-machine bound) with `degraded = true`. The campaign layer in
/// `tf-harness` records that provenance in the output row instead of
/// failing the run.
pub fn lk_lower_bound_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &SolveBudget,
) -> BudgetedBound {
    if budget.is_unlimited() {
        return BudgetedBound {
            bound: lk_lower_bound(trace, m, k),
            degraded: false,
        };
    }
    let mut obs_span = tf_obs::span!("lb", "lk_lower_bound");
    obs_span.arg("n", trace.len() as f64);
    obs_span.arg("m", m as f64);
    obs_span.arg("k", f64::from(k));
    let kf = f64::from(k);
    let size = size_bound(trace, kf);
    let mut best = LowerBound {
        value: size,
        kind: BoundKind::Size,
        lp_raw: 0.0,
    };
    let mut degraded = false;

    if trace.is_integral(1e-9) && !trace.is_empty() {
        match lp::lp_relaxation_value_budgeted(trace, m, k, budget) {
            Some(lp) => {
                best.lp_raw = lp.objective;
                let half = lp.objective / 2.0;
                if half > best.value {
                    best.value = half;
                    best.kind = BoundKind::Lp;
                }
            }
            None => {
                degraded = true;
                tf_obs::instant!("lb", "budget_degraded");
            }
        }
    }

    if k == 1 {
        let srpt = srpt_super_machine_bound(trace, m);
        if srpt > best.value {
            best.value = srpt;
            best.kind = BoundKind::SrptSuperMachine;
        }
    }
    BudgetedBound {
        bound: best,
        degraded,
    }
}

/// [`lk_lower_bound_budgeted`] with the LP component solved by delayed
/// column generation ([`LpSolver::value_colgen_budgeted`]) — the same
/// exact LP optimum (certified by full-column dual pricing), reached by
/// building only each job's active slots. This is the scale path: at
/// `n = 5000` the full network has tens of millions of arcs, the
/// column-generated one a few hundred thousand.
///
/// Takes and returns an [`LpWarmStart`] handle so sweep/hunt neighbours
/// chain their duals; pass `None` for a standalone solve. Returns `None`
/// iff `budget` tripped — the caller degrades to closed-form bounds
/// (and must not cache), exactly like [`lk_lower_bound_budgeted`].
pub fn lk_lower_bound_colgen_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &SolveBudget,
    warm: Option<&LpWarmStart>,
) -> Option<(LowerBound, LpWarmStart, bool)> {
    let mut obs_span = tf_obs::span!("lb", "lk_lower_bound_colgen");
    obs_span.arg("n", trace.len() as f64);
    obs_span.arg("m", m as f64);
    obs_span.arg("k", f64::from(k));
    let kf = f64::from(k);
    let size = size_bound(trace, kf);
    let mut best = LowerBound {
        value: size,
        kind: BoundKind::Size,
        lp_raw: 0.0,
    };
    let mut handle = LpWarmStart::default();
    let mut accepted = false;

    if trace.is_integral(1e-9) && !trace.is_empty() {
        let (lp, h, acc) = lp::lp_relaxation_value_colgen_budgeted(trace, m, k, budget, warm)?;
        handle = h;
        accepted = acc;
        best.lp_raw = lp.objective;
        let half = lp.objective / 2.0;
        if half > best.value {
            best.value = half;
            best.kind = BoundKind::Lp;
        }
    }

    if k == 1 {
        let srpt = srpt_super_machine_bound(trace, m);
        if srpt > best.value {
            best.value = srpt;
            best.kind = BoundKind::SrptSuperMachine;
        }
    }
    Some((best, handle, accepted))
}

/// [`lk_lower_bound`] computed through the PR-1 reference LP solver
/// ([`lp_relaxation_value_reference`]). A test oracle: slower, but its
/// solve path is the one the optimized solver is property-tested
/// against, so disagreements localize to the solver rewrite.
pub fn lk_lower_bound_reference(trace: &Trace, m: usize, k: u32) -> LowerBound {
    let kf = f64::from(k);
    let size = size_bound(trace, kf);
    let mut best = LowerBound {
        value: size,
        kind: BoundKind::Size,
        lp_raw: 0.0,
    };

    if trace.is_integral(1e-9) && !trace.is_empty() {
        let lp = lp_relaxation_value_reference(trace, m, k, false);
        best.lp_raw = lp.objective;
        let half = lp.objective / 2.0;
        if half > best.value {
            best.value = half;
            best.kind = BoundKind::Lp;
        }
    }

    if k == 1 {
        let srpt = srpt_super_machine_bound(trace, m);
        if srpt > best.value {
            best.value = srpt;
            best.kind = BoundKind::SrptSuperMachine;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_policies::Policy;
    use tf_simcore::{simulate, MachineConfig, SimOptions};

    #[test]
    fn lower_bound_never_exceeds_any_policy() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2, 3] {
                let lb = lk_lower_bound(&t, m, k);
                for p in Policy::all() {
                    let mut alloc = p.make();
                    let s = simulate(
                        &t,
                        alloc.as_mut(),
                        MachineConfig::new(m),
                        SimOptions::default(),
                    )
                    .unwrap();
                    let obj = s.flow_power_sum(f64::from(k));
                    assert!(
                        lb.value <= obj * (1.0 + 1e-9) + 1e-9,
                        "m={m} k={k} {p}: LB {} > objective {obj}",
                        lb.value
                    );
                }
            }
        }
    }

    #[test]
    fn exact_for_single_job() {
        // One job (0, 3): OPT flow = 3. k=1: Σ F = 3.
        let t = Trace::from_pairs([(0.0, 3.0)]).unwrap();
        let lb = lk_lower_bound(&t, 1, 1);
        assert!((lb.value - 3.0).abs() < 1e-9, "{lb:?}");
        // Size bound and the SRPT super-machine bound tie at 3.0 here;
        // either may be reported.
        assert!(matches!(
            lb.kind,
            BoundKind::Size | BoundKind::SrptSuperMachine
        ));
    }

    #[test]
    fn l1_single_machine_bound_is_tight_srpt() {
        // SRPT is optimal on one machine for l1: the bound must equal it.
        let t = Trace::from_pairs([(0.0, 4.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        let mut srpt = Policy::Srpt.make();
        let opt = simulate(
            &t,
            srpt.as_mut(),
            MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap()
        .total_flow();
        let lb = lk_lower_bound(&t, 1, 1);
        assert!(
            (lb.value - opt).abs() < 1e-9,
            "LB {} vs OPT {opt}",
            lb.value
        );
    }

    #[test]
    fn norm_takes_kth_root() {
        let lb = LowerBound {
            value: 27.0,
            kind: BoundKind::Size,
            lp_raw: 0.0,
        };
        assert!((lb.norm(3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_gives_zero() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let lb = lk_lower_bound(&t, 1, 2);
        assert_eq!(lb.value, 0.0);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for (m, k) in [(1usize, 1u32), (2, 2), (1, 3)] {
            let full = lk_lower_bound(&t, m, k);
            let b = lk_lower_bound_budgeted(&t, m, k, &SolveBudget::unlimited());
            assert!(!b.degraded);
            assert_eq!(b.bound, full);
        }
    }

    #[test]
    fn exhausted_budget_degrades_to_closed_form_and_stays_valid() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        for (m, k) in [(1usize, 1u32), (2, 2)] {
            let b = lk_lower_bound_budgeted(&t, m, k, &spent);
            assert!(b.degraded, "zero budget must skip the LP (m={m} k={k})");
            assert_eq!(b.bound.lp_raw, 0.0);
            assert!(!matches!(b.bound.kind, BoundKind::Lp));
            // Degraded is weaker, never invalid: it lower-bounds the
            // full bound, which lower-bounds every feasible schedule.
            let full = lk_lower_bound(&t, m, k);
            assert!(b.bound.value <= full.value * (1.0 + 1e-12));
            assert!(b.bound.value > 0.0);
        }
    }

    #[test]
    fn cancel_flag_aborts_budgeted_solve() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (2.0, 3.0)]).unwrap();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let b = lk_lower_bound_budgeted(
            &t,
            1,
            2,
            &SolveBudget::with_timeout(std::time::Duration::from_secs(3600)).cancelled_by(flag),
        );
        assert!(b.degraded);
    }
}

//! Certified interval-aggregated LP lower bounds (`lp-agg(±δ)`).
//!
//! The exact time-indexed LP (see [`crate::lp`]) has one arc per
//! (job, slot) pair: at `n = 5000` Poisson-loaded jobs that is tens of
//! millions of arcs — unbuildable, let alone solvable. This module
//! solves the LP on a **coarsened interval grid** instead and certifies
//! how much was lost, sandwiching the exact LP value between two
//! rigorous bounds:
//!
//! * **Lower side `V_lo ≤ LP`** — jobs route flow to *intervals*
//!   `I = [a, b)` rather than slots. The arc for job `j` and interval
//!   `I` has capacity `min(|I ∩ [r_j, H_j)|, p_j)` (the per-slot rate
//!   cap `x_jt ≤ 1` aggregated over the overlap) and cost
//!   `c_j(max(a, r_j))` — the *cheapest* slot of the overlap, since
//!   per-job slot costs increase with `t`. Interval `I`'s capacity to
//!   the sink is `m · |I|`. Any exact optimal solution supported below
//!   the per-job horizons (one always exists — the pruning exchange
//!   argument in `docs/SOLVER.md`) maps into this network with no more
//!   cost, so the aggregated *optimum* is at most the exact LP value.
//! * **Upper side `V_hi ≥ LP`** — the aggregated optimum is
//!   *disaggregated* into an explicit feasible solution of the exact
//!   LP: every unit of interval flow is re-placed on a concrete slot by
//!   a left-to-right sweep that serves, per slot, up to `m` distinct
//!   jobs with released pending work (oldest release first). The sweep
//!   enforces every exact-LP constraint (`t ≥ r_j`, per-slot cap `m`,
//!   per-job per-slot cap 1, all `p_j` units placed), so its true cost
//!   is the value of a feasible point — an upper bound on the exact
//!   minimum. Slots may spill past the build horizon; the exact LP has
//!   no upper time limit, so that stays feasible.
//!
//! `δ = V_hi − V_lo` then bounds the aggregation error: the exact LP
//! value lies in `[V_lo, V_hi]`, and `V_lo / 2` is a certified lower
//! bound on `OPT`'s k-th power sum exactly as in the exact pipeline —
//! only weaker by at most `δ/2`, never wrong. Reported provenance is
//! `lp-agg(±δ)`; results are **never** written to the exact lb cache
//! (the cache key embeds the aggregation discriminator — see
//! `tf-harness`'s `lbcache`).
//!
//! Refinement: intervals whose flow spans the widest cost range (the
//! per-interval residual `Σ_j f_jI · (c_j(last slot) − c_j(first
//! slot))`, an upper bound on what splitting that interval can recover)
//! are split at their midpoint and the instance re-solved, warm-started
//! from the previous grid's duals (children inherit the parent
//! interval's potential; the solver revalidates before trusting them).
//! A grid refined all the way to unit width *is* the exact LP, so the
//! loop converges; in practice a few rounds reach `δ ≤ 1%`.

use crate::budget::SolveBudget;
use crate::lp::{ipow, job_horizon, tight_horizon};
use crate::mcmf::{McmfGraph, WarmStart};
use crate::{size_bound, srpt_super_machine_bound, BoundKind};
use serde::{Deserialize, Serialize};
use tf_simcore::Trace;

/// Poll cadence for the disaggregation sweep, matching the solver's
/// `BUDGET_POLL_POPS` discipline.
const BUDGET_POLL_SLOTS: u64 = 4096;

/// Tuning for [`lk_lower_bound_aggregated`].
#[derive(Debug, Clone, Copy)]
pub struct AggConfig {
    /// Stop refining once `(V_hi − V_lo) / V_lo` is at or below this.
    pub target_rel_gap: f64,
    /// Hard cap on refinement rounds (each round re-solves the grid).
    pub max_refinements: u32,
    /// Geometric growth factor of the initial interval widths: slot-fine
    /// near `t = 0` (where most cost concentrates) and coarse late.
    pub growth: f64,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            target_rel_gap: 0.01,
            max_refinements: 24,
            growth: 1.10,
        }
    }
}

/// A certified aggregated lower bound: `value` is a rigorous lower
/// bound on `Σ_j F_j^k` of the optimal schedule, `rel_gap` certifies
/// how far the aggregated LP can be from the exact one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregatedBound {
    /// The certified bound on the k-th power sum: the best of
    /// `lp_lo / 2`, the size bound, and (for `k = 1`) the SRPT
    /// super-machine bound.
    pub value: f64,
    /// Which component won `value`.
    pub kind: BoundKind,
    /// Aggregated LP optimum — a lower bound on the exact LP value.
    pub lp_lo: f64,
    /// Cost of the explicit disaggregated feasible solution — an upper
    /// bound on the exact LP value.
    pub lp_hi: f64,
    /// Certified relative aggregation gap `(lp_hi − lp_lo) / lp_lo`.
    pub rel_gap: f64,
    /// Intervals in the final grid.
    pub intervals: usize,
    /// Refinement rounds performed (0 = initial grid sufficed).
    pub refinements: u32,
}

impl AggregatedBound {
    /// The implied lower bound on the ℓk *norm*: `value^{1/k}`.
    pub fn norm(&self, k: f64) -> f64 {
        self.value.powf(1.0 / k)
    }
}

/// One job→interval arc of the aggregated network, with everything the
/// disaggregation and refinement passes need to re-read it.
struct AggArc {
    job: u32,
    interval: u32,
    /// First usable slot of the overlap: `max(a, r_j)`.
    lo: u64,
    /// One past the last usable slot: `min(b, H_j)`.
    hi: u64,
    edge_id: usize,
}

/// Per-job constants hoisted out of the build loops.
struct JobInfo {
    r: u64,
    p: i64,
    size: f64,
    pk: f64,
    h_j: u64,
}

/// Exact per-unit slot cost of job `j` at slot `t ≥ r_j`.
#[inline]
fn slot_cost(job: &JobInfo, t: u64, k: u32) -> f64 {
    (ipow((t - job.r) as f64, k) + job.pk) / job.size
}

/// Initial geometric grid boundaries `0 = b_0 < … < b_K = horizon`.
fn initial_grid(horizon: u64, growth: f64) -> Vec<u64> {
    let mut bounds = vec![0u64];
    let mut width = 1.0f64;
    let mut cur = 0u64;
    while cur < horizon {
        let step = (width.round() as u64).max(1);
        cur = (cur + step).min(horizon);
        bounds.push(cur);
        width *= growth;
    }
    bounds
}

/// Certified lower bound on `Σ_j F_j^k` via the interval-aggregated LP,
/// with a certified aggregation gap. Returns `None` iff `budget`
/// tripped (a partial aggregated solve certifies nothing and must not
/// be cached — the harness degrades to closed-form bounds instead).
///
/// # Panics
/// If the trace is not integral, `k = 0`, `m = 0`, or the solver's dual
/// certificate fails (solver bug, never an input property).
pub fn lk_lower_bound_aggregated(
    trace: &Trace,
    m: usize,
    k: u32,
    cfg: &AggConfig,
    budget: &SolveBudget,
) -> Option<AggregatedBound> {
    assert!(k >= 1, "k must be at least 1");
    assert!(m >= 1);
    assert!(
        trace.is_integral(1e-9),
        "aggregated LP needs integral traces"
    );
    assert!(
        cfg.growth >= 1.0 && cfg.growth.is_finite(),
        "growth must be ≥ 1"
    );
    let kf = f64::from(k);
    if trace.is_empty() {
        return Some(AggregatedBound {
            value: 0.0,
            kind: BoundKind::Size,
            lp_lo: 0.0,
            lp_hi: 0.0,
            rel_gap: 0.0,
            intervals: 0,
            refinements: 0,
        });
    }

    let mut obs_span = tf_obs::span!("lb", "lk_lower_bound_agg");
    obs_span.arg("n", trace.len() as f64);
    obs_span.arg("m", m as f64);
    obs_span.arg("k", kf);

    let horizon = tight_horizon(trace, m);
    let total_work: i64 = trace.jobs().iter().map(|j| j.size.round() as i64).sum();
    let jobs: Vec<JobInfo> = trace
        .jobs()
        .iter()
        .map(|j| {
            let p = j.size.round() as i64;
            let r = j.arrival.round() as u64;
            JobInfo {
                r,
                p,
                size: j.size,
                pk: ipow(j.size, k),
                h_j: job_horizon(horizon, r, p, total_work - p, m),
            }
        })
        .collect();

    let mut bounds = initial_grid(horizon, cfg.growth);
    let mut graph = McmfGraph::new();
    let mut warm: Option<WarmStart> = None;
    let mut refinements = 0u32;
    // Diagnostics for tuning runs, off in normal operation.
    let log = std::env::var_os("TF_AGG_LOG").is_some();
    let t0 = std::time::Instant::now();
    let (lp_lo, lp_hi, intervals) = loop {
        let (v_lo, v_hi, arcs) =
            solve_grid(&mut graph, &jobs, &bounds, m, k, warm.as_ref(), budget)?;
        let rel_gap = (v_hi - v_lo) / v_lo.max(f64::MIN_POSITIVE);
        if log {
            let st = graph.stats();
            eprintln!(
                "agg: n={} round={refinements} intervals={} gap={rel_gap:.5} elapsed={:.2?} \
                 phases={} pops={} arcs_scanned={} pushes={} fallbacks={}",
                jobs.len(),
                bounds.len() - 1,
                t0.elapsed(),
                st.phases,
                st.heap_pops,
                st.arcs_scanned,
                st.blocking_pushes,
                st.fallback_augments
            );
        }
        if rel_gap <= cfg.target_rel_gap || refinements >= cfg.max_refinements {
            break (v_lo, v_hi, bounds.len() - 1);
        }
        let split = pick_splits(&graph, &jobs, &bounds, &arcs, k);
        if split.is_empty() {
            break (v_lo, v_hi, bounds.len() - 1); // grid already slot-exact where it matters
        }
        let old_bounds = std::mem::take(&mut bounds);
        bounds = refine_grid(&old_bounds, &split);
        warm = Some(remap_interval_potentials(
            &graph,
            jobs.len(),
            &old_bounds,
            &bounds,
        ));
        refinements += 1;
        tf_obs::instant!("lb", "agg_refine");
    };

    let mut best = AggregatedBound {
        value: lp_lo / 2.0,
        kind: BoundKind::LpAgg,
        lp_lo,
        lp_hi,
        rel_gap: (lp_hi - lp_lo) / lp_lo.max(f64::MIN_POSITIVE),
        intervals,
        refinements,
    };
    let size = size_bound(trace, kf);
    if size > best.value {
        best.value = size;
        best.kind = BoundKind::Size;
    }
    if k == 1 {
        let srpt = srpt_super_machine_bound(trace, m);
        if srpt > best.value {
            best.value = srpt;
            best.kind = BoundKind::SrptSuperMachine;
        }
    }
    obs_span.arg("rel_gap", best.rel_gap);
    obs_span.arg("intervals", intervals as f64);
    Some(best)
}

/// Build the aggregated network for `bounds`, solve it (warm-started
/// when a handle is given), certify the duals, and disaggregate.
/// Returns `(V_lo, V_hi, arcs)`; `None` iff the budget tripped.
fn solve_grid(
    graph: &mut McmfGraph,
    jobs: &[JobInfo],
    bounds: &[u64],
    m: usize,
    k: u32,
    warm: Option<&WarmStart>,
    budget: &SolveBudget,
) -> Option<(f64, f64, Vec<AggArc>)> {
    let n = jobs.len();
    let intervals = bounds.len() - 1;
    let source = 0usize;
    let job0 = 1usize;
    let iv0 = job0 + n;
    let sink = iv0 + intervals;

    let mut arcs: Vec<AggArc> = Vec::new();
    let mut total_supply = 0i64;
    {
        let mut s = tf_obs::span!("lb", "build");
        graph.reset(sink + 1);
        for (ji, job) in jobs.iter().enumerate() {
            total_supply += job.p;
            graph.add_edge(source, job0 + ji, job.p, 0.0);
            // Intervals overlapping [r_j, h_j): binary search the first.
            let start = bounds.partition_point(|&b| b <= job.r) - 1;
            for iv in start..intervals {
                let a = bounds[iv];
                if a >= job.h_j {
                    break;
                }
                let lo = a.max(job.r);
                let hi = bounds[iv + 1].min(job.h_j);
                if hi <= lo {
                    continue;
                }
                let cap = ((hi - lo) as i64).min(job.p);
                let cost = slot_cost(job, lo, k);
                let edge_id = graph.add_edge(job0 + ji, iv0 + iv, cap, cost);
                arcs.push(AggArc {
                    job: ji as u32,
                    interval: iv as u32,
                    lo,
                    hi,
                    edge_id,
                });
            }
        }
        for iv in 0..intervals {
            let width = (bounds[iv + 1] - bounds[iv]) as i64;
            graph.add_edge(iv0 + iv, sink, m as i64 * width, 0.0);
        }
        s.arg("jobs", n as f64);
        s.arg("intervals", intervals as f64);
        s.arg("arcs", arcs.len() as f64);
    }

    let (res, _warm_accepted) = {
        let _s = tf_obs::span!("lb", "solve");
        graph.solve_warm_budgeted(source, sink, total_supply, warm, budget)?
    };
    assert_eq!(
        res.flow, total_supply,
        "aggregated grid must be feasible by construction"
    );
    // O(E) dual certificate: the aggregated V_lo is only a sound bound
    // if this solve is *optimal*, so a failure here is a solver bug and
    // certification failures are hard errors, as everywhere else.
    {
        let _s = tf_obs::span!("lb", "certify");
        assert!(
            graph.certify_current_duals(),
            "aggregated LP solve left dual-infeasible potentials"
        );
    }
    let v_hi = disaggregate(graph, jobs, &arcs, m, k, total_supply, budget)?;
    assert!(
        v_hi >= res.cost - 1e-9 * (1.0 + res.cost.abs()),
        "disaggregated cost {v_hi} below aggregated optimum {} — \
         the sandwich inverted, which certifies a bug",
        res.cost
    );
    Some((res.cost, v_hi, arcs))
}

/// Disaggregate the solved interval flow into an explicit feasible
/// exact-LP solution and return its true cost (`V_hi`).
///
/// Left-to-right sweep: a unit of flow on arc `(j, I)` becomes pending
/// at `lo = max(a, r_j)`; each slot serves up to `m` distinct pending
/// jobs, oldest release first, one unit each (so `t ≥ r_j`, per-slot
/// `≤ m`, per-job per-slot `≤ 1` all hold by construction). Pending
/// work may spill past the interval — and the horizon — which only
/// raises this upper bound, never breaks feasibility.
fn disaggregate(
    graph: &McmfGraph,
    jobs: &[JobInfo],
    arcs: &[AggArc],
    m: usize,
    k: u32,
    total_supply: i64,
    budget: &SolveBudget,
) -> Option<f64> {
    // (activation, job, units) chunks, sorted by activation slot.
    let mut chunks: Vec<(u64, u32, i64)> = arcs
        .iter()
        .filter_map(|a| {
            let f = graph.flow_on(a.edge_id);
            (f > 0).then_some((a.lo, a.job, f))
        })
        .collect();
    chunks.sort_unstable();

    let mut pending = vec![0i64; jobs.len()];
    let mut active: std::collections::BTreeSet<(u64, u32)> = std::collections::BTreeSet::new();
    let mut served_jobs: Vec<(u64, u32)> = Vec::with_capacity(m);
    let mut idx = 0usize;
    let mut remaining = total_supply;
    let mut t = chunks.first().map_or(0, |c| c.0);
    let mut v_hi = 0.0f64;
    let poll_budget = !budget.is_unlimited();
    let mut slots_swept = 0u64;
    while remaining > 0 {
        slots_swept += 1;
        if poll_budget && slots_swept.is_multiple_of(BUDGET_POLL_SLOTS) && budget.exhausted() {
            return None;
        }
        while idx < chunks.len() && chunks[idx].0 <= t {
            let (_, j, units) = chunks[idx];
            if pending[j as usize] == 0 {
                active.insert((jobs[j as usize].r, j));
            }
            pending[j as usize] += units;
            idx += 1;
        }
        if active.is_empty() {
            // Jump to the next activation instead of sweeping dead air.
            t = chunks[idx].0;
            continue;
        }
        served_jobs.clear();
        for &(r, j) in active.iter().take(m) {
            pending[j as usize] -= 1;
            v_hi += slot_cost(&jobs[j as usize], t, k);
            if pending[j as usize] == 0 {
                served_jobs.push((r, j));
            }
            remaining -= 1;
        }
        for key in &served_jobs {
            active.remove(key);
        }
        t += 1;
    }
    Some(v_hi)
}

/// Rank intervals by the cost range their flow spans —
/// `Σ_j f_jI · (c_j(hi−1) − c_j(lo))`, an upper bound on what refining
/// interval `I` to unit width could recover — and return the indices
/// worth splitting (width ≥ 2, residual within 4× of the worst).
fn pick_splits(
    graph: &McmfGraph,
    jobs: &[JobInfo],
    bounds: &[u64],
    arcs: &[AggArc],
    k: u32,
) -> Vec<usize> {
    let intervals = bounds.len() - 1;
    let mut residual = vec![0.0f64; intervals];
    for a in arcs {
        let f = graph.flow_on(a.edge_id);
        if f > 0 && a.hi - a.lo >= 2 {
            let job = &jobs[a.job as usize];
            let span = slot_cost(job, a.hi - 1, k) - slot_cost(job, a.lo, k);
            residual[a.interval as usize] += f as f64 * span;
        }
    }
    let max_residual = residual.iter().cloned().fold(0.0f64, f64::max);
    if max_residual <= 0.0 {
        return Vec::new();
    }
    (0..intervals)
        .filter(|&iv| bounds[iv + 1] - bounds[iv] >= 2 && residual[iv] >= max_residual / 4.0)
        .collect()
}

/// New boundary list with each selected interval split at its midpoint.
fn refine_grid(bounds: &[u64], split: &[usize]) -> Vec<u64> {
    let mut is_split = vec![false; bounds.len() - 1];
    for &iv in split {
        is_split[iv] = true;
    }
    let mut out = Vec::with_capacity(bounds.len() + split.len());
    for iv in 0..bounds.len() - 1 {
        out.push(bounds[iv]);
        if is_split[iv] {
            out.push(bounds[iv] + (bounds[iv + 1] - bounds[iv]) / 2);
        }
    }
    out.push(*bounds.last().unwrap());
    out
}

/// Carry the old grid's duals onto the refined grid: source, jobs, and
/// sink keep theirs; each new interval inherits the potential of the
/// old interval containing its start. The solver's repair sweep +
/// feasibility revalidation decide whether to trust the result.
fn remap_interval_potentials(
    graph: &McmfGraph,
    n: usize,
    old_bounds: &[u64],
    new_bounds: &[u64],
) -> WarmStart {
    let pot = graph.potentials();
    let old_intervals = old_bounds.len() - 1;
    let new_intervals = new_bounds.len() - 1;
    debug_assert_eq!(pot.len(), 2 + n + old_intervals);
    let mut out = Vec::with_capacity(2 + n + new_intervals);
    out.extend_from_slice(&pot[..1 + n]); // source + jobs
    for &start in new_bounds.iter().take(new_intervals) {
        let parent = old_bounds.partition_point(|&b| b <= start) - 1;
        out.push(pot[1 + n + parent.min(old_intervals - 1)]);
    }
    out.push(pot[1 + n + old_intervals]); // sink
    WarmStart::from_potentials(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lk_lower_bound, lp_relaxation_value};

    fn poisson_like(n: usize) -> Trace {
        // Deterministic, integral, bursty-ish arrivals with mixed sizes.
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i / 3) as f64, (1 + (i * 13 + 5) % 5) as f64))
            .collect();
        Trace::from_pairs(pairs).unwrap()
    }

    #[test]
    fn sandwich_brackets_the_exact_lp() {
        for n in [12usize, 40, 100] {
            let t = poisson_like(n);
            for (m, k) in [(1usize, 1u32), (2, 2), (4, 2)] {
                let exact = lp_relaxation_value(&t, m, k);
                let agg = lk_lower_bound_aggregated(
                    &t,
                    m,
                    k,
                    &AggConfig::default(),
                    &SolveBudget::unlimited(),
                )
                .unwrap();
                let tol = 1e-9 * (1.0 + exact.objective.abs());
                assert!(
                    agg.lp_lo <= exact.objective + tol,
                    "n={n} m={m} k={k}: V_lo {} above exact {}",
                    agg.lp_lo,
                    exact.objective
                );
                assert!(
                    agg.lp_hi >= exact.objective - tol,
                    "n={n} m={m} k={k}: V_hi {} below exact {}",
                    agg.lp_hi,
                    exact.objective
                );
                assert!(agg.rel_gap >= -1e-12);
                assert!(
                    agg.rel_gap <= AggConfig::default().target_rel_gap + 1e-12,
                    "n={n} m={m} k={k}: refinement stalled at gap {}",
                    agg.rel_gap
                );
            }
        }
    }

    #[test]
    fn aggregated_bound_is_a_valid_lower_bound() {
        // The headline property: value never exceeds the exact pipeline's
        // certified bound by more than fp noise (it lower-bounds the same
        // OPT through a weaker LP).
        let t = poisson_like(60);
        for (m, k) in [(1usize, 1u32), (2, 2)] {
            let exact = lk_lower_bound(&t, m, k);
            let agg = lk_lower_bound_aggregated(
                &t,
                m,
                k,
                &AggConfig::default(),
                &SolveBudget::unlimited(),
            )
            .unwrap();
            assert!(
                agg.value <= exact.value * (1.0 + 1e-9) + 1e-9,
                "m={m} k={k}: aggregated {} above exact {}",
                agg.value,
                exact.value
            );
            assert!(agg.value > 0.0);
        }
    }

    #[test]
    fn unit_width_grid_is_exact() {
        // growth = 1.0 → every interval is one slot → V_lo = V_hi = LP.
        let t = poisson_like(20);
        let cfg = AggConfig {
            growth: 1.0,
            ..AggConfig::default()
        };
        let exact = lp_relaxation_value(&t, 2, 2);
        let agg = lk_lower_bound_aggregated(&t, 2, 2, &cfg, &SolveBudget::unlimited()).unwrap();
        let tol = 1e-9 * (1.0 + exact.objective.abs());
        assert!((agg.lp_lo - exact.objective).abs() <= tol);
        assert!((agg.lp_hi - exact.objective).abs() <= tol);
        assert_eq!(agg.refinements, 0);
    }

    #[test]
    fn budget_trips_cleanly() {
        let t = poisson_like(80);
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(lk_lower_bound_aggregated(&t, 2, 2, &AggConfig::default(), &spent).is_none());
    }

    #[test]
    fn empty_trace_gives_zero() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let agg =
            lk_lower_bound_aggregated(&t, 1, 2, &AggConfig::default(), &SolveBudget::unlimited())
                .unwrap();
        assert_eq!(agg.value, 0.0);
        assert_eq!(agg.rel_gap, 0.0);
    }
}

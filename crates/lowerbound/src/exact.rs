//! Exact optimum over *slot-structured* schedules for tiny instances.
//!
//! A slot-structured schedule processes, in every unit time slot, at most
//! `m` distinct jobs for one unit each (respecting release dates). Every
//! such schedule is feasible in the paper's model, so the minimum
//! `Σ_j F_j^k` over them is a genuine **upper bound on OPTᵏ** — usually
//! far tighter than the best-policy upper bound the ratio brackets
//! otherwise use. On a single machine the unit-serialization exchange
//! argument makes it exactly OPTᵏ for integral instances.
//!
//! The search is exhaustive (DFS over per-slot job subsets) with
//! memoization on `(slot, remaining-work vector)`; intended for
//! `n ≲ 8` and short horizons — exactly the regime where closing the
//! bracket matters (experiment E11c).

use std::collections::HashMap;
use tf_simcore::Trace;

/// Result of the exact search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactResult {
    /// Minimum `Σ F^k` over slot-structured schedules.
    pub power_sum: f64,
    /// Number of memoized states explored.
    pub states: usize,
}

/// Search limits to keep the exponential tool polite.
#[derive(Debug, Clone, Copy)]
pub struct ExactLimits {
    /// Give up beyond this many memo states (returns `None`).
    pub max_states: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_states: 2_000_000,
        }
    }
}

struct Search {
    arrivals: Vec<u16>,
    k: u32,
    m: usize,
    horizon: u16,
    memo: HashMap<(u16, Vec<u16>), f64>,
    limits: ExactLimits,
    exceeded: bool,
}

impl Search {
    /// Minimum total remaining cost from slot `t` with remaining work
    /// `rem` (0 = done). Completion of job `j` in slot `t` costs
    /// `(t + 1 − r_j)^k`.
    fn solve(&mut self, t: u16, rem: &[u16]) -> f64 {
        if rem.iter().all(|&r| r == 0) {
            return 0.0;
        }
        if t >= self.horizon {
            return f64::INFINITY; // ran out of time (horizon is generous)
        }
        if self.exceeded {
            return f64::NAN;
        }
        let key = (t, rem.to_vec());
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        if self.memo.len() >= self.limits.max_states {
            self.exceeded = true;
            return f64::NAN;
        }

        // Candidates: released, unfinished jobs.
        let avail: Vec<usize> = (0..rem.len())
            .filter(|&j| rem[j] > 0 && self.arrivals[j] <= t)
            .collect();
        let mut best = f64::INFINITY;
        // Enumerate subsets of size ≤ m. Idling inside a busy state is
        // never optimal with monotone costs, but subsets *smaller* than m
        // matter when fewer jobs are available; we enumerate all subsets
        // up to size m (including the empty one only when forced).
        let subsets = enumerate_subsets(&avail, self.m);
        for subset in &subsets {
            let mut next = rem.to_vec();
            let mut completion_cost = 0.0;
            for &j in subset {
                next[j] -= 1;
                if next[j] == 0 {
                    let flow = f64::from(t + 1 - self.arrivals[j]);
                    completion_cost += flow.powi(self.k as i32);
                }
            }
            let sub = self.solve(t + 1, &next);
            let total = completion_cost + sub;
            if total < best {
                best = total;
            }
        }
        if subsets.is_empty() {
            // Nothing released yet: idle one slot.
            best = self.solve(t + 1, rem);
        }
        self.memo.insert(key, best);
        best
    }
}

/// All non-empty subsets of `avail` with size ≤ m (plus nothing if
/// `avail` is empty — handled by the caller).
fn enumerate_subsets(avail: &[usize], m: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let n = avail.len();
    if n == 0 {
        return out;
    }
    // Bitmask enumeration; n is tiny here.
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) <= m {
            out.push(
                (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| avail[i])
                    .collect(),
            );
        }
    }
    out
}

/// Exact minimum `Σ F^k` over slot-structured schedules on `m` unit-speed
/// machines, or `None` if the instance is too large for the state budget.
///
/// # Panics
/// If the trace is not integral.
pub fn exact_slotted_opt(
    trace: &Trace,
    m: usize,
    k: u32,
    limits: ExactLimits,
) -> Option<ExactResult> {
    let _obs_span = tf_obs::span!("lb", "exact_opt");
    assert!(
        trace.is_integral(1e-9),
        "exact search needs integral traces"
    );
    assert!(m >= 1 && k >= 1);
    if trace.is_empty() {
        return Some(ExactResult {
            power_sum: 0.0,
            states: 0,
        });
    }
    let sizes: Vec<u16> = trace.jobs().iter().map(|j| j.size.round() as u16).collect();
    let arrivals: Vec<u16> = trace
        .jobs()
        .iter()
        .map(|j| j.arrival.round() as u16)
        .collect();
    let horizon = (trace.makespan_upper_bound(1.0)).ceil() as u16 + 1;

    let mut s = Search {
        arrivals,
        k,
        m,
        horizon,
        memo: HashMap::new(),
        limits,
        exceeded: false,
    };
    let v = s.solve(0, &sizes);
    if s.exceeded || !v.is_finite() {
        None
    } else {
        Some(ExactResult {
            power_sum: v,
            states: s.memo.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_policies::Policy;
    use tf_simcore::{simulate, MachineConfig, SimOptions};

    fn exact(t: &Trace, m: usize, k: u32) -> f64 {
        exact_slotted_opt(t, m, k, ExactLimits::default())
            .unwrap()
            .power_sum
    }

    #[test]
    fn single_job() {
        let t = Trace::from_pairs([(0.0, 3.0)]).unwrap();
        assert_eq!(exact(&t, 1, 1), 3.0);
        assert_eq!(exact(&t, 1, 2), 9.0);
    }

    #[test]
    fn matches_srpt_for_l1_single_machine() {
        // SRPT is exactly optimal for l1 on one machine; the slotted
        // search must reproduce it on integral instances.
        for pairs in [
            vec![(0.0, 4.0), (1.0, 1.0)],
            vec![(0.0, 2.0), (0.0, 3.0), (2.0, 1.0)],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (3.0, 2.0)],
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            let mut srpt = Policy::Srpt.make();
            let opt = simulate(
                &t,
                srpt.as_mut(),
                MachineConfig::new(1),
                SimOptions::default(),
            )
            .unwrap()
            .total_flow();
            assert!((exact(&t, 1, 1) - opt).abs() < 1e-9);
        }
    }

    #[test]
    fn never_worse_than_any_policy_and_never_below_lp() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 2.0), (3.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2, 3] {
                let ex = exact(&t, m, k);
                // Upper-bound property: no worse than simulated policies...
                // policies are fractional, so they can only be matched or
                // beaten by the slotted optimum on one machine; on m≥2
                // fractional sharing can beat slotted schedules in
                // principle, so only check the LP side there.
                let lp = crate::lp::lp_relaxation_value(&t, m, k);
                assert!(ex >= lp.objective / 2.0 - 1e-9, "m={m} k={k}");
                if m == 1 {
                    for p in [Policy::Srpt, Policy::Sjf, Policy::Rr] {
                        let mut a = p.make();
                        let v =
                            simulate(&t, a.as_mut(), MachineConfig::new(m), SimOptions::default())
                                .unwrap()
                                .flow_power_sum(f64::from(k));
                        assert!(ex <= v + 1e-9, "m={m} k={k} {p}: exact {ex} > {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallelism_helps() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 2.0)]).unwrap();
        let one = exact(&t, 1, 2);
        let two = exact(&t, 2, 2);
        assert!(two < one);
        assert_eq!(two, 8.0); // both finish at 2: 4 + 4
    }

    #[test]
    fn respects_release_dates() {
        let t = Trace::from_pairs([(5.0, 1.0)]).unwrap();
        assert_eq!(exact(&t, 1, 1), 1.0);
    }

    #[test]
    fn state_budget_gives_none() {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 6.0)).collect();
        let t = Trace::from_pairs(pairs).unwrap();
        let r = exact_slotted_opt(&t, 2, 2, ExactLimits { max_states: 10 });
        assert!(r.is_none());
    }

    #[test]
    fn k2_prefers_balanced_tails() {
        // Two jobs (0,1) and (0,3), one machine.
        // Orders: short first: F = 1, 4 → 1+16 = 17 (k=2).
        //         long first:  F = 3, 4 → 9+16 = 25. Interleavings worse.
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 3.0)]).unwrap();
        assert_eq!(exact(&t, 1, 2), 17.0);
    }
}

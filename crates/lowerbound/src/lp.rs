//! The paper's time-indexed LP relaxation (Section 3.1), solved exactly.
//!
//! Variables `x_jt` = units of work done on job `j` during unit slot
//! `[t, t+1)`, for integral traces:
//!
//! ```text
//!   min   Σ_j Σ_{t ≥ r_j} x_jt · ((t − r_j)^k + p_j^k) / p_j
//!   s.t.  Σ_t x_jt = p_j                (every job fully processed)
//!         Σ_j x_jt ≤ m                  (machine capacity per slot)
//!         x_jt ≤ 1                      (one machine per job per slot)
//!         x_jt ≥ 0
//! ```
//!
//! The cost uses the slot's *start* `t`, the smallest age in the slot, so
//! every feasible speed-1 schedule's indicator solution costs at most
//! `2 Σ_j F_j^k` — the LP optimum divided by 2 is a valid lower bound on
//! `OPT`'s k-th power sum. (We strip the paper's scaling constant γ, which
//! multiplies both sides.)
//!
//! All capacities are integers, so the LP is a transportation polytope
//! with integral vertices; the min-cost flow solver returns its exact
//! optimum.
//!
//! Two solve paths exist. The hot path is [`LpSolver`] — a reusable
//! arena around [`McmfGraph`] with **per-job horizon pruning** (job `j`
//! only gets arcs to slots below `r_j + p_j + ⌈W_j/m⌉ + 1`, where `W_j`
//! is the other jobs' total work — see `docs/SOLVER.md` for the exchange
//! argument) — the free functions route through one thread-local
//! instance so sweeps stop reallocating. The reference path
//! ([`lp_relaxation_value_reference`]) keeps the PR-1 successive-
//! shortest-paths build verbatim as a property-test oracle.

use crate::mcmf::{McmfGraph, McmfStats, MinCostFlow};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use tf_policies::Fcfs;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

/// Exact solution of the LP relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// The LP objective value.
    pub objective: f64,
    /// Time horizon (number of unit slots considered).
    pub horizon: u64,
    /// Units of work routed (= Σ p_j when feasible; always feasible for
    /// the generous horizon used).
    pub routed: i64,
}

/// Integer power helper (exact for the exponents the paper uses).
#[inline]
fn ipow(base: f64, k: u32) -> f64 {
    base.powi(k as i32)
}

/// Tight LP horizon: the makespan of a concrete non-idling feasible
/// schedule (FCFS on `m` unit-speed machines), rounded up, plus one slot.
///
/// Soundness: that schedule is itself a feasible LP solution inside
/// `[0, H)`. Every per-job slot cost is nondecreasing in `t`, so by the
/// standard transportation exchange argument any optimal solution can be
/// rerouted off slots `≥ H` without increasing cost — restricting the
/// horizon to `H` preserves the optimum while shrinking the network by an
/// order of magnitude on moderately loaded instances.
fn tight_horizon(trace: &Trace, m: usize) -> u64 {
    let mut fcfs = Fcfs::new();
    let sched = simulate(
        trace,
        &mut fcfs,
        MachineConfig::new(m),
        SimOptions::default(),
    )
    .expect("FCFS on a valid trace cannot fail");
    (sched.makespan()).ceil() as u64 + 1
}

/// The optimal LP *solution* (not just its value): per-job slot
/// assignments `x_jt > 0`, plus derived fractional completion times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSchedule {
    /// For each job (by id): `(slot, units)` pairs with positive flow,
    /// sorted by slot.
    pub assignments: Vec<Vec<(u64, i64)>>,
    /// Fractional completion per job: the end of its last used slot.
    pub completion: Vec<f64>,
    /// Objective value (same as the matching [`LpSolution`]).
    pub objective: f64,
}

impl LpSchedule {
    /// Work assigned to job `j` (must equal `p_j` for a feasible
    /// solution).
    pub fn work_of(&self, job: usize) -> i64 {
        self.assignments[job].iter().map(|&(_, u)| u).sum()
    }

    /// Per-slot total load (for capacity verification).
    pub fn slot_loads(&self) -> std::collections::BTreeMap<u64, i64> {
        let mut loads = std::collections::BTreeMap::new();
        for a in &self.assignments {
            for &(t, u) in a {
                *loads.entry(t).or_insert(0) += u;
            }
        }
        loads
    }
}

/// Per-job slot horizon (exclusive): `min(H, r_j + p_j + ⌈W_j/m⌉ + 1)`
/// where `W_j` is the total work of the *other* jobs.
///
/// Soundness (exchange argument, `docs/SOLVER.md`): take an integral
/// optimal solution and reroute job `j`'s units greedily to the earliest
/// slots with spare capacity — costs are nondecreasing in `t`, so this
/// never increases the objective and never moves any other job. In the
/// window starting at `r_j`, a slot is unavailable to `j` only if `j`
/// already uses it (≤ p_j slots) or other jobs fill all `m` units
/// (≤ ⌊W_j/m⌋ slots), so all of `j`'s work fits below the bound. Arcs at
/// or beyond it can be dropped without changing the LP optimum.
fn job_horizon(global: u64, r: u64, p: i64, others_work: i64, m: usize) -> u64 {
    let spill = (others_work + m as i64 - 1) / m as i64;
    global.min(r + p as u64 + spill as u64 + 1)
}

/// Reusable LP-relaxation solver: one [`McmfGraph`] arena plus edge-id
/// scratch, so sweeps solving many instances (e1/e11/e13, the
/// `min_speed_for_ratio` bisection) stop reallocating per call. The free
/// functions in this module route through a shared thread-local
/// instance; hold your own `LpSolver` only for tight loops where even
/// the thread-local lookup matters.
#[derive(Debug, Default)]
pub struct LpSolver {
    graph: McmfGraph,
    edge_ids: Vec<Vec<(u64, usize)>>,
}

/// Node layout + supply of a built LP network.
struct BuiltLp {
    total_supply: i64,
    source: usize,
    sink: usize,
}

impl LpSolver {
    /// A fresh arena (allocates lazily on first solve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the transportation network for `trace` into the arena.
    /// When `record` is set, per-job `(slot, edge_id)` pairs land in
    /// `self.edge_ids` for assignment extraction.
    fn build(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        horizon: u64,
        record: bool,
    ) -> BuiltLp {
        let n = trace.len();
        let slots = horizon as usize;
        // Nodes: source, jobs, slots, sink.
        let source = 0usize;
        let job0 = 1usize;
        let slot0 = job0 + n;
        let sink = slot0 + slots;
        self.graph.reset(sink + 1);
        if record {
            self.edge_ids.clear();
            self.edge_ids.resize_with(n, Vec::new);
        }
        let total_work: i64 = trace.jobs().iter().map(|j| j.size.round() as i64).sum();
        let mut total_supply: i64 = 0;
        for (ji, j) in trace.jobs().iter().enumerate() {
            let p = j.size.round() as i64;
            let r = j.arrival.round() as u64;
            total_supply += p;
            self.graph.add_edge(source, job0 + ji, p, 0.0);
            let pk = ipow(j.size, k);
            let w = if weighted { j.weight } else { 1.0 };
            let h_j = job_horizon(horizon, r, p, total_work - p, m);
            for t in r..h_j {
                let age = (t - r) as f64;
                let cost = w * (ipow(age, k) + pk) / j.size;
                let id = self.graph.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
                if record {
                    self.edge_ids[ji].push((t, id));
                }
            }
        }
        for t in 0..slots {
            self.graph.add_edge(slot0 + t, sink, m as i64, 0.0);
        }
        BuiltLp {
            total_supply,
            source,
            sink,
        }
    }

    /// As [`lp_relaxation_value_at_horizon`], on this arena.
    pub fn value_at_horizon(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        horizon_override: Option<u64>,
    ) -> LpSolution {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return LpSolution {
                objective: 0.0,
                horizon: 0,
                routed: 0,
            };
        }
        let tight = tight_horizon(trace, m);
        let horizon = match horizon_override {
            Some(h) => {
                assert!(h >= tight, "horizon override below the feasible minimum");
                h
            }
            None => tight,
        };
        let b = {
            let mut s = tf_obs::span!("lb", "build");
            let b = self.build(trace, m, k, weighted, horizon, false);
            s.arg("jobs", trace.len() as f64);
            s.arg("horizon", horizon as f64);
            b
        };
        let r = {
            let _s = tf_obs::span!("lb", "solve");
            self.graph.solve(b.source, b.sink, b.total_supply)
        };
        debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
        LpSolution {
            objective: r.cost,
            horizon,
            routed: r.flow,
        }
    }

    /// As [`LpSolver::value_at_horizon`] (tight horizon), but abandons
    /// the solve and returns `None` once `budget` trips. The arena stays
    /// reusable — the next `build` resets the graph — but an aborted
    /// solve's partial flow is never surfaced: a partial LP cost is not
    /// a lower bound on anything.
    pub fn value_budgeted(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        budget: &crate::budget::SolveBudget,
    ) -> Option<LpSolution> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return Some(LpSolution {
                objective: 0.0,
                horizon: 0,
                routed: 0,
            });
        }
        if budget.exhausted() {
            return None; // don't even pay for the build
        }
        let horizon = tight_horizon(trace, m);
        let b = {
            let mut s = tf_obs::span!("lb", "build");
            let b = self.build(trace, m, k, weighted, horizon, false);
            s.arg("jobs", trace.len() as f64);
            s.arg("horizon", horizon as f64);
            b
        };
        let r = {
            let _s = tf_obs::span!("lb", "solve");
            self.graph
                .solve_budgeted(b.source, b.sink, b.total_supply, budget)?
        };
        debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
        Some(LpSolution {
            objective: r.cost,
            horizon,
            routed: r.flow,
        })
    }

    /// Solve and then audit the flow with the independent negative-cycle
    /// certificate; panics if certification fails. Speed never costs
    /// certification: this is the optimized path plus the audit.
    pub fn certified_value(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
    ) -> LpSolution {
        let s = self.value_at_horizon(trace, m, k, weighted, None);
        if !trace.is_empty() {
            let _cert_span = tf_obs::span!("lb", "certify");
            let tol = 1e-9 * (1.0 + s.objective.abs());
            assert!(
                self.graph.verify_optimal(tol),
                "optimized LP solve left a negative residual cycle"
            );
        }
        s
    }

    /// Work counters of the most recent solve on this arena (see
    /// [`McmfStats`]). Zeroed stats before the first solve.
    pub fn last_stats(&self) -> McmfStats {
        self.graph.stats()
    }

    /// As [`lp_relaxation_solution`], on this arena.
    pub fn schedule(&mut self, trace: &Trace, m: usize, k: u32) -> LpSchedule {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        let n = trace.len();
        if n == 0 {
            return LpSchedule {
                assignments: vec![],
                completion: vec![],
                objective: 0.0,
            };
        }
        let horizon = tight_horizon(trace, m);
        let b = self.build(trace, m, k, false, horizon, true);
        let res = self.graph.solve(b.source, b.sink, b.total_supply);
        debug_assert_eq!(res.flow, b.total_supply);

        let mut assignments = Vec::with_capacity(n);
        let mut completion = Vec::with_capacity(n);
        for ids in &self.edge_ids {
            let mut a: Vec<(u64, i64)> = ids
                .iter()
                .filter_map(|&(t, id)| {
                    let f = self.graph.flow_on(id);
                    (f > 0).then_some((t, f))
                })
                .collect();
            a.sort_by_key(|&(t, _)| t);
            completion.push(a.last().map_or(0.0, |&(t, _)| (t + 1) as f64));
            assignments.push(a);
        }
        LpSchedule {
            assignments,
            completion,
            objective: res.cost,
        }
    }
}

thread_local! {
    /// One arena per thread: the rayon fan-outs in the harness each get
    /// their own, so no locking on the hot path.
    static SHARED_SOLVER: RefCell<LpSolver> = RefCell::new(LpSolver::new());
}

/// Solve the LP and extract the optimal assignment — the "fractional
/// OPT" schedule the paper's relaxation describes. Useful for inspecting
/// how the relaxation beats every integral schedule (E11) and for
/// verifying optimality conditions in tests.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_solution(trace: &Trace, m: usize, k: u32) -> LpSchedule {
    SHARED_SOLVER.with(|s| s.borrow_mut().schedule(trace, m, k))
}

/// Solve the LP relaxation for an integral trace on `m` unit-speed
/// machines with exponent `k ≥ 1`.
///
/// # Panics
/// If the trace is not integral (use [`Trace::to_integral`] first) or
/// `k = 0`.
pub fn lp_relaxation_value(trace: &Trace, m: usize, k: u32) -> LpSolution {
    lp_relaxation_value_weighted(trace, m, k, false)
}

/// As [`lp_relaxation_value`], abandoning the solve with `None` once
/// `budget` trips (see [`crate::budget::SolveBudget`]). Uses the same
/// per-thread arena; an aborted solve leaves it reusable.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &crate::budget::SolveBudget,
) -> Option<LpSolution> {
    SHARED_SOLVER.with(|s| s.borrow_mut().value_budgeted(trace, m, k, false, budget))
}

/// The weighted variant: minimizes a relaxation of `Σ_j w_j F_j^k` (the
/// cost of job `j`'s slots is multiplied by its trace weight). With
/// `weighted = false` all weights are treated as 1, recovering the
/// paper's (unweighted) LP. Soundness argument is identical — the weight
/// multiplies both sides of the per-job inequality.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_weighted(trace: &Trace, m: usize, k: u32, weighted: bool) -> LpSolution {
    lp_relaxation_value_at_horizon(trace, m, k, weighted, None)
}

/// As [`lp_relaxation_value_weighted`], but with an explicit horizon
/// override (must be at least the tight FCFS horizon to stay feasible).
/// Exposed so validation code can confirm the tight-horizon optimization
/// is lossless; everyday callers should pass `None`.
pub fn lp_relaxation_value_at_horizon(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
    horizon_override: Option<u64>,
) -> LpSolution {
    SHARED_SOLVER.with(|s| {
        s.borrow_mut()
            .value_at_horizon(trace, m, k, weighted, horizon_override)
    })
}

/// As [`lp_relaxation_value_weighted`], plus the independent
/// negative-cycle audit of the solved network (panics on failure).
pub fn lp_relaxation_value_certified(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
) -> LpSolution {
    SHARED_SOLVER.with(|s| s.borrow_mut().certified_value(trace, m, k, weighted))
}

/// Work counters of this thread's most recent shared-arena LP solve
/// (the free functions above all route through one thread-local
/// [`LpSolver`]). Zeroed stats if the thread has not solved yet.
pub fn last_solve_stats() -> McmfStats {
    SHARED_SOLVER.with(|s| s.borrow().last_stats())
}

/// The PR-1 solve path, kept verbatim as a test oracle: one-unit
/// successive shortest paths on [`MinCostFlow`], global tight horizon,
/// no per-job pruning. Property tests pin the optimized path to this.
pub fn lp_relaxation_value_reference(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
) -> LpSolution {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        trace.is_integral(1e-9),
        "LP relaxation needs integral traces"
    );
    assert!(m >= 1);
    if trace.is_empty() {
        return LpSolution {
            objective: 0.0,
            horizon: 0,
            routed: 0,
        };
    }

    let horizon = tight_horizon(trace, m);
    let n = trace.len();
    let slots = horizon as usize;

    // Nodes: source, jobs, slots, sink.
    let source = 0usize;
    let job0 = 1usize;
    let slot0 = job0 + n;
    let sink = slot0 + slots;
    let mut g = MinCostFlow::new(sink + 1);

    let mut total_supply: i64 = 0;
    for (ji, j) in trace.jobs().iter().enumerate() {
        let p = j.size.round() as i64;
        let r = j.arrival.round() as u64;
        total_supply += p;
        g.add_edge(source, job0 + ji, p, 0.0);
        let pk = ipow(j.size, k);
        let w = if weighted { j.weight } else { 1.0 };
        for t in r..horizon {
            let age = (t - r) as f64;
            let cost = w * (ipow(age, k) + pk) / j.size;
            g.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
        }
    }
    for t in 0..slots {
        g.add_edge(slot0 + t, sink, m as i64, 0.0);
    }

    let r = g.solve(source, sink, total_supply);
    debug_assert_eq!(r.flow, total_supply, "horizon too small for feasibility");
    LpSolution {
        objective: r.cost,
        horizon,
        routed: r.flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_job() {
        // Job (0, 1), k=1: one slot at cost (0 + 1)/1 = 1.
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_job_size_three_k1() {
        // Job (0, 3), k=1: slots 0,1,2 with costs (0+3)/3, (1+3)/3, (2+3)/3
        // = 1 + 4/3 + 5/3 = 4.
        let t = Trace::from_pairs([(0.0, 3.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 4.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn single_job_k2() {
        // Job (0, 2), k=2: slots 0,1: (0+4)/2 + (1+4)/2 = 4.5.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert!((s.objective - 4.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn contention_pushes_into_later_slots() {
        // Two unit jobs at t=0, one machine, k=1: slots 0 and 1, costs
        // (0+1) and (1+1): total 3.
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 3.0).abs() < 1e-9, "{}", s.objective);
        // Two machines: both in slot 0 → 2.
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn per_job_slot_cap_binds() {
        // One job of size 2 on two machines still needs two slots (x_jt ≤ 1):
        // k=1 cost = (0+2)/2 + (1+2)/2 = 2.5, not 2.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn release_dates_respected() {
        // Job (5, 1), k=1: earliest slot 5, age 0 → cost 1 regardless of
        // earlier idle slots.
        let t = Trace::from_pairs([(5.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lp_halved_lower_bounds_feasible_schedules() {
        // Compare LP/2 against the k-th power sum of an actual optimal-ish
        // schedule (SRPT at speed 1).
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions};
        let t = Trace::from_pairs([(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2, 3] {
                let lp = lp_relaxation_value(&t, m, k);
                let mut srpt = Policy::Srpt.make();
                let s = simulate(
                    &t,
                    srpt.as_mut(),
                    MachineConfig::new(m),
                    SimOptions::default(),
                )
                .unwrap();
                let obj = s.flow_power_sum(f64::from(k));
                assert!(
                    lp.objective / 2.0 <= obj + 1e-9,
                    "m={m} k={k}: LP/2 {} > SRPT {obj}",
                    lp.objective / 2.0
                );
            }
        }
    }

    #[test]
    fn solution_extraction_is_feasible_and_matches_value() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2] {
                let val = lp_relaxation_value(&t, m, k);
                let sol = lp_relaxation_solution(&t, m, k);
                assert!((sol.objective - val.objective).abs() < 1e-9, "m={m} k={k}");
                // Feasibility: every job fully assigned, within release
                // dates, per-slot cap m, per-job-slot cap 1.
                for j in t.jobs() {
                    assert_eq!(sol.work_of(j.id as usize), j.size.round() as i64);
                    for &(slot, units) in &sol.assignments[j.id as usize] {
                        assert!(slot as f64 >= j.arrival);
                        assert!(units == 1, "per-slot cap violated");
                    }
                }
                for (_, load) in sol.slot_loads() {
                    assert!(load <= m as i64);
                }
                // Fractional completion ≥ arrival + size for every job.
                for j in t.jobs() {
                    assert!(sol.completion[j.id as usize] >= j.arrival + 1.0);
                }
            }
        }
    }

    #[test]
    fn solution_prefers_early_slots() {
        // Single job: its slots must be exactly r..r+p (costs increase).
        let t = Trace::from_pairs([(2.0, 3.0)]).unwrap();
        let sol = lp_relaxation_solution(&t, 1, 2);
        let slots: Vec<u64> = sol.assignments[0].iter().map(|&(t, _)| t).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        assert_eq!(sol.completion[0], 5.0);
    }

    #[test]
    fn weighted_lp_scales_costs() {
        // One weighted job: objective scales linearly with the weight.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 5.0);
        let t = b.build().unwrap();
        let unweighted = lp_relaxation_value_weighted(&t, 1, 1, false);
        let weighted = lp_relaxation_value_weighted(&t, 1, 1, true);
        assert!((weighted.objective - 5.0 * unweighted.objective).abs() < 1e-9);
    }

    #[test]
    fn weighted_lp_prioritizes_heavy_jobs() {
        // Two unit jobs at t=0, one machine; the heavy one should take the
        // early slot. Weighted objective: w_heavy·1 + w_light·2 <
        // w_heavy·2 + w_light·1 iff w_heavy > w_light.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 1.0, 10.0);
        b.push_weighted(0.0, 1.0, 1.0);
        let t = b.build().unwrap();
        let s = lp_relaxation_value_weighted(&t, 1, 1, true);
        // heavy in slot 0: 10·(0+1)/1 + 1·(1+1)/1 = 12.
        assert!((s.objective - 12.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn weighted_lp_halved_lower_bounds_weighted_flow() {
        use tf_metrics_free::weighted_power_sum_of;
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions, TraceBuilder};
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 2.0);
        b.push_weighted(1.0, 1.0, 5.0);
        b.push_weighted(1.0, 2.0, 1.0);
        let t = b.build().unwrap();
        for k in [1u32, 2] {
            let lp = lp_relaxation_value_weighted(&t, 1, k, true);
            for p in [Policy::Hdf, Policy::Srpt, Policy::Rr] {
                let mut a = p.make();
                let s =
                    simulate(&t, a.as_mut(), MachineConfig::new(1), SimOptions::default()).unwrap();
                let obj = weighted_power_sum_of(&t, &s.flow, f64::from(k));
                assert!(lp.objective / 2.0 <= obj + 1e-9, "k={k} {p}");
            }
        }
    }

    /// Tiny local helper: weighted power sum without depending on
    /// tf-metrics (which does not depend on us either way — kept local to
    /// avoid a dev-dependency cycle risk).
    mod tf_metrics_free {
        use tf_simcore::Trace;

        pub fn weighted_power_sum_of(trace: &Trace, flows: &[f64], k: f64) -> f64 {
            trace
                .jobs()
                .iter()
                .map(|j| j.weight * flows[j.id as usize].powf(k))
                .sum()
        }
    }

    #[test]
    fn optimized_matches_reference_oracle() {
        // Hand-picked shapes with contention, gaps, and late arrivals.
        for pairs in [
            vec![(0.0, 1.0)],
            vec![(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0)],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (9.0, 2.0)],
            vec![(0.0, 5.0), (0.0, 5.0), (3.0, 1.0), (7.0, 2.0), (7.0, 2.0)],
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            for m in [1usize, 2, 4] {
                for k in [1u32, 2, 3] {
                    let fast = lp_relaxation_value(&t, m, k);
                    let slow = lp_relaxation_value_reference(&t, m, k, false);
                    assert_eq!(fast.routed, slow.routed, "m={m} k={k}");
                    assert!(
                        (fast.objective - slow.objective).abs()
                            <= 1e-6 * (1.0 + slow.objective.abs()),
                        "m={m} k={k}: optimized {} vs reference {}",
                        fast.objective,
                        slow.objective
                    );
                }
            }
        }
    }

    #[test]
    fn certified_value_matches_and_passes_audit() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0)]).unwrap();
        for (m, k) in [(1usize, 1u32), (2, 2), (1, 3)] {
            let plain = lp_relaxation_value(&t, m, k);
            let certified = lp_relaxation_value_certified(&t, m, k, false);
            assert_eq!(plain, certified, "m={m} k={k}");
        }
        // Empty trace: no network to audit, still fine.
        let empty = Trace::from_pairs(std::iter::empty()).unwrap();
        assert_eq!(lp_relaxation_value_certified(&empty, 1, 2, false).routed, 0);
    }

    #[test]
    fn per_job_pruning_is_lossless_under_skew() {
        // One huge early job stretches the global horizon far past what a
        // tiny late job needs; the pruned network must agree with the
        // unpruned reference anyway.
        let t = Trace::from_pairs([(0.0, 12.0), (20.0, 1.0), (21.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2] {
                let fast = lp_relaxation_value(&t, m, k);
                let slow = lp_relaxation_value_reference(&t, m, k, false);
                assert!(
                    (fast.objective - slow.objective).abs() < 1e-9 * (1.0 + slow.objective),
                    "m={m} k={k}: {} vs {}",
                    fast.objective,
                    slow.objective
                );
                assert_eq!(fast.routed, slow.routed);
            }
        }
    }

    #[test]
    fn dedicated_arena_reuse_matches_shared_path() {
        let mut solver = LpSolver::new();
        let a = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0)]).unwrap();
        let b = Trace::from_pairs([(0.0, 1.0), (3.0, 4.0), (3.0, 1.0)]).unwrap();
        for t in [&a, &b, &a] {
            let via_arena = solver.value_at_horizon(t, 2, 2, false, None);
            let via_free = lp_relaxation_value(t, 2, 2);
            assert_eq!(via_arena, via_free);
        }
        let sched = solver.schedule(&b, 1, 1);
        assert!((sched.objective - lp_relaxation_solution(&b, 1, 1).objective).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "integral")]
    fn fractional_trace_rejected() {
        let t = Trace::from_pairs([(0.5, 1.0)]).unwrap();
        lp_relaxation_value(&t, 1, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.routed, 0);
    }
}

//! The paper's time-indexed LP relaxation (Section 3.1), solved exactly.
//!
//! Variables `x_jt` = units of work done on job `j` during unit slot
//! `[t, t+1)`, for integral traces:
//!
//! ```text
//!   min   Σ_j Σ_{t ≥ r_j} x_jt · ((t − r_j)^k + p_j^k) / p_j
//!   s.t.  Σ_t x_jt = p_j                (every job fully processed)
//!         Σ_j x_jt ≤ m                  (machine capacity per slot)
//!         x_jt ≤ 1                      (one machine per job per slot)
//!         x_jt ≥ 0
//! ```
//!
//! The cost uses the slot's *start* `t`, the smallest age in the slot, so
//! every feasible speed-1 schedule's indicator solution costs at most
//! `2 Σ_j F_j^k` — the LP optimum divided by 2 is a valid lower bound on
//! `OPT`'s k-th power sum. (We strip the paper's scaling constant γ, which
//! multiplies both sides.)
//!
//! All capacities are integers, so the LP is a transportation polytope
//! with integral vertices; the min-cost flow solver returns its exact
//! optimum.
//!
//! Two solve paths exist. The hot path is [`LpSolver`] — a reusable
//! arena around [`McmfGraph`] with **per-job horizon pruning** (job `j`
//! only gets arcs to slots below `r_j + p_j + ⌈W_j/m⌉ + 1`, where `W_j`
//! is the other jobs' total work — see `docs/SOLVER.md` for the exchange
//! argument) — the free functions route through one thread-local
//! instance so sweeps stop reallocating. The reference path
//! ([`lp_relaxation_value_reference`]) keeps the PR-1 successive-
//! shortest-paths build verbatim as a property-test oracle.

use crate::mcmf::{McmfGraph, McmfStats, MinCostFlow, WarmStart};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use tf_policies::Fcfs;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

/// Below this many jobs the LP dispatches to the unit-SSP
/// [`MinCostFlow`] solver instead of the [`McmfGraph`] arena: the
/// arena's phase machinery (CSR rebuild, level BFS, blocking-flow DFS)
/// costs more than it saves on tiny networks. BENCH_3 measured
/// `lower_bound_speedup_vs_ssp` at 0.955 (n=40) and 0.989 (n=80) — the
/// arena only pulls ahead above ≈80 jobs — and the `ssp_crossover`
/// group in BENCH_5.json re-measures the boundary. Both solvers return
/// the exact transportation optimum (pinned against each other by
/// `optimized_matches_reference_oracle` and the proptests), so the
/// dispatch is a pure perf decision.
pub const SSP_CROSSOVER_JOBS: usize = 80;

/// Budget poll cadence for the column-generation pricing scan, matching
/// the solver's `BUDGET_POLL_POPS` discipline: the scan streams over
/// `Σ_j |window_j|` candidate columns, which at `n = 5000` is tens of
/// millions — a deadline must be honoured inside one pass.
const BUDGET_POLL_COLS: u64 = 4096;

/// Column-generation round cap before falling back to the full arena
/// build. Each round either adds a priced-in column or widens an
/// unsaturated job's window, so termination is guaranteed anyway; the
/// cap just bounds the worst case to one predictable full solve.
const COLGEN_MAX_ROUNDS: u32 = 64;

/// Initial active window padding beyond `p_j` slots per job (see
/// [`LpSolver::value_colgen_budgeted`]). Chosen from the BENCH_5 probe:
/// smaller pads price in more rounds, larger pads inflate round-1
/// networks on lightly-loaded instances.
const COLGEN_INIT_PAD: u64 = 8;

/// Exact solution of the LP relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// The LP objective value.
    pub objective: f64,
    /// Time horizon (number of unit slots considered).
    pub horizon: u64,
    /// Units of work routed (= Σ p_j when feasible; always feasible for
    /// the generous horizon used).
    pub routed: i64,
}

/// Integer power helper (exact for the exponents the paper uses).
#[inline]
pub(crate) fn ipow(base: f64, k: u32) -> f64 {
    base.powi(k as i32)
}

/// Tight LP horizon: the makespan of a concrete non-idling feasible
/// schedule (FCFS on `m` unit-speed machines), rounded up, plus one slot.
///
/// Soundness: that schedule is itself a feasible LP solution inside
/// `[0, H)`. Every per-job slot cost is nondecreasing in `t`, so by the
/// standard transportation exchange argument any optimal solution can be
/// rerouted off slots `≥ H` without increasing cost — restricting the
/// horizon to `H` preserves the optimum while shrinking the network by an
/// order of magnitude on moderately loaded instances.
pub(crate) fn tight_horizon(trace: &Trace, m: usize) -> u64 {
    fcfs_horizon(trace, m).0
}

/// [`tight_horizon`] plus the per-job FCFS window ends it is derived
/// from: `ends[j]` is one past the last slot the FCFS witness schedule
/// serves job `j` in (`⌈C_j⌉`, padded by one slot for fp slack).
///
/// The witness property is what makes these useful as *initial* column
/// windows for [`LpSolver::value_colgen_budgeted`]: the FCFS schedule
/// routes every job's full work through slots `[r_j, ends[j])`, so the
/// restricted network seeded with those windows carries the whole
/// supply (fractional feasibility implies integral max-flow = supply by
/// max-flow/min-cut) — the colgen loop starts from a *feasible*
/// restricted LP and never needs infeasibility-driven widening rounds.
pub(crate) fn fcfs_horizon(trace: &Trace, m: usize) -> (u64, Vec<u64>) {
    let mut fcfs = Fcfs::new();
    let sched = simulate(
        trace,
        &mut fcfs,
        MachineConfig::new(m),
        SimOptions::default(),
    )
    .expect("FCFS on a valid trace cannot fail");
    // SRPT completions widen the windows where the LP optimum — itself
    // SRPT-shaped — finishes *later* than FCFS (large jobs it preempts).
    // Taking the per-job max keeps the FCFS witness inside every window
    // (feasibility) while covering most of the LP support (few or no
    // pricing rounds in practice).
    let mut srpt = tf_policies::Srpt::new();
    let srpt_sched = simulate(
        trace,
        &mut srpt,
        MachineConfig::new(m),
        SimOptions::default(),
    )
    .expect("SRPT on a valid trace cannot fail");
    let ends = sched
        .completion
        .iter()
        .zip(&srpt_sched.completion)
        .map(|(&c, &cs)| c.max(cs).ceil() as u64 + 1)
        .collect();
    ((sched.makespan()).ceil() as u64 + 1, ends)
}

/// The optimal LP *solution* (not just its value): per-job slot
/// assignments `x_jt > 0`, plus derived fractional completion times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSchedule {
    /// For each job (by id): `(slot, units)` pairs with positive flow,
    /// sorted by slot.
    pub assignments: Vec<Vec<(u64, i64)>>,
    /// Fractional completion per job: the end of its last used slot.
    pub completion: Vec<f64>,
    /// Objective value (same as the matching [`LpSolution`]).
    pub objective: f64,
}

impl LpSchedule {
    /// Work assigned to job `j` (must equal `p_j` for a feasible
    /// solution).
    pub fn work_of(&self, job: usize) -> i64 {
        self.assignments[job].iter().map(|&(_, u)| u).sum()
    }

    /// Per-slot total load (for capacity verification).
    pub fn slot_loads(&self) -> std::collections::BTreeMap<u64, i64> {
        let mut loads = std::collections::BTreeMap::new();
        for a in &self.assignments {
            for &(t, u) in a {
                *loads.entry(t).or_insert(0) += u;
            }
        }
        loads
    }
}

/// Per-job slot horizon (exclusive): `min(H, r_j + p_j + ⌈W_j/m⌉ + 1)`
/// where `W_j` is the total work of the *other* jobs.
///
/// Soundness (exchange argument, `docs/SOLVER.md`): take an integral
/// optimal solution and reroute job `j`'s units greedily to the earliest
/// slots with spare capacity — costs are nondecreasing in `t`, so this
/// never increases the objective and never moves any other job. In the
/// window starting at `r_j`, a slot is unavailable to `j` only if `j`
/// already uses it (≤ p_j slots) or other jobs fill all `m` units
/// (≤ ⌊W_j/m⌋ slots), so all of `j`'s work fits below the bound. Arcs at
/// or beyond it can be dropped without changing the LP optimum.
pub(crate) fn job_horizon(global: u64, r: u64, p: i64, others_work: i64, m: usize) -> u64 {
    let spill = (others_work + m as i64 - 1) / m as i64;
    global.min(r + p as u64 + spill as u64 + 1)
}

/// Reusable LP-relaxation solver: one [`McmfGraph`] arena plus edge-id
/// scratch, so sweeps solving many instances (e1/e11/e13, the
/// `min_speed_for_ratio` bisection) stop reallocating per call. The free
/// functions in this module route through a shared thread-local
/// instance; hold your own `LpSolver` only for tight loops where even
/// the thread-local lookup matters.
#[derive(Debug, Default)]
pub struct LpSolver {
    graph: McmfGraph,
    edge_ids: Vec<Vec<(u64, usize)>>,
    /// When the last solve dispatched to the unit-SSP solver (small
    /// instances, see [`SSP_CROSSOVER_JOBS`]), the solved graph lives
    /// here so [`LpSolver::certified_value`] audits the network that was
    /// actually solved. `None` after an arena solve.
    last_ssp: Option<MinCostFlow>,
}

/// Node layout + supply of a built LP network.
struct BuiltLp {
    total_supply: i64,
    source: usize,
    sink: usize,
}

/// Build the same pruned transportation network as [`LpSolver::build`],
/// but on the unit-SSP [`MinCostFlow`] solver — the small-instance side
/// of the [`SSP_CROSSOVER_JOBS`] dispatch. Same node layout, same
/// per-job horizon pruning, so the two paths solve the identical LP.
fn build_ssp_network(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
    horizon: u64,
) -> (MinCostFlow, BuiltLp) {
    let n = trace.len();
    let slots = horizon as usize;
    let source = 0usize;
    let job0 = 1usize;
    let slot0 = job0 + n;
    let sink = slot0 + slots;
    let mut g = MinCostFlow::new(sink + 1);
    let total_work: i64 = trace.jobs().iter().map(|j| j.size.round() as i64).sum();
    let mut total_supply: i64 = 0;
    for (ji, j) in trace.jobs().iter().enumerate() {
        let p = j.size.round() as i64;
        let r = j.arrival.round() as u64;
        total_supply += p;
        g.add_edge(source, job0 + ji, p, 0.0);
        let pk = ipow(j.size, k);
        let w = if weighted { j.weight } else { 1.0 };
        let h_j = job_horizon(horizon, r, p, total_work - p, m);
        for t in r..h_j {
            let age = (t - r) as f64;
            let cost = w * (ipow(age, k) + pk) / j.size;
            g.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
        }
    }
    for t in 0..slots {
        g.add_edge(slot0 + t, sink, m as i64, 0.0);
    }
    (
        g,
        BuiltLp {
            total_supply,
            source,
            sink,
        },
    )
}

/// A dual warm-start handle at the LP layer: the arena's node potentials
/// from a finished solve, stored *by role* (source, per-job, per-slot,
/// sink) rather than by raw node index, so they can be remapped onto a
/// neighbouring instance whose network has a different shape — another
/// machine count (different tight horizon), a perturbed trace (different
/// job count), or a refined aggregation grid.
///
/// Soundness never depends on the mapping being good: the remapped
/// vector goes through [`McmfGraph::solve_warm_budgeted`]'s price
/// fix-up + O(E) dual-feasibility revalidation, and a rejected handle
/// just falls back to the cold start. A sloppy mapping costs phases,
/// not correctness.
#[derive(Debug, Clone, Default)]
pub struct LpWarmStart {
    source_pot: f64,
    sink_pot: f64,
    job_pot: Vec<f64>,
    slot_pot: Vec<f64>,
}

impl LpWarmStart {
    /// Extract role-mapped potentials from a solved arena with the
    /// standard layout (`source, jobs[n], slots[h], sink`).
    fn from_arena(graph: &McmfGraph, n: usize, horizon: u64) -> Self {
        let pot = graph.potentials();
        let slots = horizon as usize;
        debug_assert_eq!(pot.len(), 2 + n + slots);
        LpWarmStart {
            source_pot: pot[0],
            sink_pot: pot[1 + n + slots],
            job_pot: pot[1..1 + n].to_vec(),
            slot_pot: pot[1 + n..1 + n + slots].to_vec(),
        }
    }

    /// Remap onto a target layout with `n` jobs and `horizon` slots.
    /// Extra jobs inherit the source potential (feasible for their only
    /// incoming arc), extra slots the last known slot potential falling
    /// back to the sink potential (feasible for their outgoing arc); the
    /// solver's repair sweep and validation scan do the rest.
    fn remap(&self, n: usize, horizon: u64) -> WarmStart {
        let slots = horizon as usize;
        let mut pot = Vec::with_capacity(2 + n + slots);
        pot.push(self.source_pot);
        for ji in 0..n {
            pot.push(self.job_pot.get(ji).copied().unwrap_or(self.source_pot));
        }
        let slot_fill = self.slot_pot.last().copied().unwrap_or(self.sink_pot);
        for t in 0..slots {
            pot.push(self.slot_pot.get(t).copied().unwrap_or(slot_fill));
        }
        pot.push(self.sink_pot);
        WarmStart::from_potentials(pot)
    }
}

impl LpSolver {
    /// A fresh arena (allocates lazily on first solve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the transportation network for `trace` into the arena.
    /// When `record` is set, per-job `(slot, edge_id)` pairs land in
    /// `self.edge_ids` for assignment extraction.
    fn build(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        horizon: u64,
        record: bool,
    ) -> BuiltLp {
        let n = trace.len();
        let slots = horizon as usize;
        // Nodes: source, jobs, slots, sink.
        let source = 0usize;
        let job0 = 1usize;
        let slot0 = job0 + n;
        let sink = slot0 + slots;
        self.graph.reset(sink + 1);
        if record {
            self.edge_ids.clear();
            self.edge_ids.resize_with(n, Vec::new);
        }
        let total_work: i64 = trace.jobs().iter().map(|j| j.size.round() as i64).sum();
        let mut total_supply: i64 = 0;
        for (ji, j) in trace.jobs().iter().enumerate() {
            let p = j.size.round() as i64;
            let r = j.arrival.round() as u64;
            total_supply += p;
            self.graph.add_edge(source, job0 + ji, p, 0.0);
            let pk = ipow(j.size, k);
            let w = if weighted { j.weight } else { 1.0 };
            let h_j = job_horizon(horizon, r, p, total_work - p, m);
            for t in r..h_j {
                let age = (t - r) as f64;
                let cost = w * (ipow(age, k) + pk) / j.size;
                let id = self.graph.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
                if record {
                    self.edge_ids[ji].push((t, id));
                }
            }
        }
        for t in 0..slots {
            self.graph.add_edge(slot0 + t, sink, m as i64, 0.0);
        }
        BuiltLp {
            total_supply,
            source,
            sink,
        }
    }

    /// As [`lp_relaxation_value_at_horizon`], on this arena.
    pub fn value_at_horizon(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        horizon_override: Option<u64>,
    ) -> LpSolution {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return LpSolution {
                objective: 0.0,
                horizon: 0,
                routed: 0,
            };
        }
        let tight = tight_horizon(trace, m);
        let horizon = match horizon_override {
            Some(h) => {
                assert!(h >= tight, "horizon override below the feasible minimum");
                h
            }
            None => tight,
        };
        if trace.len() <= SSP_CROSSOVER_JOBS {
            let (mut g, b) = {
                let mut s = tf_obs::span!("lb", "build");
                let built = build_ssp_network(trace, m, k, weighted, horizon);
                s.arg("jobs", trace.len() as f64);
                s.arg("horizon", horizon as f64);
                built
            };
            let r = {
                let _s = tf_obs::span!("lb", "solve");
                g.solve(b.source, b.sink, b.total_supply)
            };
            self.last_ssp = Some(g);
            debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
            return LpSolution {
                objective: r.cost,
                horizon,
                routed: r.flow,
            };
        }
        self.last_ssp = None;
        let b = {
            let mut s = tf_obs::span!("lb", "build");
            let b = self.build(trace, m, k, weighted, horizon, false);
            s.arg("jobs", trace.len() as f64);
            s.arg("horizon", horizon as f64);
            b
        };
        let r = {
            let _s = tf_obs::span!("lb", "solve");
            self.graph.solve(b.source, b.sink, b.total_supply)
        };
        debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
        LpSolution {
            objective: r.cost,
            horizon,
            routed: r.flow,
        }
    }

    /// As [`LpSolver::value_at_horizon`] (tight horizon), but abandons
    /// the solve and returns `None` once `budget` trips. The arena stays
    /// reusable — the next `build` resets the graph — but an aborted
    /// solve's partial flow is never surfaced: a partial LP cost is not
    /// a lower bound on anything.
    pub fn value_budgeted(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        budget: &crate::budget::SolveBudget,
    ) -> Option<LpSolution> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return Some(LpSolution {
                objective: 0.0,
                horizon: 0,
                routed: 0,
            });
        }
        if budget.exhausted() {
            return None; // don't even pay for the build
        }
        let horizon = tight_horizon(trace, m);
        if trace.len() <= SSP_CROSSOVER_JOBS {
            let (mut g, b) = {
                let mut s = tf_obs::span!("lb", "build");
                let built = build_ssp_network(trace, m, k, weighted, horizon);
                s.arg("jobs", trace.len() as f64);
                s.arg("horizon", horizon as f64);
                built
            };
            let r = {
                let _s = tf_obs::span!("lb", "solve");
                g.solve_budgeted(b.source, b.sink, b.total_supply, budget)?
            };
            self.last_ssp = Some(g);
            debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
            return Some(LpSolution {
                objective: r.cost,
                horizon,
                routed: r.flow,
            });
        }
        self.last_ssp = None;
        let b = {
            let mut s = tf_obs::span!("lb", "build");
            let b = self.build(trace, m, k, weighted, horizon, false);
            s.arg("jobs", trace.len() as f64);
            s.arg("horizon", horizon as f64);
            b
        };
        let r = {
            let _s = tf_obs::span!("lb", "solve");
            self.graph
                .solve_budgeted(b.source, b.sink, b.total_supply, budget)?
        };
        debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
        Some(LpSolution {
            objective: r.cost,
            horizon,
            routed: r.flow,
        })
    }

    /// Solve and then audit the flow with the independent negative-cycle
    /// certificate; panics if certification fails. Speed never costs
    /// certification: this is the optimized path plus the audit.
    pub fn certified_value(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
    ) -> LpSolution {
        let s = self.value_at_horizon(trace, m, k, weighted, None);
        if !trace.is_empty() {
            let _cert_span = tf_obs::span!("lb", "certify");
            let tol = 1e-9 * (1.0 + s.objective.abs());
            // Audit whichever network the crossover dispatch solved.
            let ok = match &self.last_ssp {
                Some(g) => g.verify_optimal(tol),
                None => self.graph.verify_optimal(tol),
            };
            assert!(ok, "optimized LP solve left a negative residual cycle");
        }
        s
    }

    /// Work counters of the most recent solve (see [`McmfStats`]) —
    /// from whichever solver the size crossover dispatched to, so the
    /// `mcmf.*` observability namespace never goes dark on small
    /// instances. Zeroed stats before the first solve.
    pub fn last_stats(&self) -> McmfStats {
        match &self.last_ssp {
            Some(g) => g.stats(),
            None => self.graph.stats(),
        }
    }

    /// As [`LpSolver::value_budgeted`], seeded with a dual warm start
    /// from a neighbouring solve. Always takes the arena path (warm
    /// starts only pay off above the [`SSP_CROSSOVER_JOBS`] boundary and
    /// the unit-SSP solver keeps no reusable duals). Returns the
    /// solution, a handle for the *next* neighbour, and whether the warm
    /// start was accepted; `None` iff the budget tripped.
    ///
    /// The warm and cold optima are the same number: acceptance requires
    /// the remapped potentials to pass the solver's dual-feasibility
    /// revalidation, which is exactly the invariant a cold start begins
    /// from (see `docs/SOLVER.md`).
    pub fn value_warm_budgeted(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        budget: &crate::budget::SolveBudget,
        warm: Option<&LpWarmStart>,
    ) -> Option<(LpSolution, LpWarmStart, bool)> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return Some((
                LpSolution {
                    objective: 0.0,
                    horizon: 0,
                    routed: 0,
                },
                LpWarmStart::default(),
                false,
            ));
        }
        if budget.exhausted() {
            return None; // don't even pay for the build
        }
        let horizon = tight_horizon(trace, m);
        self.last_ssp = None;
        let b = {
            let mut s = tf_obs::span!("lb", "build");
            let b = self.build(trace, m, k, weighted, horizon, false);
            s.arg("jobs", trace.len() as f64);
            s.arg("horizon", horizon as f64);
            b
        };
        let mapped = warm.map(|w| w.remap(trace.len(), horizon));
        let (r, accepted) = {
            let _s = tf_obs::span!("lb", "solve");
            self.graph.solve_warm_budgeted(
                b.source,
                b.sink,
                b.total_supply,
                mapped.as_ref(),
                budget,
            )?
        };
        debug_assert_eq!(r.flow, b.total_supply, "horizon too small for feasibility");
        let handle = LpWarmStart::from_arena(&self.graph, trace.len(), horizon);
        Some((
            LpSolution {
                objective: r.cost,
                horizon,
                routed: r.flow,
            },
            handle,
            accepted,
        ))
    }

    /// Exact LP value by **delayed column generation**: build only a
    /// small *active* slot window per job, solve the restricted
    /// transportation problem, then price every omitted `(job, slot)`
    /// column against the restricted optimum's duals — an arithmetic-only
    /// scan, no graph build — and re-solve (warm-started) with the
    /// violated columns added, until no column prices negative.
    ///
    /// ## Why the result is the exact LP optimum
    ///
    /// The restricted problem only *removes* columns, so its optimum is
    /// `≥` the full pruned LP's. On termination the final potentials
    /// satisfy `c_j(t) + π(job_j) − π(slot_t) ≥ −tol` for **every**
    /// column of the full pruned network — the added ones via the
    /// solver's own optimality invariant, the omitted ones via the
    /// pricing scan that just returned clean. Dual feasibility over the
    /// full column set plus complementary slackness on the flow (omitted
    /// columns carry none) is exactly the optimality certificate of the
    /// full LP, so the restricted value *is* the full value (up to the
    /// scan tolerance). Certification never rests on the window guesses:
    /// a bad initial window costs pricing rounds, not correctness.
    ///
    /// The per-job windows are seeded from the FCFS witness schedule
    /// behind [`fcfs_horizon`] (so the first restricted network provably
    /// carries the full supply), floored at `p_j + COLGEN_INIT_PAD`
    /// slots. Should a restricted round still come back infeasible
    /// (defensive — e.g. a window clamped by [`job_horizon`]), the
    /// unsaturated jobs' windows are doubled and the round retried; after
    /// [`COLGEN_MAX_ROUNDS`] the solver falls back to the full arena
    /// build, which is always correct.
    ///
    /// Returns the solution, a dual warm-start handle for the next
    /// neighbouring instance, and whether `warm` was accepted on the
    /// first round; `None` iff `budget` tripped. Small instances
    /// (≤ [`SSP_CROSSOVER_JOBS`]) dispatch to [`LpSolver::value_budgeted`]
    /// with an empty handle — the restricted machinery cannot beat the
    /// unit-SSP solver there.
    pub fn value_colgen_budgeted(
        &mut self,
        trace: &Trace,
        m: usize,
        k: u32,
        weighted: bool,
        budget: &crate::budget::SolveBudget,
        warm: Option<&LpWarmStart>,
    ) -> Option<(LpSolution, LpWarmStart, bool)> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        if trace.is_empty() {
            return Some((
                LpSolution {
                    objective: 0.0,
                    horizon: 0,
                    routed: 0,
                },
                LpWarmStart::default(),
                false,
            ));
        }
        if budget.exhausted() {
            return None; // don't even pay for the build
        }
        if trace.len() <= SSP_CROSSOVER_JOBS {
            let sol = self.value_budgeted(trace, m, k, weighted, budget)?;
            return Some((sol, LpWarmStart::default(), false));
        }

        let mut obs_span = tf_obs::span!("lb", "lp_colgen");
        obs_span.arg("n", trace.len() as f64);
        obs_span.arg("m", m as f64);

        let (horizon, fcfs_ends) = fcfs_horizon(trace, m);
        let n = trace.len();
        let slots = horizon as usize;
        let source = 0usize;
        let job0 = 1usize;
        let slot0 = job0 + n;
        let sink = slot0 + slots;
        let total_work: i64 = trace.jobs().iter().map(|j| j.size.round() as i64).sum();

        struct ColJob {
            r: u64,
            p: i64,
            size: f64,
            pk: f64,
            w: f64,
            h: u64,
        }
        let jobs: Vec<ColJob> = trace
            .jobs()
            .iter()
            .map(|j| {
                let p = j.size.round() as i64;
                let r = j.arrival.round() as u64;
                ColJob {
                    r,
                    p,
                    size: j.size,
                    pk: ipow(j.size, k),
                    w: if weighted { j.weight } else { 1.0 },
                    h: job_horizon(horizon, r, p, total_work - p, m),
                }
            })
            .collect();
        let total_supply: i64 = jobs.iter().map(|j| j.p).sum();
        let col_cost = |j: &ColJob, t: u64| -> f64 {
            let age = (t - j.r) as f64;
            j.w * (ipow(age, k) + j.pk) / j.size
        };

        // Sorted active slot lists per job, seeded with the FCFS witness
        // windows (see `fcfs_horizon`): the witness schedule fits inside
        // them, so round one is feasible and the widening branch below is
        // pure defense. The `COLGEN_INIT_PAD` floor keeps tiny windows
        // from triggering pricing rounds on near-idle jobs.
        let mut active: Vec<Vec<u64>> = jobs
            .iter()
            .enumerate()
            .map(|(ji, j)| {
                let end = fcfs_ends[ji]
                    .max(j.r + j.p as u64 + COLGEN_INIT_PAD)
                    .min(j.h);
                (j.r..end).collect()
            })
            .collect();
        let mut src_ids: Vec<usize> = Vec::with_capacity(n);
        let mut pending: Vec<u64> = Vec::new();
        let mut warm_pot: Option<WarmStart> = warm.map(|w| w.remap(n, horizon));
        let mut accepted_first = false;
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            if rounds > COLGEN_MAX_ROUNDS {
                // Defensive fallback: the full build is always correct.
                tf_obs::instant!("lb", "colgen_fallback");
                let sol = self.value_budgeted(trace, m, k, weighted, budget)?;
                let handle = LpWarmStart::from_arena(&self.graph, n, horizon);
                return Some((sol, handle, accepted_first));
            }
            let mut total_cols = 0u64;
            {
                let mut s = tf_obs::span!("lb", "build");
                self.graph.reset(sink + 1);
                src_ids.clear();
                for (ji, j) in jobs.iter().enumerate() {
                    src_ids.push(self.graph.add_edge(source, job0 + ji, j.p, 0.0));
                    for &t in &active[ji] {
                        self.graph
                            .add_edge(job0 + ji, slot0 + t as usize, 1, col_cost(j, t));
                    }
                    total_cols += active[ji].len() as u64;
                }
                for t in 0..slots {
                    self.graph.add_edge(slot0 + t, sink, m as i64, 0.0);
                }
                s.arg("jobs", n as f64);
                s.arg("columns", total_cols as f64);
            }
            let (res, acc) = {
                let _s = tf_obs::span!("lb", "solve");
                self.graph.solve_warm_budgeted(
                    source,
                    sink,
                    total_supply,
                    warm_pot.as_ref(),
                    budget,
                )?
            };
            if rounds == 1 {
                accepted_first = acc;
            }

            if res.flow < total_supply {
                // The restricted network cannot carry some job's supply:
                // widen every unsaturated job's window and retry. Windows
                // only grow, and the full windows are feasible (the FCFS
                // witness behind `tight_horizon` plus the exchange
                // argument behind `job_horizon`), so this terminates.
                let mut grew = false;
                for (ji, j) in jobs.iter().enumerate() {
                    if self.graph.flow_on(src_ids[ji]) < j.p {
                        let end = active[ji].last().copied().unwrap_or(j.r);
                        let grow = (active[ji].len() as u64).max(COLGEN_INIT_PAD);
                        let before = active[ji].len();
                        active[ji].extend(end + 1..j.h.min(end + 1 + grow));
                        grew |= active[ji].len() > before;
                    }
                }
                if !grew {
                    // The deficient jobs are already at full width (their
                    // deficiency hides behind a saturated neighbour) —
                    // stop guessing and solve the full network.
                    tf_obs::instant!("lb", "colgen_fallback");
                    let sol = self.value_budgeted(trace, m, k, weighted, budget)?;
                    let handle = LpWarmStart::from_arena(&self.graph, n, horizon);
                    return Some((sol, handle, accepted_first));
                }
                warm_pot = Some(WarmStart::from_potentials(self.graph.potentials().to_vec()));
                tf_obs::instant!("lb", "colgen_widen");
                continue;
            }

            // Pricing: scan every omitted column of the full pruned
            // network against the restricted optimum's duals.
            let violated = {
                let mut s = tf_obs::span!("lb", "colgen_price");
                let pot = self.graph.potentials();
                // Slots with no incoming active column are unreachable in
                // the solver's Dijkstra passes, so their raw potentials
                // accumulate arbitrary (large) values — pricing against
                // them reports spurious violations. The tightest *valid*
                // dual for such a slot is `π(sink)`: its slot→sink arc has
                // full residual capacity, forcing `π(slot) ≥ π(sink)`, and
                // clamping down to `π(sink)` keeps that arc tight-feasible
                // while only *raising* the reduced cost of arcs into the
                // slot. Pricing therefore uses `min(π(slot), π(sink))` —
                // still a dual-feasible certificate, but one that only
                // flags genuinely improving columns.
                let pi_sink = pot[sink];
                let poll_budget = !budget.is_unlimited();
                let mut scanned = 0u64;
                let mut violated = 0u64;
                pending.clear();
                for (ji, j) in jobs.iter().enumerate() {
                    let pi_j = pot[job0 + ji];
                    let mut act = active[ji].iter().copied().peekable();
                    let start_len = pending.len();
                    for t in j.r..j.h {
                        if act.peek() == Some(&t) {
                            act.next();
                            continue;
                        }
                        scanned += 1;
                        if poll_budget
                            && scanned.is_multiple_of(BUDGET_POLL_COLS)
                            && budget.exhausted()
                        {
                            return None;
                        }
                        let c = col_cost(j, t);
                        let beta = pot[slot0 + t as usize].min(pi_sink);
                        let rc = c + pi_j - beta;
                        if rc < -1e-9 * (1.0 + c.abs() + pi_j.abs() + beta.abs()) {
                            pending.push(t);
                            violated += 1;
                        }
                    }
                    if pending.len() > start_len {
                        let mut merged =
                            Vec::with_capacity(active[ji].len() + pending.len() - start_len);
                        let mut a = active[ji].iter().copied().peekable();
                        let mut b = pending[start_len..].iter().copied().peekable();
                        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
                            if x < y {
                                merged.push(x);
                                a.next();
                            } else {
                                merged.push(y);
                                b.next();
                            }
                        }
                        merged.extend(a);
                        merged.extend(b);
                        active[ji] = merged;
                        pending.truncate(start_len);
                    }
                }
                s.arg("violated", violated as f64);
                violated
            };
            if violated == 0 {
                obs_span.arg("rounds", f64::from(rounds));
                obs_span.arg("columns", total_cols as f64);
                self.last_ssp = None;
                let handle = LpWarmStart::from_arena(&self.graph, n, horizon);
                return Some((
                    LpSolution {
                        objective: res.cost,
                        horizon,
                        routed: res.flow,
                    },
                    handle,
                    accepted_first,
                ));
            }
            warm_pot = Some(WarmStart::from_potentials(self.graph.potentials().to_vec()));
        }
    }

    /// As [`lp_relaxation_solution`], on this arena.
    pub fn schedule(&mut self, trace: &Trace, m: usize, k: u32) -> LpSchedule {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            trace.is_integral(1e-9),
            "LP relaxation needs integral traces"
        );
        assert!(m >= 1);
        let n = trace.len();
        if n == 0 {
            return LpSchedule {
                assignments: vec![],
                completion: vec![],
                objective: 0.0,
            };
        }
        let horizon = tight_horizon(trace, m);
        self.last_ssp = None;
        let b = self.build(trace, m, k, false, horizon, true);
        let res = self.graph.solve(b.source, b.sink, b.total_supply);
        debug_assert_eq!(res.flow, b.total_supply);

        let mut assignments = Vec::with_capacity(n);
        let mut completion = Vec::with_capacity(n);
        for ids in &self.edge_ids {
            let mut a: Vec<(u64, i64)> = ids
                .iter()
                .filter_map(|&(t, id)| {
                    let f = self.graph.flow_on(id);
                    (f > 0).then_some((t, f))
                })
                .collect();
            a.sort_by_key(|&(t, _)| t);
            completion.push(a.last().map_or(0.0, |&(t, _)| (t + 1) as f64));
            assignments.push(a);
        }
        LpSchedule {
            assignments,
            completion,
            objective: res.cost,
        }
    }
}

thread_local! {
    /// One arena per thread: the rayon fan-outs in the harness each get
    /// their own, so no locking on the hot path.
    static SHARED_SOLVER: RefCell<LpSolver> = RefCell::new(LpSolver::new());
}

/// Solve the LP and extract the optimal assignment — the "fractional
/// OPT" schedule the paper's relaxation describes. Useful for inspecting
/// how the relaxation beats every integral schedule (E11) and for
/// verifying optimality conditions in tests.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_solution(trace: &Trace, m: usize, k: u32) -> LpSchedule {
    SHARED_SOLVER.with(|s| s.borrow_mut().schedule(trace, m, k))
}

/// Solve the LP relaxation for an integral trace on `m` unit-speed
/// machines with exponent `k ≥ 1`.
///
/// # Panics
/// If the trace is not integral (use [`Trace::to_integral`] first) or
/// `k = 0`.
pub fn lp_relaxation_value(trace: &Trace, m: usize, k: u32) -> LpSolution {
    lp_relaxation_value_weighted(trace, m, k, false)
}

/// As [`lp_relaxation_value`], abandoning the solve with `None` once
/// `budget` trips (see [`crate::budget::SolveBudget`]). Uses the same
/// per-thread arena; an aborted solve leaves it reusable.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &crate::budget::SolveBudget,
) -> Option<LpSolution> {
    SHARED_SOLVER.with(|s| s.borrow_mut().value_budgeted(trace, m, k, false, budget))
}

/// As [`lp_relaxation_value_budgeted`], seeded with a dual warm start
/// from a neighbouring solve (see [`LpSolver::value_warm_budgeted`]).
/// Returns the solution, the handle for the next neighbour, and whether
/// the warm start was accepted. Routes through the per-thread arena.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_warm_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &crate::budget::SolveBudget,
    warm: Option<&LpWarmStart>,
) -> Option<(LpSolution, LpWarmStart, bool)> {
    SHARED_SOLVER.with(|s| {
        s.borrow_mut()
            .value_warm_budgeted(trace, m, k, false, budget, warm)
    })
}

/// As [`LpSolver::value_colgen_budgeted`] (exact LP value by delayed
/// column generation, warm-startable), routed through the per-thread
/// arena. Returns the solution, the dual handle for the next
/// neighbouring instance, and whether `warm` was accepted; `None` iff
/// `budget` tripped.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_colgen_budgeted(
    trace: &Trace,
    m: usize,
    k: u32,
    budget: &crate::budget::SolveBudget,
    warm: Option<&LpWarmStart>,
) -> Option<(LpSolution, LpWarmStart, bool)> {
    SHARED_SOLVER.with(|s| {
        s.borrow_mut()
            .value_colgen_budgeted(trace, m, k, false, budget, warm)
    })
}

/// The weighted variant: minimizes a relaxation of `Σ_j w_j F_j^k` (the
/// cost of job `j`'s slots is multiplied by its trace weight). With
/// `weighted = false` all weights are treated as 1, recovering the
/// paper's (unweighted) LP. Soundness argument is identical — the weight
/// multiplies both sides of the per-job inequality.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_weighted(trace: &Trace, m: usize, k: u32, weighted: bool) -> LpSolution {
    lp_relaxation_value_at_horizon(trace, m, k, weighted, None)
}

/// As [`lp_relaxation_value_weighted`], but with an explicit horizon
/// override (must be at least the tight FCFS horizon to stay feasible).
/// Exposed so validation code can confirm the tight-horizon optimization
/// is lossless; everyday callers should pass `None`.
pub fn lp_relaxation_value_at_horizon(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
    horizon_override: Option<u64>,
) -> LpSolution {
    SHARED_SOLVER.with(|s| {
        s.borrow_mut()
            .value_at_horizon(trace, m, k, weighted, horizon_override)
    })
}

/// As [`lp_relaxation_value_weighted`], plus the independent
/// negative-cycle audit of the solved network (panics on failure).
pub fn lp_relaxation_value_certified(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
) -> LpSolution {
    SHARED_SOLVER.with(|s| s.borrow_mut().certified_value(trace, m, k, weighted))
}

/// Work counters of this thread's most recent shared-arena LP solve
/// (the free functions above all route through one thread-local
/// [`LpSolver`]). Zeroed stats if the thread has not solved yet.
pub fn last_solve_stats() -> McmfStats {
    SHARED_SOLVER.with(|s| s.borrow().last_stats())
}

/// The PR-1 solve path, kept verbatim as a test oracle: one-unit
/// successive shortest paths on [`MinCostFlow`], global tight horizon,
/// no per-job pruning. Property tests pin the optimized path to this.
pub fn lp_relaxation_value_reference(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
) -> LpSolution {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        trace.is_integral(1e-9),
        "LP relaxation needs integral traces"
    );
    assert!(m >= 1);
    if trace.is_empty() {
        return LpSolution {
            objective: 0.0,
            horizon: 0,
            routed: 0,
        };
    }

    let horizon = tight_horizon(trace, m);
    let n = trace.len();
    let slots = horizon as usize;

    // Nodes: source, jobs, slots, sink.
    let source = 0usize;
    let job0 = 1usize;
    let slot0 = job0 + n;
    let sink = slot0 + slots;
    let mut g = MinCostFlow::new(sink + 1);

    let mut total_supply: i64 = 0;
    for (ji, j) in trace.jobs().iter().enumerate() {
        let p = j.size.round() as i64;
        let r = j.arrival.round() as u64;
        total_supply += p;
        g.add_edge(source, job0 + ji, p, 0.0);
        let pk = ipow(j.size, k);
        let w = if weighted { j.weight } else { 1.0 };
        for t in r..horizon {
            let age = (t - r) as f64;
            let cost = w * (ipow(age, k) + pk) / j.size;
            g.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
        }
    }
    for t in 0..slots {
        g.add_edge(slot0 + t, sink, m as i64, 0.0);
    }

    let r = g.solve(source, sink, total_supply);
    debug_assert_eq!(r.flow, total_supply, "horizon too small for feasibility");
    LpSolution {
        objective: r.cost,
        horizon,
        routed: r.flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_job() {
        // Job (0, 1), k=1: one slot at cost (0 + 1)/1 = 1.
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_job_size_three_k1() {
        // Job (0, 3), k=1: slots 0,1,2 with costs (0+3)/3, (1+3)/3, (2+3)/3
        // = 1 + 4/3 + 5/3 = 4.
        let t = Trace::from_pairs([(0.0, 3.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 4.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn single_job_k2() {
        // Job (0, 2), k=2: slots 0,1: (0+4)/2 + (1+4)/2 = 4.5.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert!((s.objective - 4.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn contention_pushes_into_later_slots() {
        // Two unit jobs at t=0, one machine, k=1: slots 0 and 1, costs
        // (0+1) and (1+1): total 3.
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 3.0).abs() < 1e-9, "{}", s.objective);
        // Two machines: both in slot 0 → 2.
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn per_job_slot_cap_binds() {
        // One job of size 2 on two machines still needs two slots (x_jt ≤ 1):
        // k=1 cost = (0+2)/2 + (1+2)/2 = 2.5, not 2.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn release_dates_respected() {
        // Job (5, 1), k=1: earliest slot 5, age 0 → cost 1 regardless of
        // earlier idle slots.
        let t = Trace::from_pairs([(5.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lp_halved_lower_bounds_feasible_schedules() {
        // Compare LP/2 against the k-th power sum of an actual optimal-ish
        // schedule (SRPT at speed 1).
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions};
        let t = Trace::from_pairs([(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2, 3] {
                let lp = lp_relaxation_value(&t, m, k);
                let mut srpt = Policy::Srpt.make();
                let s = simulate(
                    &t,
                    srpt.as_mut(),
                    MachineConfig::new(m),
                    SimOptions::default(),
                )
                .unwrap();
                let obj = s.flow_power_sum(f64::from(k));
                assert!(
                    lp.objective / 2.0 <= obj + 1e-9,
                    "m={m} k={k}: LP/2 {} > SRPT {obj}",
                    lp.objective / 2.0
                );
            }
        }
    }

    #[test]
    fn solution_extraction_is_feasible_and_matches_value() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2] {
                let val = lp_relaxation_value(&t, m, k);
                let sol = lp_relaxation_solution(&t, m, k);
                assert!((sol.objective - val.objective).abs() < 1e-9, "m={m} k={k}");
                // Feasibility: every job fully assigned, within release
                // dates, per-slot cap m, per-job-slot cap 1.
                for j in t.jobs() {
                    assert_eq!(sol.work_of(j.id as usize), j.size.round() as i64);
                    for &(slot, units) in &sol.assignments[j.id as usize] {
                        assert!(slot as f64 >= j.arrival);
                        assert!(units == 1, "per-slot cap violated");
                    }
                }
                for (_, load) in sol.slot_loads() {
                    assert!(load <= m as i64);
                }
                // Fractional completion ≥ arrival + size for every job.
                for j in t.jobs() {
                    assert!(sol.completion[j.id as usize] >= j.arrival + 1.0);
                }
            }
        }
    }

    #[test]
    fn solution_prefers_early_slots() {
        // Single job: its slots must be exactly r..r+p (costs increase).
        let t = Trace::from_pairs([(2.0, 3.0)]).unwrap();
        let sol = lp_relaxation_solution(&t, 1, 2);
        let slots: Vec<u64> = sol.assignments[0].iter().map(|&(t, _)| t).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        assert_eq!(sol.completion[0], 5.0);
    }

    #[test]
    fn weighted_lp_scales_costs() {
        // One weighted job: objective scales linearly with the weight.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 5.0);
        let t = b.build().unwrap();
        let unweighted = lp_relaxation_value_weighted(&t, 1, 1, false);
        let weighted = lp_relaxation_value_weighted(&t, 1, 1, true);
        assert!((weighted.objective - 5.0 * unweighted.objective).abs() < 1e-9);
    }

    #[test]
    fn weighted_lp_prioritizes_heavy_jobs() {
        // Two unit jobs at t=0, one machine; the heavy one should take the
        // early slot. Weighted objective: w_heavy·1 + w_light·2 <
        // w_heavy·2 + w_light·1 iff w_heavy > w_light.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 1.0, 10.0);
        b.push_weighted(0.0, 1.0, 1.0);
        let t = b.build().unwrap();
        let s = lp_relaxation_value_weighted(&t, 1, 1, true);
        // heavy in slot 0: 10·(0+1)/1 + 1·(1+1)/1 = 12.
        assert!((s.objective - 12.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn weighted_lp_halved_lower_bounds_weighted_flow() {
        use tf_metrics_free::weighted_power_sum_of;
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions, TraceBuilder};
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 2.0);
        b.push_weighted(1.0, 1.0, 5.0);
        b.push_weighted(1.0, 2.0, 1.0);
        let t = b.build().unwrap();
        for k in [1u32, 2] {
            let lp = lp_relaxation_value_weighted(&t, 1, k, true);
            for p in [Policy::Hdf, Policy::Srpt, Policy::Rr] {
                let mut a = p.make();
                let s =
                    simulate(&t, a.as_mut(), MachineConfig::new(1), SimOptions::default()).unwrap();
                let obj = weighted_power_sum_of(&t, &s.flow, f64::from(k));
                assert!(lp.objective / 2.0 <= obj + 1e-9, "k={k} {p}");
            }
        }
    }

    /// Tiny local helper: weighted power sum without depending on
    /// tf-metrics (which does not depend on us either way — kept local to
    /// avoid a dev-dependency cycle risk).
    mod tf_metrics_free {
        use tf_simcore::Trace;

        pub fn weighted_power_sum_of(trace: &Trace, flows: &[f64], k: f64) -> f64 {
            trace
                .jobs()
                .iter()
                .map(|j| j.weight * flows[j.id as usize].powf(k))
                .sum()
        }
    }

    #[test]
    fn optimized_matches_reference_oracle() {
        // Hand-picked shapes with contention, gaps, and late arrivals.
        for pairs in [
            vec![(0.0, 1.0)],
            vec![(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0)],
            vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (9.0, 2.0)],
            vec![(0.0, 5.0), (0.0, 5.0), (3.0, 1.0), (7.0, 2.0), (7.0, 2.0)],
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            for m in [1usize, 2, 4] {
                for k in [1u32, 2, 3] {
                    let fast = lp_relaxation_value(&t, m, k);
                    let slow = lp_relaxation_value_reference(&t, m, k, false);
                    assert_eq!(fast.routed, slow.routed, "m={m} k={k}");
                    assert!(
                        (fast.objective - slow.objective).abs()
                            <= 1e-6 * (1.0 + slow.objective.abs()),
                        "m={m} k={k}: optimized {} vs reference {}",
                        fast.objective,
                        slow.objective
                    );
                }
            }
        }
    }

    #[test]
    fn certified_value_matches_and_passes_audit() {
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0)]).unwrap();
        for (m, k) in [(1usize, 1u32), (2, 2), (1, 3)] {
            let plain = lp_relaxation_value(&t, m, k);
            let certified = lp_relaxation_value_certified(&t, m, k, false);
            assert_eq!(plain, certified, "m={m} k={k}");
        }
        // Empty trace: no network to audit, still fine.
        let empty = Trace::from_pairs(std::iter::empty()).unwrap();
        assert_eq!(lp_relaxation_value_certified(&empty, 1, 2, false).routed, 0);
    }

    #[test]
    fn per_job_pruning_is_lossless_under_skew() {
        // One huge early job stretches the global horizon far past what a
        // tiny late job needs; the pruned network must agree with the
        // unpruned reference anyway.
        let t = Trace::from_pairs([(0.0, 12.0), (20.0, 1.0), (21.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2] {
                let fast = lp_relaxation_value(&t, m, k);
                let slow = lp_relaxation_value_reference(&t, m, k, false);
                assert!(
                    (fast.objective - slow.objective).abs() < 1e-9 * (1.0 + slow.objective),
                    "m={m} k={k}: {} vs {}",
                    fast.objective,
                    slow.objective
                );
                assert_eq!(fast.routed, slow.routed);
            }
        }
    }

    #[test]
    fn dedicated_arena_reuse_matches_shared_path() {
        let mut solver = LpSolver::new();
        let a = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0)]).unwrap();
        let b = Trace::from_pairs([(0.0, 1.0), (3.0, 4.0), (3.0, 1.0)]).unwrap();
        for t in [&a, &b, &a] {
            let via_arena = solver.value_at_horizon(t, 2, 2, false, None);
            let via_free = lp_relaxation_value(t, 2, 2);
            assert_eq!(via_arena, via_free);
        }
        let sched = solver.schedule(&b, 1, 1);
        assert!((sched.objective - lp_relaxation_solution(&b, 1, 1).objective).abs() < 1e-9);
    }

    /// A deterministic integral trace big enough to cross the
    /// [`SSP_CROSSOVER_JOBS`] boundary.
    fn biggish_trace(n: usize) -> Trace {
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i / 2) as f64, (1 + (i * 7 + 3) % 4) as f64))
            .collect();
        Trace::from_pairs(pairs).unwrap()
    }

    #[test]
    fn crossover_dispatch_agrees_across_the_boundary() {
        // One instance just below the crossover (unit-SSP path) and one
        // just above (arena path); both must match the unpruned
        // reference oracle.
        for n in [SSP_CROSSOVER_JOBS - 1, SSP_CROSSOVER_JOBS + 5] {
            let t = biggish_trace(n);
            for (m, k) in [(1usize, 1u32), (2, 2)] {
                let fast = lp_relaxation_value(&t, m, k);
                let slow = lp_relaxation_value_reference(&t, m, k, false);
                assert_eq!(fast.routed, slow.routed, "n={n} m={m} k={k}");
                assert!(
                    (fast.objective - slow.objective).abs() <= 1e-6 * (1.0 + slow.objective.abs()),
                    "n={n} m={m} k={k}: {} vs {}",
                    fast.objective,
                    slow.objective
                );
            }
        }
    }

    #[test]
    fn certified_value_audits_the_ssp_graph_on_small_instances() {
        // Small instance → SSP dispatch; certification must audit that
        // graph (a stale arena would happily pass with zero flow).
        let t = Trace::from_pairs([(0.0, 2.0), (1.0, 1.0), (1.0, 3.0)]).unwrap();
        let mut solver = LpSolver::new();
        let plain = solver.value_at_horizon(&t, 2, 2, false, None);
        assert!(solver.last_ssp.is_some(), "small instance should use SSP");
        let certified = solver.certified_value(&t, 2, 2, false);
        assert_eq!(plain, certified);
        // SSP solves surface their own counters — never a stale arena's.
        let st = solver.last_stats();
        assert!(st.heap_pops > 0 && st.phases > 0, "{st:?}");
        assert_eq!(st.units_routed, 6, "3 jobs × 2 slots each");
        assert_eq!(st.blocking_pushes, 0, "unit SSP has no blocking flow");
    }

    #[test]
    fn warm_budgeted_matches_cold_across_machine_sweep() {
        use crate::budget::SolveBudget;
        let t = biggish_trace(SSP_CROSSOVER_JOBS + 10);
        let mut solver = LpSolver::new();
        let mut warm: Option<LpWarmStart> = None;
        let mut accepted_any = false;
        for m in [1usize, 2, 3, 4] {
            let cold = lp_relaxation_value(&t, m, 2);
            let (w, next, accepted) = solver
                .value_warm_budgeted(&t, m, 2, false, &SolveBudget::unlimited(), warm.as_ref())
                .unwrap();
            assert_eq!(w.routed, cold.routed, "m={m}");
            assert_eq!(w.horizon, cold.horizon, "m={m}");
            assert!(
                (w.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "m={m}: warm {} vs cold {}",
                w.objective,
                cold.objective
            );
            accepted_any |= accepted;
            warm = Some(next);
        }
        assert!(
            accepted_any,
            "machine-sweep neighbours should accept at least one warm start"
        );
    }

    #[test]
    fn colgen_matches_the_full_arena_solve() {
        use crate::budget::SolveBudget;
        let mut solver = LpSolver::new();
        for n in [SSP_CROSSOVER_JOBS - 5, SSP_CROSSOVER_JOBS + 40, 200] {
            let t = biggish_trace(n);
            for (m, k) in [(1usize, 1u32), (2, 2), (3, 3)] {
                let full = lp_relaxation_value(&t, m, k);
                let (cg, _, _) = solver
                    .value_colgen_budgeted(&t, m, k, false, &SolveBudget::unlimited(), None)
                    .unwrap();
                assert_eq!(cg.routed, full.routed, "n={n} m={m} k={k}");
                assert_eq!(cg.horizon, full.horizon, "n={n} m={m} k={k}");
                assert!(
                    (cg.objective - full.objective).abs() <= 1e-7 * (1.0 + full.objective.abs()),
                    "n={n} m={m} k={k}: colgen {} vs full {}",
                    cg.objective,
                    full.objective
                );
            }
        }
    }

    #[test]
    fn colgen_warm_chain_matches_cold_across_machine_sweep() {
        use crate::budget::SolveBudget;
        let t = biggish_trace(SSP_CROSSOVER_JOBS + 30);
        let mut solver = LpSolver::new();
        let mut warm: Option<LpWarmStart> = None;
        for m in [1usize, 2, 3] {
            let cold = lp_relaxation_value(&t, m, 2);
            let (cg, next, _) = solver
                .value_colgen_budgeted(&t, m, 2, false, &SolveBudget::unlimited(), warm.as_ref())
                .unwrap();
            assert!(
                (cg.objective - cold.objective).abs() <= 1e-7 * (1.0 + cold.objective.abs()),
                "m={m}: colgen {} vs cold {}",
                cg.objective,
                cold.objective
            );
            warm = Some(next);
        }
    }

    #[test]
    fn colgen_honours_the_budget_and_empty_traces() {
        use crate::budget::SolveBudget;
        let mut solver = LpSolver::new();
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        let t = biggish_trace(SSP_CROSSOVER_JOBS + 30);
        assert!(solver
            .value_colgen_budgeted(&t, 2, 2, false, &spent, None)
            .is_none());
        let empty = Trace::from_pairs(std::iter::empty()).unwrap();
        let (sol, _, accepted) = solver
            .value_colgen_budgeted(&empty, 2, 2, false, &SolveBudget::unlimited(), None)
            .unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(!accepted);
    }

    #[test]
    fn warm_budgeted_honours_the_budget_and_empty_traces() {
        use crate::budget::SolveBudget;
        let t = biggish_trace(SSP_CROSSOVER_JOBS + 10);
        let mut solver = LpSolver::new();
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(solver
            .value_warm_budgeted(&t, 2, 2, false, &spent, None)
            .is_none());
        let empty = Trace::from_pairs(std::iter::empty()).unwrap();
        let (s, _, accepted) = solver
            .value_warm_budgeted(&empty, 1, 2, false, &SolveBudget::unlimited(), None)
            .unwrap();
        assert_eq!(s.routed, 0);
        assert!(!accepted);
    }

    #[test]
    #[should_panic(expected = "integral")]
    fn fractional_trace_rejected() {
        let t = Trace::from_pairs([(0.5, 1.0)]).unwrap();
        lp_relaxation_value(&t, 1, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.routed, 0);
    }
}

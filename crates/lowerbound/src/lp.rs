//! The paper's time-indexed LP relaxation (Section 3.1), solved exactly.
//!
//! Variables `x_jt` = units of work done on job `j` during unit slot
//! `[t, t+1)`, for integral traces:
//!
//! ```text
//!   min   Σ_j Σ_{t ≥ r_j} x_jt · ((t − r_j)^k + p_j^k) / p_j
//!   s.t.  Σ_t x_jt = p_j                (every job fully processed)
//!         Σ_j x_jt ≤ m                  (machine capacity per slot)
//!         x_jt ≤ 1                      (one machine per job per slot)
//!         x_jt ≥ 0
//! ```
//!
//! The cost uses the slot's *start* `t`, the smallest age in the slot, so
//! every feasible speed-1 schedule's indicator solution costs at most
//! `2 Σ_j F_j^k` — the LP optimum divided by 2 is a valid lower bound on
//! `OPT`'s k-th power sum. (We strip the paper's scaling constant γ, which
//! multiplies both sides.)
//!
//! All capacities are integers, so the LP is a transportation polytope
//! with integral vertices; the min-cost flow solver returns its exact
//! optimum.

use crate::mcmf::MinCostFlow;
use serde::{Deserialize, Serialize};
use tf_policies::Fcfs;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

/// Exact solution of the LP relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// The LP objective value.
    pub objective: f64,
    /// Time horizon (number of unit slots considered).
    pub horizon: u64,
    /// Units of work routed (= Σ p_j when feasible; always feasible for
    /// the generous horizon used).
    pub routed: i64,
}

/// Integer power helper (exact for the exponents the paper uses).
#[inline]
fn ipow(base: f64, k: u32) -> f64 {
    base.powi(k as i32)
}

/// Tight LP horizon: the makespan of a concrete non-idling feasible
/// schedule (FCFS on `m` unit-speed machines), rounded up, plus one slot.
///
/// Soundness: that schedule is itself a feasible LP solution inside
/// `[0, H)`. Every per-job slot cost is nondecreasing in `t`, so by the
/// standard transportation exchange argument any optimal solution can be
/// rerouted off slots `≥ H` without increasing cost — restricting the
/// horizon to `H` preserves the optimum while shrinking the network by an
/// order of magnitude on moderately loaded instances.
fn tight_horizon(trace: &Trace, m: usize) -> u64 {
    let mut fcfs = Fcfs::new();
    let sched = simulate(
        trace,
        &mut fcfs,
        MachineConfig::new(m),
        SimOptions::default(),
    )
    .expect("FCFS on a valid trace cannot fail");
    (sched.makespan()).ceil() as u64 + 1
}

/// The optimal LP *solution* (not just its value): per-job slot
/// assignments `x_jt > 0`, plus derived fractional completion times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSchedule {
    /// For each job (by id): `(slot, units)` pairs with positive flow,
    /// sorted by slot.
    pub assignments: Vec<Vec<(u64, i64)>>,
    /// Fractional completion per job: the end of its last used slot.
    pub completion: Vec<f64>,
    /// Objective value (same as the matching [`LpSolution`]).
    pub objective: f64,
}

impl LpSchedule {
    /// Work assigned to job `j` (must equal `p_j` for a feasible
    /// solution).
    pub fn work_of(&self, job: usize) -> i64 {
        self.assignments[job].iter().map(|&(_, u)| u).sum()
    }

    /// Per-slot total load (for capacity verification).
    pub fn slot_loads(&self) -> std::collections::BTreeMap<u64, i64> {
        let mut loads = std::collections::BTreeMap::new();
        for a in &self.assignments {
            for &(t, u) in a {
                *loads.entry(t).or_insert(0) += u;
            }
        }
        loads
    }
}

/// Solve the LP and extract the optimal assignment — the "fractional
/// OPT" schedule the paper's relaxation describes. Useful for inspecting
/// how the relaxation beats every integral schedule (E11) and for
/// verifying optimality conditions in tests.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_solution(trace: &Trace, m: usize, k: u32) -> LpSchedule {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        trace.is_integral(1e-9),
        "LP relaxation needs integral traces"
    );
    assert!(m >= 1);
    let n = trace.len();
    if n == 0 {
        return LpSchedule {
            assignments: vec![],
            completion: vec![],
            objective: 0.0,
        };
    }
    let horizon = tight_horizon(trace, m);
    let slots = horizon as usize;
    let source = 0usize;
    let job0 = 1usize;
    let slot0 = job0 + n;
    let sink = slot0 + slots;
    let mut g = MinCostFlow::new(sink + 1);

    let mut total_supply: i64 = 0;
    let mut edge_ids: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n];
    for (ji, j) in trace.jobs().iter().enumerate() {
        let p = j.size.round() as i64;
        let r = j.arrival.round() as u64;
        total_supply += p;
        g.add_edge(source, job0 + ji, p, 0.0);
        let pk = ipow(j.size, k);
        for t in r..horizon {
            let age = (t - r) as f64;
            let cost = (ipow(age, k) + pk) / j.size;
            let id = g.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
            edge_ids[ji].push((t, id));
        }
    }
    for t in 0..slots {
        g.add_edge(slot0 + t, sink, m as i64, 0.0);
    }
    let res = g.solve(source, sink, total_supply);
    debug_assert_eq!(res.flow, total_supply);

    let mut assignments = Vec::with_capacity(n);
    let mut completion = Vec::with_capacity(n);
    for ids in &edge_ids {
        let mut a: Vec<(u64, i64)> = ids
            .iter()
            .filter_map(|&(t, id)| {
                let f = g.flow_on(id);
                (f > 0).then_some((t, f))
            })
            .collect();
        a.sort_by_key(|&(t, _)| t);
        completion.push(a.last().map_or(0.0, |&(t, _)| (t + 1) as f64));
        assignments.push(a);
    }
    LpSchedule {
        assignments,
        completion,
        objective: res.cost,
    }
}

/// Solve the LP relaxation for an integral trace on `m` unit-speed
/// machines with exponent `k ≥ 1`.
///
/// # Panics
/// If the trace is not integral (use [`Trace::to_integral`] first) or
/// `k = 0`.
pub fn lp_relaxation_value(trace: &Trace, m: usize, k: u32) -> LpSolution {
    lp_relaxation_value_weighted(trace, m, k, false)
}

/// The weighted variant: minimizes a relaxation of `Σ_j w_j F_j^k` (the
/// cost of job `j`'s slots is multiplied by its trace weight). With
/// `weighted = false` all weights are treated as 1, recovering the
/// paper's (unweighted) LP. Soundness argument is identical — the weight
/// multiplies both sides of the per-job inequality.
///
/// # Panics
/// As [`lp_relaxation_value`].
pub fn lp_relaxation_value_weighted(trace: &Trace, m: usize, k: u32, weighted: bool) -> LpSolution {
    lp_relaxation_value_at_horizon(trace, m, k, weighted, None)
}

/// As [`lp_relaxation_value_weighted`], but with an explicit horizon
/// override (must be at least the tight FCFS horizon to stay feasible).
/// Exposed so validation code can confirm the tight-horizon optimization
/// is lossless; everyday callers should pass `None`.
pub fn lp_relaxation_value_at_horizon(
    trace: &Trace,
    m: usize,
    k: u32,
    weighted: bool,
    horizon_override: Option<u64>,
) -> LpSolution {
    assert!(k >= 1, "k must be at least 1");
    assert!(
        trace.is_integral(1e-9),
        "LP relaxation needs integral traces"
    );
    assert!(m >= 1);
    if trace.is_empty() {
        return LpSolution {
            objective: 0.0,
            horizon: 0,
            routed: 0,
        };
    }

    let tight = tight_horizon(trace, m);
    let horizon = match horizon_override {
        Some(h) => {
            assert!(h >= tight, "horizon override below the feasible minimum");
            h
        }
        None => tight,
    };
    let n = trace.len();
    let slots = horizon as usize;

    // Nodes: source, jobs, slots, sink.
    let source = 0usize;
    let job0 = 1usize;
    let slot0 = job0 + n;
    let sink = slot0 + slots;
    let mut g = MinCostFlow::new(sink + 1);

    let mut total_supply: i64 = 0;
    for (ji, j) in trace.jobs().iter().enumerate() {
        let p = j.size.round() as i64;
        let r = j.arrival.round() as u64;
        total_supply += p;
        g.add_edge(source, job0 + ji, p, 0.0);
        let pk = ipow(j.size, k);
        let w = if weighted { j.weight } else { 1.0 };
        for t in r..horizon {
            let age = (t - r) as f64;
            let cost = w * (ipow(age, k) + pk) / j.size;
            g.add_edge(job0 + ji, slot0 + t as usize, 1, cost);
        }
    }
    for t in 0..slots {
        g.add_edge(slot0 + t, sink, m as i64, 0.0);
    }

    let r = g.solve(source, sink, total_supply);
    debug_assert_eq!(r.flow, total_supply, "horizon too small for feasibility");
    LpSolution {
        objective: r.cost,
        horizon,
        routed: r.flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_job() {
        // Job (0, 1), k=1: one slot at cost (0 + 1)/1 = 1.
        let t = Trace::from_pairs([(0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_job_size_three_k1() {
        // Job (0, 3), k=1: slots 0,1,2 with costs (0+3)/3, (1+3)/3, (2+3)/3
        // = 1 + 4/3 + 5/3 = 4.
        let t = Trace::from_pairs([(0.0, 3.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 4.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn single_job_k2() {
        // Job (0, 2), k=2: slots 0,1: (0+4)/2 + (1+4)/2 = 4.5.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert!((s.objective - 4.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn contention_pushes_into_later_slots() {
        // Two unit jobs at t=0, one machine, k=1: slots 0 and 1, costs
        // (0+1) and (1+1): total 3.
        let t = Trace::from_pairs([(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 3.0).abs() < 1e-9, "{}", s.objective);
        // Two machines: both in slot 0 → 2.
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn per_job_slot_cap_binds() {
        // One job of size 2 on two machines still needs two slots (x_jt ≤ 1):
        // k=1 cost = (0+2)/2 + (1+2)/2 = 2.5, not 2.
        let t = Trace::from_pairs([(0.0, 2.0)]).unwrap();
        let s = lp_relaxation_value(&t, 2, 1);
        assert!((s.objective - 2.5).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn release_dates_respected() {
        // Job (5, 1), k=1: earliest slot 5, age 0 → cost 1 regardless of
        // earlier idle slots.
        let t = Trace::from_pairs([(5.0, 1.0)]).unwrap();
        let s = lp_relaxation_value(&t, 1, 1);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lp_halved_lower_bounds_feasible_schedules() {
        // Compare LP/2 against the k-th power sum of an actual optimal-ish
        // schedule (SRPT at speed 1).
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions};
        let t = Trace::from_pairs([(0.0, 3.0), (1.0, 1.0), (2.0, 2.0), (2.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2, 3] {
                let lp = lp_relaxation_value(&t, m, k);
                let mut srpt = Policy::Srpt.make();
                let s = simulate(
                    &t,
                    srpt.as_mut(),
                    MachineConfig::new(m),
                    SimOptions::default(),
                )
                .unwrap();
                let obj = s.flow_power_sum(f64::from(k));
                assert!(
                    lp.objective / 2.0 <= obj + 1e-9,
                    "m={m} k={k}: LP/2 {} > SRPT {obj}",
                    lp.objective / 2.0
                );
            }
        }
    }

    #[test]
    fn solution_extraction_is_feasible_and_matches_value() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 1.0), (1.0, 3.0), (4.0, 1.0)]).unwrap();
        for m in [1usize, 2] {
            for k in [1u32, 2] {
                let val = lp_relaxation_value(&t, m, k);
                let sol = lp_relaxation_solution(&t, m, k);
                assert!((sol.objective - val.objective).abs() < 1e-9, "m={m} k={k}");
                // Feasibility: every job fully assigned, within release
                // dates, per-slot cap m, per-job-slot cap 1.
                for j in t.jobs() {
                    assert_eq!(sol.work_of(j.id as usize), j.size.round() as i64);
                    for &(slot, units) in &sol.assignments[j.id as usize] {
                        assert!(slot as f64 >= j.arrival);
                        assert!(units == 1, "per-slot cap violated");
                    }
                }
                for (_, load) in sol.slot_loads() {
                    assert!(load <= m as i64);
                }
                // Fractional completion ≥ arrival + size for every job.
                for j in t.jobs() {
                    assert!(sol.completion[j.id as usize] >= j.arrival + 1.0);
                }
            }
        }
    }

    #[test]
    fn solution_prefers_early_slots() {
        // Single job: its slots must be exactly r..r+p (costs increase).
        let t = Trace::from_pairs([(2.0, 3.0)]).unwrap();
        let sol = lp_relaxation_solution(&t, 1, 2);
        let slots: Vec<u64> = sol.assignments[0].iter().map(|&(t, _)| t).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        assert_eq!(sol.completion[0], 5.0);
    }

    #[test]
    fn weighted_lp_scales_costs() {
        // One weighted job: objective scales linearly with the weight.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 5.0);
        let t = b.build().unwrap();
        let unweighted = lp_relaxation_value_weighted(&t, 1, 1, false);
        let weighted = lp_relaxation_value_weighted(&t, 1, 1, true);
        assert!((weighted.objective - 5.0 * unweighted.objective).abs() < 1e-9);
    }

    #[test]
    fn weighted_lp_prioritizes_heavy_jobs() {
        // Two unit jobs at t=0, one machine; the heavy one should take the
        // early slot. Weighted objective: w_heavy·1 + w_light·2 <
        // w_heavy·2 + w_light·1 iff w_heavy > w_light.
        use tf_simcore::TraceBuilder;
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 1.0, 10.0);
        b.push_weighted(0.0, 1.0, 1.0);
        let t = b.build().unwrap();
        let s = lp_relaxation_value_weighted(&t, 1, 1, true);
        // heavy in slot 0: 10·(0+1)/1 + 1·(1+1)/1 = 12.
        assert!((s.objective - 12.0).abs() < 1e-9, "{}", s.objective);
    }

    #[test]
    fn weighted_lp_halved_lower_bounds_weighted_flow() {
        use tf_metrics_free::weighted_power_sum_of;
        use tf_policies::Policy;
        use tf_simcore::{simulate, MachineConfig, SimOptions, TraceBuilder};
        let mut b = TraceBuilder::new();
        b.push_weighted(0.0, 3.0, 2.0);
        b.push_weighted(1.0, 1.0, 5.0);
        b.push_weighted(1.0, 2.0, 1.0);
        let t = b.build().unwrap();
        for k in [1u32, 2] {
            let lp = lp_relaxation_value_weighted(&t, 1, k, true);
            for p in [Policy::Hdf, Policy::Srpt, Policy::Rr] {
                let mut a = p.make();
                let s =
                    simulate(&t, a.as_mut(), MachineConfig::new(1), SimOptions::default()).unwrap();
                let obj = weighted_power_sum_of(&t, &s.flow, f64::from(k));
                assert!(lp.objective / 2.0 <= obj + 1e-9, "k={k} {p}");
            }
        }
    }

    /// Tiny local helper: weighted power sum without depending on
    /// tf-metrics (which does not depend on us either way — kept local to
    /// avoid a dev-dependency cycle risk).
    mod tf_metrics_free {
        use tf_simcore::Trace;

        pub fn weighted_power_sum_of(trace: &Trace, flows: &[f64], k: f64) -> f64 {
            trace
                .jobs()
                .iter()
                .map(|j| j.weight * flows[j.id as usize].powf(k))
                .sum()
        }
    }

    #[test]
    #[should_panic(expected = "integral")]
    fn fractional_trace_rejected() {
        let t = Trace::from_pairs([(0.5, 1.0)]).unwrap();
        lp_relaxation_value(&t, 1, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_pairs(std::iter::empty()).unwrap();
        let s = lp_relaxation_value(&t, 1, 2);
        assert_eq!(s.objective, 0.0);
        assert_eq!(s.routed, 0);
    }
}

//! Minimum-cost maximum-flow solvers.
//!
//! Two implementations share one interface shape:
//!
//! * [`MinCostFlow`] — the original successive-shortest-paths solver with
//!   Johnson potentials, **one unit-bottleneck path per Dijkstra**. It is
//!   deliberately kept simple and serves as the reference oracle the
//!   optimized solver is property-tested against.
//! * [`McmfGraph`] — the arena-backed primal-dual solver the hot paths
//!   use: early-exit Dijkstra (stops once the sink's label is settled),
//!   **multi-unit augmentation per phase** (a blocking flow over the
//!   admissible zero-reduced-cost subgraph routes every unit the current
//!   potentials support, so a job pushes its whole remaining size along
//!   its cheapest-slot prefix instead of one unit per Dijkstra), and
//!   buffers that survive [`McmfGraph::reset`] so sweeps solving many
//!   instances stop reallocating. See `docs/SOLVER.md` for the design and
//!   the optimality argument.
//!
//! Capacities are integers (`i64`), costs are non-negative `f64`. With all
//! original costs non-negative the initial potentials are zero and every
//! iteration runs Dijkstra on reduced costs; tiny negative reduced costs
//! from floating-point rounding are clamped. This is exact for the
//! transportation LPs built in [`crate::lp`] (integral optimal solutions
//! exist; path costs are sums of ≤ 3 terms, so rounding error is ~ulps).
//! Both solvers expose the same independent negative-cycle certificate
//! (`verify_optimal`), so every optimized solve can be audited.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::budget::SolveBudget;

/// How many residual arcs between budget polls inside the warm-start
/// dual-feasibility scan — same cadence as [`BUDGET_POLL_POPS`], same
/// rationale: the scan is O(E) and must honour a deadline mid-pass.
const BUDGET_POLL_ARCS: u64 = 4096;

/// How many heap pops between budget polls inside Dijkstra. Polling
/// reads `Instant::now()` (~20ns); at this stride the overhead is
/// unmeasurable while a deadline is still honoured within ~a millisecond
/// on any realistic graph.
const BUDGET_POLL_POPS: u64 = 4096;

/// One directed edge; edge `i ^ 1` is its residual twin.
#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: i64,
    cost: f64,
}

/// A min-cost max-flow problem instance / solver.
#[derive(Debug, Default, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<u32>>, // node -> indices into `edges`
    edges: Vec<Edge>,
    stats: McmfStats,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: f64,
}

impl MinCostFlow {
    /// A problem with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
            stats: McmfStats::default(),
        }
    }

    /// Work counters of the most recent [`MinCostFlow::solve`] call
    /// (same schema as the arena solver's [`McmfGraph::stats`], so the
    /// `mcmf.*` observability namespace is populated no matter which
    /// side of the size crossover a solve dispatched to). On this
    /// one-unit SSP solver every augmentation is its own phase and
    /// there is no blocking flow, so `blocking_pushes` and
    /// `fallback_augments` stay zero.
    pub fn stats(&self) -> McmfStats {
        self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Add a directed edge `u → v` with capacity `cap ≥ 0` and cost
    /// `cost ≥ 0`. Returns the edge index (useful to query final flow via
    /// [`MinCostFlow::flow_on`]).
    ///
    /// # Panics
    /// If `cost` is negative or non-finite, or a node is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> usize {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "costs must be non-negative, got {cost}"
        );
        assert!(
            u < self.graph.len() && v < self.graph.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.graph[u].push(id as u32);
        self.edges.push(Edge {
            to: v as u32,
            cap,
            cost,
        });
        self.graph[v].push((id + 1) as u32);
        self.edges.push(Edge {
            to: u as u32,
            cap: 0,
            cost: -cost,
        });
        id
    }

    /// Flow currently on edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id ^ 1].cap
    }

    /// [`MinCostFlow::solve`] under a cooperative [`SolveBudget`]:
    /// returns `None` as soon as the budget trips, polled once per
    /// augmentation phase (each phase on the small instances this solver
    /// is dispatched to — see `lp.rs`'s crossover — runs in microseconds,
    /// so the deadline is honoured well within a millisecond). On `None`
    /// the graph is left mid-solve and must not be reused.
    pub fn solve_budgeted(
        &mut self,
        s: usize,
        t: usize,
        target: i64,
        budget: &SolveBudget,
    ) -> Option<FlowResult> {
        let _obs_span = tf_obs::span!("mcmf", "solve");
        self.stats = McmfStats::default();
        let poll_budget = !budget.is_unlimited();
        let n = self.graph.len();
        let mut potential = vec![0.0f64; n];
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge = vec![u32::MAX; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;

        while total_flow < target {
            if poll_budget && budget.exhausted() {
                return None;
            }
            // Dijkstra on reduced costs, stopping as soon as the sink is
            // settled: nodes popped later cannot lie on a shortest s-t
            // path under nonnegative reduced costs.
            let _dij_span = tf_obs::span!("mcmf", "dijkstra");
            dist.fill(f64::INFINITY);
            prev_edge.fill(u32::MAX);
            dist[s] = 0.0;
            let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
            heap.push(Reverse(HeapItem {
                dist: 0.0,
                node: s as u32,
            }));
            while let Some(Reverse(HeapItem { dist: d, node })) = heap.pop() {
                self.stats.heap_pops += 1;
                let u = node as usize;
                if d > dist[u] {
                    continue;
                }
                if u == t {
                    break;
                }
                for &eid in &self.graph[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= 0 {
                        continue;
                    }
                    self.stats.arcs_scanned += 1;
                    let v = e.to as usize;
                    // Reduced cost; clamp fp noise.
                    let rc = (e.cost + potential[u] - potential[v]).max(0.0);
                    let nd = d + rc;
                    if nd < dist[v] {
                        dist[v] = nd;
                        prev_edge[v] = eid;
                        heap.push(Reverse(HeapItem {
                            dist: nd,
                            node: v as u32,
                        }));
                    }
                }
            }
            drop(_dij_span);
            if !dist[t].is_finite() {
                break; // no augmenting path
            }
            // Potential update capped at the sink's label: unsettled nodes
            // carry tentative (over-)estimates, so adding them raw could
            // leave negative reduced costs. `min(d, dist[t])` preserves
            // the nonnegativity invariant for every residual edge.
            let cap_d = dist[t];
            for (p, &d) in potential.iter_mut().zip(&dist) {
                *p += d.min(cap_d);
            }
            // Bottleneck along the path.
            let mut push = target - total_flow;
            let mut v = t;
            while v != s {
                let eid = prev_edge[v] as usize;
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to as usize;
            }
            let mut v = t;
            while v != s {
                let eid = prev_edge[v] as usize;
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                total_cost += self.edges[eid].cost * push as f64;
                v = self.edges[eid ^ 1].to as usize;
            }
            total_flow += push;
            self.stats.phases += 1;
            self.stats.units_routed += push as u64;
        }
        Some(FlowResult {
            flow: total_flow,
            cost: total_cost,
        })
    }

    /// Route up to `target` units of flow from `s` to `t` at minimum cost.
    /// Routes the maximum feasible amount if less than `target` fits.
    pub fn solve(&mut self, s: usize, t: usize, target: i64) -> FlowResult {
        self.solve_budgeted(s, t, target, &SolveBudget::unlimited())
            .expect("an unlimited budget never aborts a solve")
    }

    /// Independent optimality certificate for the current flow: a flow of
    /// its value is minimum-cost **iff the residual graph has no
    /// negative-cost cycle** (the classical criterion — it does not depend
    /// on how the flow was computed). Runs Bellman–Ford over all residual
    /// edges; `tol` absorbs f64 rounding along cycles.
    ///
    /// Intended for tests and audits (`O(V·E)`), not hot paths.
    pub fn verify_optimal(&self, tol: f64) -> bool {
        let n = self.graph.len();
        let mut dist = vec![0.0f64; n]; // virtual super-source to all nodes
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                for &eid in &self.graph[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= 0 {
                        continue;
                    }
                    let v = e.to as usize;
                    if dist[u] + e.cost < dist[v] - tol {
                        dist[v] = dist[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                return true; // converged: no negative cycle
            }
            if round == n - 1 {
                return false; // still relaxing after V rounds: negative cycle
            }
        }
        true
    }
}

/// Work counters for the most recent [`McmfGraph::solve`] call. All
/// counts are exact and deterministic (they depend only on the instance,
/// never on wall-clock or thread scheduling), so they double as
/// regression-test material. Retrieve via [`McmfGraph::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McmfStats {
    /// Primal-dual phases run (one Dijkstra + one blocking flow each).
    pub phases: u64,
    /// Nodes popped from the Dijkstra heap across all phases.
    pub heap_pops: u64,
    /// Residual arcs relaxed (scanned with positive capacity) in Dijkstra.
    pub arcs_scanned: u64,
    /// Augmenting paths applied inside blocking flows.
    pub blocking_pushes: u64,
    /// Times the single-path fallback ([`McmfGraph`] docs) had to fire.
    pub fallback_augments: u64,
    /// Total units of flow routed.
    pub units_routed: u64,
}

impl McmfStats {
    /// These counters as a flat [`tf_obs::ObsRegistry`] under the `mcmf.`
    /// namespace, mergeable with `sim.` and `cache.` registries.
    pub fn registry(&self) -> tf_obs::ObsRegistry {
        tf_obs::ObsRegistry::from_counters([
            ("mcmf.phases", self.phases as f64),
            ("mcmf.heap_pops", self.heap_pops as f64),
            ("mcmf.arcs_scanned", self.arcs_scanned as f64),
            ("mcmf.blocking_pushes", self.blocking_pushes as f64),
            ("mcmf.fallback_augments", self.fallback_augments as f64),
            ("mcmf.units_routed", self.units_routed as f64),
        ])
    }

    /// Fold another solve's counters into this one (all fields sum).
    pub fn absorb(&mut self, other: &McmfStats) {
        self.phases += other.phases;
        self.heap_pops += other.heap_pops;
        self.arcs_scanned += other.arcs_scanned;
        self.blocking_pushes += other.blocking_pushes;
        self.fallback_augments += other.fallback_augments;
        self.units_routed += other.units_routed;
    }
}

/// Admissibility of a residual arc under the current potentials: reduced
/// cost `cost + π[u] − π[v]` is (numerically) zero. The tolerance scales
/// with the operand magnitudes so large-horizon, large-`k` costs don't
/// starve the admissible graph of the arcs Dijkstra actually relaxed.
#[inline]
fn admissible(cost: f64, pot_u: f64, pot_v: f64) -> bool {
    let rc = cost + pot_u - pot_v;
    rc <= 1e-9 * (1.0 + cost.abs() + pot_u.abs() + pot_v.abs())
}

/// Arena-backed min-cost max-flow solver for the LP hot path.
///
/// Same problem class as [`MinCostFlow`] (non-negative costs, integral
/// capacities) but engineered for throughput on the transportation
/// networks [`crate::lp`] builds:
///
/// * **Flat arc storage** (`tail`/`head`/`cap`/`cost` vectors with a
///   lazily rebuilt CSR adjacency) instead of per-node `Vec<u32>` edge
///   lists — one allocation each, reused across solves via
///   [`McmfGraph::reset`].
/// * **Early-exit Dijkstra**: stops as soon as the sink pops, and the
///   potential update is capped at the sink's label
///   (`π[v] += min(dist[v], dist[t])`) which preserves non-negative
///   reduced costs even for unsettled nodes.
/// * **Multi-unit phases**: after each Dijkstra, a Dinic-style blocking
///   flow over the admissible (zero-reduced-cost) subgraph routes every
///   unit the current potentials support. Each admissible s→t path costs
///   exactly `π[t] − π[s]` per unit — the shortest-path cost — so the
///   aggregate push is cost-optimal (see `docs/SOLVER.md`); a job pushes
///   its whole remaining size along its cheapest-slot prefix in one
///   phase instead of one unit per Dijkstra.
///
/// Call [`McmfGraph::solve`] **once per built graph** (as the LP layer
/// does): potentials and the reported cost assume the graph starts with
/// zero flow. [`McmfGraph::verify_optimal`] provides the same
/// independent negative-cycle certificate as the reference solver.
#[derive(Debug, Default, Clone)]
pub struct McmfGraph {
    n: usize,
    // Arc `2i` is the i-th added edge, `2i ^ 1` its residual twin.
    tail: Vec<u32>,
    head: Vec<u32>,
    cap: Vec<i64>,
    cost: Vec<f64>,
    // CSR adjacency over arcs, rebuilt lazily after insertions.
    csr_start: Vec<u32>,
    csr_arcs: Vec<u32>,
    csr_built: bool,
    // Scratch buffers surviving `reset` so sweeps stop reallocating.
    potential: Vec<f64>,
    dist: Vec<f64>,
    prev_arc: Vec<u32>,
    level: Vec<u32>,
    cur: Vec<u32>,
    queue: Vec<u32>,
    path: Vec<u32>,
    heap: DaryHeap,
    stats: McmfStats,
}

/// A dual warm-start handle: node potentials snapshotted from a finished
/// [`McmfGraph`] solve, to seed a later solve on a *neighbouring*
/// instance (same trace at a different machine count, a perturbed hunt
/// candidate, a refined aggregation grid).
///
/// Correctness does not rest on the neighbour relation: before use, the
/// potentials are repaired by one price fix-up sweep (saturated arcs end
/// a solve with negative reduced cost, so the raw duals are residual-
/// feasible only) and then revalidated against the target graph by an
/// O(E) dual-feasibility scan ([`McmfGraph::solve_warm_budgeted`]);
/// rejected potentials fall back to the cold all-zeros start. Dual
/// feasibility (`cost + π[u] − π[v] ≥ 0` on every positive-capacity arc
/// of the zero-flow graph) is exactly the invariant the cold start
/// establishes trivially, so an accepted warm start runs the *same*
/// primal-dual algorithm from a further-along dual point — the optimum
/// it reaches is identical, only fewer phases are needed. Capacities
/// never enter the invariant, which is why potentials transfer across
/// machine counts unchanged.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    potentials: Vec<f64>,
}

impl WarmStart {
    /// Wrap an explicit potential vector (one entry per node of the
    /// target graph, in node order).
    pub fn from_potentials(potentials: Vec<f64>) -> Self {
        WarmStart { potentials }
    }

    /// The stored node potentials.
    pub fn potentials(&self) -> &[f64] {
        &self.potentials
    }

    /// Number of node potentials stored.
    pub fn len(&self) -> usize {
        self.potentials.len()
    }

    /// True iff no potentials are stored.
    pub fn is_empty(&self) -> bool {
        self.potentials.is_empty()
    }
}

impl McmfGraph {
    /// An empty arena; call [`McmfGraph::reset`] to size it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the graph and set the node count, keeping every buffer's
    /// allocation for reuse.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.tail.clear();
        self.head.clear();
        self.cap.clear();
        self.cost.clear();
        self.csr_built = false;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add a directed edge `u → v` with capacity `cap ≥ 0` and cost
    /// `cost ≥ 0`. Returns the edge id for [`McmfGraph::flow_on`].
    ///
    /// # Panics
    /// If `cost` is negative or non-finite, or a node is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> usize {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "costs must be non-negative, got {cost}"
        );
        assert!(u < self.n && v < self.n, "node out of range");
        let id = self.tail.len();
        self.tail.push(u as u32);
        self.head.push(v as u32);
        self.cap.push(cap);
        self.cost.push(cost);
        self.tail.push(v as u32);
        self.head.push(u as u32);
        self.cap.push(0);
        self.cost.push(-cost);
        self.csr_built = false;
        id
    }

    /// Flow currently on edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    /// Work counters of the most recent [`McmfGraph::solve`] call.
    pub fn stats(&self) -> McmfStats {
        self.stats
    }

    fn build_csr(&mut self) {
        let m = self.tail.len();
        self.csr_start.clear();
        self.csr_start.resize(self.n + 1, 0);
        for &u in &self.tail {
            self.csr_start[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            self.csr_start[i + 1] += self.csr_start[i];
        }
        self.csr_arcs.clear();
        self.csr_arcs.resize(m, 0);
        // `cur` doubles as the CSR fill cursor here.
        self.cur.clear();
        self.cur.extend_from_slice(&self.csr_start[..self.n]);
        for a in 0..m {
            let u = self.tail[a] as usize;
            self.csr_arcs[self.cur[u] as usize] = a as u32;
            self.cur[u] += 1;
        }
        self.csr_built = true;
    }

    /// Shortest reduced-cost distances from `s`, stopping once `t` pops.
    /// Returns false iff `t` is unreachable in the residual graph.
    /// Returns `Some(reachable)` normally, `None` if `budget` tripped
    /// mid-search (polled every [`BUDGET_POLL_POPS`] heap pops, so a
    /// deadline is honoured even inside one long shortest-path pass).
    fn dijkstra(&mut self, s: usize, t: usize, budget: &SolveBudget) -> Option<bool> {
        let n = self.n;
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.prev_arc.clear();
        self.prev_arc.resize(n, u32::MAX);
        self.heap.clear();
        self.dist[s] = 0.0;
        self.heap.push(HeapItem {
            dist: 0.0,
            node: s as u32,
        });
        let Self {
            heap,
            dist,
            prev_arc,
            csr_start,
            csr_arcs,
            cap,
            cost,
            head,
            potential,
            stats,
            ..
        } = self;
        // Counters accumulate in locals so the loop body stays lean.
        let mut pops = 0u64;
        let mut scanned = 0u64;
        let poll_budget = !budget.is_unlimited();
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            let u = node as usize;
            pops += 1;
            if poll_budget && pops.is_multiple_of(BUDGET_POLL_POPS) && budget.exhausted() {
                stats.heap_pops += pops;
                stats.arcs_scanned += scanned;
                return None;
            }
            if d > dist[u] {
                continue;
            }
            if u == t {
                break;
            }
            for &arc in &csr_arcs[csr_start[u] as usize..csr_start[u + 1] as usize] {
                let a = arc as usize;
                if cap[a] <= 0 {
                    continue;
                }
                scanned += 1;
                let v = head[a] as usize;
                let rc = (cost[a] + potential[u] - potential[v]).max(0.0);
                let nd = d + rc;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev_arc[v] = a as u32;
                    heap.push(HeapItem {
                        dist: nd,
                        node: v as u32,
                    });
                }
            }
        }
        stats.heap_pops += pops;
        stats.arcs_scanned += scanned;
        Some(dist[t].is_finite())
    }

    /// BFS hop levels over the admissible residual subgraph, restricted
    /// to the region the preceding Dijkstra settled: nodes with label
    /// `dist ≤ max_dist` (the shortest `s→t` distance). Returns false iff
    /// `t` is unreachable through admissible arcs in that region.
    ///
    /// The restriction is a pure profile win, not an approximation. The
    /// Dijkstra predecessor chain of `t` lies entirely inside the region
    /// (every chain node popped with a final label `≤ dist[t]`) and every
    /// chain arc is tight after the capped potential update, so at least
    /// one augmenting path always survives the filter — each phase still
    /// makes progress, and pushing only along reduced-cost-zero arcs
    /// preserves the primal-dual invariant exactly as before. What the
    /// filter drops are *tied* alternative paths through nodes whose
    /// capped label exceeds `dist[t]`; missing them can only trade a few
    /// extra (cheap) phases for not re-scanning the whole arc array every
    /// phase, which profiling showed dominated large solves.
    fn bfs_levels(&mut self, s: usize, t: usize, max_dist: f64) -> bool {
        self.level.clear();
        self.level.resize(self.n, u32::MAX);
        self.queue.clear();
        self.level[s] = 0;
        self.queue.push(s as u32);
        let mut qi = 0;
        while qi < self.queue.len() {
            let u = self.queue[qi] as usize;
            qi += 1;
            let lu = self.level[u];
            for idx in self.csr_start[u] as usize..self.csr_start[u + 1] as usize {
                let a = self.csr_arcs[idx] as usize;
                if self.cap[a] <= 0 {
                    continue;
                }
                let v = self.head[a] as usize;
                if self.level[v] != u32::MAX
                    || self.dist[v] > max_dist
                    || !admissible(self.cost[a], self.potential[u], self.potential[v])
                {
                    continue;
                }
                self.level[v] = lu + 1;
                self.queue.push(v as u32);
            }
        }
        self.level[t] != u32::MAX
    }

    /// Dinic blocking flow on the admissible level graph; pushes at most
    /// `limit` units. The level graph is a DAG (levels strictly
    /// increase), so zero-cost residual cycles — every admissible arc
    /// carrying flow has an admissible twin — cannot trap the DFS.
    fn blocking_flow(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        self.cur.clear();
        self.cur.extend_from_slice(&self.csr_start[..self.n]);
        self.path.clear();
        let mut pushed = 0i64;
        loop {
            let u = match self.path.last() {
                Some(&a) => self.head[a as usize] as usize,
                None => s,
            };
            if u == t {
                let mut push = limit - pushed;
                for &a in &self.path {
                    push = push.min(self.cap[a as usize]);
                }
                for &a in &self.path {
                    self.cap[a as usize] -= push;
                    self.cap[a as usize ^ 1] += push;
                }
                pushed += push;
                self.stats.blocking_pushes += 1;
                if pushed >= limit {
                    break;
                }
                // Retreat to just before the first saturated arc.
                let mut keep = 0;
                while keep < self.path.len() && self.cap[self.path[keep] as usize] > 0 {
                    keep += 1;
                }
                self.path.truncate(keep);
                continue;
            }
            let mut advanced = false;
            while self.cur[u] < self.csr_start[u + 1] {
                let a = self.csr_arcs[self.cur[u] as usize] as usize;
                let v = self.head[a] as usize;
                if self.cap[a] > 0
                    && self.level[v] == self.level[u] + 1
                    && admissible(self.cost[a], self.potential[u], self.potential[v])
                {
                    self.path.push(a as u32);
                    advanced = true;
                    break;
                }
                self.cur[u] += 1;
            }
            if !advanced {
                if u == s {
                    break;
                }
                self.level[u] = u32::MAX; // dead end for this phase
                let a = self.path.pop().expect("non-source node has a parent") as usize;
                let p = self.tail[a] as usize;
                self.cur[p] += 1;
            }
        }
        pushed
    }

    /// Fallback single-path augmentation along the Dijkstra predecessor
    /// chain. Only reachable if floating-point admissibility filtering
    /// dropped every arc of the shortest path; guarantees the phase
    /// still makes progress.
    fn augment_prev_path(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        let mut push = limit;
        let mut v = t;
        while v != s {
            let a = self.prev_arc[v];
            if a == u32::MAX {
                return 0;
            }
            push = push.min(self.cap[a as usize]);
            v = self.tail[a as usize] as usize;
        }
        if push <= 0 {
            return 0;
        }
        let mut v = t;
        while v != s {
            let a = self.prev_arc[v] as usize;
            self.cap[a] -= push;
            self.cap[a ^ 1] += push;
            v = self.tail[a] as usize;
        }
        push
    }

    /// Route up to `target` units of flow from `s` to `t` at minimum
    /// cost, the maximum feasible amount if less fits. Call once per
    /// built graph; the reported cost is that of all flow in the graph,
    /// accumulated deterministically arc-by-arc at the end (so it does
    /// not depend on the augmentation order).
    pub fn solve(&mut self, s: usize, t: usize, target: i64) -> FlowResult {
        self.solve_budgeted(s, t, target, &SolveBudget::unlimited())
            .expect("an unlimited budget never aborts a solve")
    }

    /// [`McmfGraph::solve`] under a cooperative [`SolveBudget`]: returns
    /// `None` (instead of a partial, meaningless flow) as soon as the
    /// budget trips — checked at every phase boundary and every few
    /// thousand heap pops inside Dijkstra. On `None` the residual graph
    /// is left mid-solve and must not be reused for another solve.
    pub fn solve_budgeted(
        &mut self,
        s: usize,
        t: usize,
        target: i64,
        budget: &SolveBudget,
    ) -> Option<FlowResult> {
        self.solve_inner(s, t, target, budget, false)
    }

    /// Snapshot the potentials the last solve ended with, for seeding a
    /// neighbouring solve via [`McmfGraph::solve_warm_budgeted`].
    pub fn warm_start(&self) -> WarmStart {
        WarmStart {
            potentials: self.potential.clone(),
        }
    }

    /// The current node potentials (duals) — empty before the first
    /// solve. Exposed so higher layers can remap them onto a
    /// differently-shaped neighbour network.
    pub fn potentials(&self) -> &[f64] {
        &self.potential
    }

    /// O(E) dual-feasibility revalidation of candidate initial
    /// potentials against *this* graph (assumed zero-flow): every
    /// positive-capacity arc must have reduced cost
    /// `cost + π[u] − π[v] ≥ −tol`, with the same magnitude-scaled
    /// tolerance the solver's admissibility filter uses — tiny negatives
    /// are clamped by Dijkstra exactly like cold-start fp noise.
    ///
    /// Returns `Some(feasible)`, or `None` if `budget` tripped mid-scan
    /// (polled every [`BUDGET_POLL_ARCS`] arcs).
    fn potentials_dual_feasible(&self, pot: &[f64], budget: &SolveBudget) -> Option<bool> {
        if pot.len() != self.n {
            return Some(false);
        }
        let poll_budget = !budget.is_unlimited();
        let mut scanned = 0u64;
        for a in 0..self.cap.len() {
            if self.cap[a] <= 0 {
                continue;
            }
            scanned += 1;
            if poll_budget && scanned.is_multiple_of(BUDGET_POLL_ARCS) && budget.exhausted() {
                return None;
            }
            let u = self.tail[a] as usize;
            let v = self.head[a] as usize;
            let c = self.cost[a];
            let rc = c + pot[u] - pot[v];
            // Non-finite potentials (which would poison Dijkstra) reject
            // explicitly — a bare `rc < -tol` would let NaN pass.
            if !rc.is_finite() || rc < -1e-9 * (1.0 + c.abs() + pot[u].abs() + pot[v].abs()) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// One price fix-up sweep: relax `π[v] ← min(π[v], π[u] + cost)` over
    /// every positive-capacity arc in insertion order.
    ///
    /// A finished solve leaves potentials dual-feasible on the *residual*
    /// graph only — forward arcs the flow saturated may carry strictly
    /// negative reduced cost (complementary slackness), so the raw handle
    /// is not a valid start for a fresh zero-flow solve. Lowering each
    /// head to the tightest incoming bound is the minimal repair, and it
    /// is exactly Bellman–Ford relaxation, so it never overshoots: with
    /// non-negative arc costs the fixpoint exists and each sweep is
    /// monotone. For the layered LP networks built by `lp.rs`
    /// (source → job → slot → sink, arcs inserted in that order) one
    /// in-order sweep reaches the fixpoint because every arc is relaxed
    /// after all arcs into its tail. The [feasibility
    /// scan](Self::potentials_dual_feasible) stays the arbiter afterwards,
    /// so an order for which one sweep is *not* enough degrades to a cold
    /// start rather than an unsound one.
    ///
    /// Returns `None` iff `budget` tripped (polled every
    /// [`BUDGET_POLL_ARCS`] arcs).
    fn repair_potentials(&self, pot: &mut [f64], budget: &SolveBudget) -> Option<()> {
        let poll_budget = !budget.is_unlimited();
        let mut scanned = 0u64;
        for a in 0..self.cap.len() {
            if self.cap[a] <= 0 {
                continue;
            }
            scanned += 1;
            if poll_budget && scanned.is_multiple_of(BUDGET_POLL_ARCS) && budget.exhausted() {
                return None;
            }
            let u = self.tail[a] as usize;
            let v = self.head[a] as usize;
            let bound = self.cost[a] + pot[u];
            if pot[v] > bound {
                pot[v] = bound;
            }
        }
        Some(())
    }

    /// O(E) optimality certificate from the solver's own final duals:
    /// after a solve, every *residual* arc (positive remaining capacity,
    /// forward or reverse) must have non-negative reduced cost under the
    /// final potentials — the classical dual proof that the residual
    /// graph has no negative cycle, hence the flow is minimum-cost.
    ///
    /// Strictly cheaper than [`McmfGraph::verify_optimal`] (one arc scan
    /// vs Bellman–Ford) but *not* independent of the solver's dual
    /// bookkeeping; the aggregated-bound path uses it because its
    /// networks are large enough that `O(V·E)` certification would
    /// dominate the solve it certifies. Exact production paths keep the
    /// independent Bellman–Ford audit.
    pub fn certify_current_duals(&self) -> bool {
        matches!(
            self.potentials_dual_feasible(&self.potential, &SolveBudget::unlimited()),
            Some(true)
        )
    }

    /// [`McmfGraph::solve_budgeted`] with a dual warm start. The handle's
    /// potentials are repaired by one price fix-up sweep
    /// (`repair_potentials`) and revalidated by the O(E) feasibility
    /// scan (`potentials_dual_feasible`); on acceptance
    /// they seed the primal-dual loop (same algorithm, same optimum,
    /// fewer phases — see [`WarmStart`]), on rejection the solve silently
    /// falls back to the cold zero start. Returns the result plus whether
    /// the warm start was accepted; `None` iff the budget tripped.
    pub fn solve_warm_budgeted(
        &mut self,
        s: usize,
        t: usize,
        target: i64,
        warm: Option<&WarmStart>,
        budget: &SolveBudget,
    ) -> Option<(FlowResult, bool)> {
        let accepted = match warm {
            Some(w) if w.potentials.len() == self.n => {
                let mut pot = std::mem::take(&mut self.potential);
                pot.clear();
                pot.extend_from_slice(&w.potentials);
                let repaired = self.repair_potentials(&mut pot, budget);
                let ok = match repaired {
                    Some(()) => match self.potentials_dual_feasible(&pot, budget) {
                        Some(ok) => ok,
                        None => {
                            self.potential = pot;
                            return None;
                        }
                    },
                    None => {
                        self.potential = pot;
                        return None;
                    }
                };
                self.potential = pot;
                if ok {
                    tf_obs::instant!("mcmf", "warm_accept");
                } else {
                    tf_obs::instant!("mcmf", "warm_reject");
                }
                ok
            }
            Some(_) => {
                tf_obs::instant!("mcmf", "warm_reject");
                false
            }
            None => false,
        };
        let r = self.solve_inner(s, t, target, budget, accepted)?;
        Some((r, accepted))
    }

    /// Shared phase loop behind the cold and warm entry points. With
    /// `keep_potentials` the current `self.potential` vector (already
    /// validated dual-feasible) is used as the starting duals; otherwise
    /// potentials reset to zero, the cold start.
    fn solve_inner(
        &mut self,
        s: usize,
        t: usize,
        target: i64,
        budget: &SolveBudget,
        keep_potentials: bool,
    ) -> Option<FlowResult> {
        assert!(s < self.n && t < self.n, "node out of range");
        let mut obs_span = tf_obs::span!("mcmf", "solve");
        if !self.csr_built {
            self.build_csr();
        }
        if !keep_potentials {
            self.potential.clear();
            self.potential.resize(self.n, 0.0);
        }
        self.stats = McmfStats::default();
        let poll_budget = !budget.is_unlimited();
        let mut total_flow = 0i64;
        while total_flow < target {
            if poll_budget && budget.exhausted() {
                tf_obs::instant!("mcmf", "budget_abort");
                return None;
            }
            let reachable = {
                let _s = tf_obs::span!("mcmf", "dijkstra");
                self.dijkstra(s, t, budget)?
            };
            if !reachable {
                break;
            }
            // Capped potential update (see the struct docs).
            let cap_d = self.dist[t];
            for (p, &d) in self.potential.iter_mut().zip(&self.dist) {
                *p += d.min(cap_d);
            }
            let mut pushed = {
                let _s = tf_obs::span!("mcmf", "blocking_flow");
                if self.bfs_levels(s, t, cap_d) {
                    self.blocking_flow(s, t, target - total_flow)
                } else {
                    0
                }
            };
            if pushed == 0 {
                pushed = self.augment_prev_path(s, t, target - total_flow);
                if pushed > 0 {
                    self.stats.fallback_augments += 1;
                }
            }
            if pushed == 0 {
                break; // defensive: cannot represent further progress
            }
            total_flow += pushed;
            self.stats.phases += 1;
        }
        self.stats.units_routed = total_flow.max(0) as u64;
        if tf_obs::enabled() {
            obs_span.arg("nodes", self.n as f64);
            obs_span.arg("arcs", (self.cap.len() / 2) as f64);
            obs_span.arg("flow", total_flow as f64);
            tf_obs::counter!("mcmf", "phases", self.stats.phases as f64);
            tf_obs::counter!("mcmf", "heap_pops", self.stats.heap_pops as f64);
            tf_obs::counter!("mcmf", "arcs_scanned", self.stats.arcs_scanned as f64);
            tf_obs::counter!("mcmf", "blocking_pushes", self.stats.blocking_pushes as f64);
        }
        let mut total_cost = 0.0f64;
        for a in (0..self.cap.len()).step_by(2) {
            let routed = self.cap[a ^ 1];
            if routed > 0 {
                total_cost += self.cost[a] * routed as f64;
            }
        }
        Some(FlowResult {
            flow: total_flow,
            cost: total_cost,
        })
    }

    /// Independent optimality certificate: Bellman–Ford over the residual
    /// arcs, exactly as [`MinCostFlow::verify_optimal`].
    pub fn verify_optimal(&self, tol: f64) -> bool {
        let _obs_span = tf_obs::span!("mcmf", "verify_optimal");
        let n = self.n;
        let mut dist = vec![0.0f64; n];
        for round in 0..n {
            let mut changed = false;
            for a in 0..self.cap.len() {
                if self.cap[a] <= 0 {
                    continue;
                }
                let u = self.tail[a] as usize;
                let v = self.head[a] as usize;
                if dist[u] + self.cost[a] < dist[v] - tol {
                    dist[v] = dist[u] + self.cost[a];
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n - 1 {
                return false;
            }
        }
        true
    }
}

/// Heap entry ordered by `dist` (f64), with a total order for the heap.
#[derive(Clone, Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("finite distances")
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Flat 4-ary min-heap over [`HeapItem`]s, replacing
/// `BinaryHeap<Reverse<HeapItem>>` on the Dijkstra hot path. Span
/// profiles attribute most solver time to `mcmf.dijkstra`, and most of
/// that to heap traffic; a 4-ary layout halves the tree depth (sift-up
/// cost on the push-heavy workload) and keeps each sift-down's child
/// scan inside one cache line.
///
/// Determinism: `HeapItem`'s ordering is *total* (dist, then node), and
/// Dijkstra never holds two equal items (a node is re-pushed only with a
/// strictly smaller dist), so the minimum is unique at every pop — any
/// correct heap, this one included, yields the identical pop sequence to
/// the binary heap it replaces. Solver output is bit-for-bit unchanged.
#[derive(Debug, Default, Clone)]
struct DaryHeap {
    items: Vec<HeapItem>,
}

impl DaryHeap {
    const D: usize = 4;

    fn clear(&mut self) {
        self.items.clear();
    }

    fn push(&mut self, item: HeapItem) {
        self.items.push(item);
        let mut i = self.items.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::D;
            if self.items[i] < self.items[parent] {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<HeapItem> {
        let n = self.items.len();
        if n == 0 {
            return None;
        }
        self.items.swap(0, n - 1);
        let top = self.items.pop();
        let n = self.items.len();
        let mut i = 0;
        loop {
            let first = i * Self::D + 1;
            if first >= n {
                break;
            }
            let last = (first + Self::D).min(n);
            let mut best = first;
            for c in first + 1..last {
                if self.items[c] < self.items[best] {
                    best = c;
                }
            }
            if self.items[best] < self.items[i] {
                self.items.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 2.0);
        let r = g.solve(0, 1, 3);
        assert_eq!(r, FlowResult { flow: 3, cost: 6.0 });
        assert_eq!(g.flow_on(e), 3);
    }

    #[test]
    fn caps_limit_flow() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 2, 1.0);
        let r = g.solve(0, 1, 10);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2.0);
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        // Two parallel paths 0→1: direct cost 1 cap 1; via 2 cost 3 cap 5.
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 2, 5, 1.0);
        g.add_edge(2, 1, 5, 2.0);
        let r = g.solve(0, 1, 3);
        assert_eq!(r.flow, 3);
        assert!((r.cost - (1.0 + 2.0 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic rerouting: a greedy first path must be partially undone.
        //    0 →(1,$1) 1 →(1,$1) 3
        //    0 →(1,$2) 2 →(1,$2) 3
        //    1 →(1,$0) 2
        // Max flow 2; optimal routes 0-1-3 and 0-2-3 (cost 1+1+2+2 = 6).
        // A naive shortest-first pass may try 0-1-2-3; SSP must still land
        // on 6 total.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 2.0);
        g.add_edge(2, 3, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        let r = g.solve(0, 3, 2);
        assert_eq!(r.flow, 2);
        assert!((r.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn transportation_instance_matches_hand_optimum() {
        // 2 supplies × 2 sinks. Supply a: 2 units, b: 1 unit. Sinks x: cap
        // 2, y: cap 2. Costs: a→x 1, a→y 5, b→x 2, b→y 1.
        // Optimum: a sends 2 to x (2), b sends 1 to y (1). Total 3.
        let (s, a, b, x, y, t) = (0, 1, 2, 3, 4, 5);
        let mut g = MinCostFlow::new(6);
        g.add_edge(s, a, 2, 0.0);
        g.add_edge(s, b, 1, 0.0);
        g.add_edge(a, x, 9, 1.0);
        g.add_edge(a, y, 9, 5.0);
        g.add_edge(b, x, 9, 2.0);
        g.add_edge(b, y, 9, 1.0);
        g.add_edge(x, t, 2, 0.0);
        g.add_edge(y, t, 2, 0.0);
        let r = g.solve(s, t, 3);
        assert_eq!(r.flow, 3);
        assert!((r.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn contention_forces_expensive_slots() {
        // Like one LP slot capacity: both supplies want sink x (cheap) but
        // x caps at 1.
        let (s, a, b, x, y, t) = (0, 1, 2, 3, 4, 5);
        let mut g = MinCostFlow::new(6);
        g.add_edge(s, a, 1, 0.0);
        g.add_edge(s, b, 1, 0.0);
        g.add_edge(a, x, 1, 1.0);
        g.add_edge(a, y, 1, 10.0);
        g.add_edge(b, x, 1, 1.0);
        g.add_edge(b, y, 1, 2.0);
        g.add_edge(x, t, 1, 0.0);
        g.add_edge(y, t, 9, 0.0);
        let r = g.solve(s, t, 2);
        assert_eq!(r.flow, 2);
        // a takes x (1), b takes y (2).
        assert!((r.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_routes_nothing() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1.0);
        let r = g.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0.0 });
    }

    #[test]
    fn zero_target_is_a_noop() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, 1.0);
        let r = g.solve(0, 1, 0);
        assert_eq!(r, FlowResult { flow: 0, cost: 0.0 });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, -1.0);
    }

    #[test]
    fn solver_output_passes_optimality_certificate() {
        // Reuse the rerouting instance: after solve, the residual graph
        // must be free of negative cycles.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 2.0);
        g.add_edge(2, 3, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        g.solve(0, 3, 2);
        assert!(g.verify_optimal(1e-9));
    }

    #[test]
    fn certificate_rejects_suboptimal_flows() {
        // Hand-build a suboptimal routing: push along the expensive path
        // while the cheap one is idle → residual negative cycle.
        //   0 →(cap1,$1) 1 →(cap1,$1) 3   (cheap, idle)
        //   0 →(cap1,$5) 2 →(cap1,$5) 3   (expensive, used)
        //   1 ↔ 2 free edges to close the cycle.
        let mut g = MinCostFlow::new(4);
        let _cheap1 = g.add_edge(0, 1, 1, 1.0);
        let _cheap2 = g.add_edge(1, 3, 1, 1.0);
        let exp1 = g.add_edge(0, 2, 1, 5.0);
        let exp2 = g.add_edge(2, 3, 1, 5.0);
        g.add_edge(1, 2, 1, 0.0);
        g.add_edge(2, 1, 1, 0.0);
        // Manually saturate the expensive path (bypassing solve).
        for id in [exp1, exp2] {
            g.edges[id].cap -= 1;
            g.edges[id ^ 1].cap += 1;
        }
        assert!(!g.verify_optimal(1e-9));
    }

    #[test]
    fn lp_solutions_are_certified_optimal() {
        // End-to-end: the LP builder's solved network passes the
        // independent certificate (exercised for a couple of shapes).
        use tf_simcore::Trace;
        for pairs in [
            vec![(0.0, 2.0), (0.0, 1.0), (1.0, 3.0)],
            vec![(0.0, 1.0), (2.0, 2.0), (2.0, 2.0), (5.0, 1.0)],
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            // Rebuild the LP network by hand via the public API is not
            // exposed; instead exercise the solver on the same shape:
            // jobs → slots with increasing costs.
            let n = t.len();
            let horizon = t.makespan_upper_bound(1.0).ceil() as usize + 1;
            let (s, sink) = (0usize, 1 + n + horizon);
            let mut g = MinCostFlow::new(sink + 1);
            let mut supply = 0;
            for (ji, j) in t.jobs().iter().enumerate() {
                let p = j.size.round() as i64;
                supply += p;
                g.add_edge(s, 1 + ji, p, 0.0);
                for slot in (j.arrival as usize)..horizon {
                    let age = slot as f64 - j.arrival;
                    g.add_edge(
                        1 + ji,
                        1 + n + slot,
                        1,
                        (age * age + j.size * j.size) / j.size,
                    );
                }
            }
            for slot in 0..horizon {
                g.add_edge(1 + n + slot, sink, 1, 0.0);
            }
            let r = g.solve(s, sink, supply);
            assert_eq!(r.flow, supply);
            assert!(g.verify_optimal(1e-6), "negative residual cycle left");
        }
    }

    /// Run both solvers on the same instance, demand identical flow and
    /// matching cost, and certify the optimized solver's flow.
    fn cross_check(
        n: usize,
        edges: &[(usize, usize, i64, f64)],
        s: usize,
        t: usize,
        target: i64,
    ) -> FlowResult {
        let mut oracle = MinCostFlow::new(n);
        let mut fast = McmfGraph::new();
        fast.reset(n);
        for &(u, v, c, w) in edges {
            oracle.add_edge(u, v, c, w);
            fast.add_edge(u, v, c, w);
        }
        let ro = oracle.solve(s, t, target);
        let rf = fast.solve(s, t, target);
        assert_eq!(ro.flow, rf.flow, "flow diverged from oracle");
        assert!(
            (ro.cost - rf.cost).abs() <= 1e-6 * (1.0 + ro.cost.abs()),
            "cost diverged: oracle {} vs optimized {}",
            ro.cost,
            rf.cost
        );
        assert!(fast.verify_optimal(1e-9), "optimized flow not certified");
        rf
    }

    #[test]
    fn mcmf_graph_matches_oracle_on_hand_instances() {
        // Every hand-built MinCostFlow instance above, replayed on both.
        cross_check(2, &[(0, 1, 5, 2.0)], 0, 1, 3);
        cross_check(2, &[(0, 1, 2, 1.0)], 0, 1, 10);
        cross_check(
            3,
            &[(0, 1, 1, 1.0), (0, 2, 5, 1.0), (2, 1, 5, 2.0)],
            0,
            1,
            3,
        );
        cross_check(
            4,
            &[
                (0, 1, 1, 1.0),
                (1, 3, 1, 1.0),
                (0, 2, 1, 2.0),
                (2, 3, 1, 2.0),
                (1, 2, 1, 0.0),
            ],
            0,
            3,
            2,
        );
        cross_check(
            6,
            &[
                (0, 1, 2, 0.0),
                (0, 2, 1, 0.0),
                (1, 3, 9, 1.0),
                (1, 4, 9, 5.0),
                (2, 3, 9, 2.0),
                (2, 4, 9, 1.0),
                (3, 5, 2, 0.0),
                (4, 5, 2, 0.0),
            ],
            0,
            5,
            3,
        );
        cross_check(
            6,
            &[
                (0, 1, 1, 0.0),
                (0, 2, 1, 0.0),
                (1, 3, 1, 1.0),
                (1, 4, 1, 10.0),
                (2, 3, 1, 1.0),
                (2, 4, 1, 2.0),
                (3, 5, 1, 0.0),
                (4, 5, 9, 0.0),
            ],
            0,
            5,
            2,
        );
        cross_check(3, &[(0, 1, 1, 1.0)], 0, 2, 5); // disconnected sink
        cross_check(2, &[(0, 1, 1, 1.0)], 0, 1, 0); // zero target
    }

    #[test]
    fn mcmf_graph_flow_on_reports_routed_units() {
        let mut g = McmfGraph::new();
        g.reset(2);
        let e = g.add_edge(0, 1, 5, 2.0);
        let r = g.solve(0, 1, 3);
        assert_eq!(r, FlowResult { flow: 3, cost: 6.0 });
        assert_eq!(g.flow_on(e), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mcmf_graph_rejects_negative_costs() {
        let mut g = McmfGraph::new();
        g.reset(2);
        g.add_edge(0, 1, 1, -1.0);
    }

    #[test]
    fn mcmf_graph_reset_reuses_cleanly() {
        // Solve two unrelated instances through the same arena; the
        // second must be unaffected by the first's state.
        let mut g = McmfGraph::new();
        g.reset(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 2.0);
        g.add_edge(2, 3, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        let r1 = g.solve(0, 3, 2);
        assert_eq!(r1.flow, 2);
        assert!((r1.cost - 6.0).abs() < 1e-9);

        g.reset(2);
        let e = g.add_edge(0, 1, 5, 2.0);
        let r2 = g.solve(0, 1, 3);
        assert_eq!(r2, FlowResult { flow: 3, cost: 6.0 });
        assert_eq!(g.flow_on(e), 3);
        assert!(g.verify_optimal(1e-9));
    }

    #[test]
    fn mcmf_graph_multiunit_phase_matches_unit_oracle() {
        // A job-shaped instance where whole supplies move per phase: two
        // supplies of 4 and 3 units over six unit slots with increasing
        // costs. The blocking flow pushes multi-unit; the oracle pushes
        // one unit per Dijkstra; values must agree exactly.
        let (s, a, b, t) = (0usize, 1usize, 2usize, 9usize);
        let mut edges = vec![(s, a, 4i64, 0.0f64), (s, b, 3, 0.0)];
        for slot in 0..6 {
            let c = slot as f64;
            edges.push((a, 3 + slot, 1, 1.0 + c));
            edges.push((b, 3 + slot, 1, 2.0 + 0.5 * c));
            edges.push((3 + slot, t, 1, 0.0));
        }
        // Slot capacity 1 forces real contention between a and b.
        cross_check(10, &edges, s, t, 7);
    }

    #[test]
    fn mcmf_graph_random_transportation_matches_oracle() {
        // Bigger random instances than the brute-force test: 4 supplies
        // (1–3 units) × 6 sinks (cap 1–2), random costs, compared
        // against the SSP oracle and certified.
        let mut seed = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..40 {
            let supplies: Vec<i64> = (0..4).map(|_| 1 + (next() * 3.0) as i64).collect();
            let caps: Vec<i64> = (0..6).map(|_| 1 + (next() * 2.0) as i64).collect();
            let (s, t) = (0usize, 11usize);
            let mut edges: Vec<(usize, usize, i64, f64)> = Vec::new();
            for (i, &sup) in supplies.iter().enumerate() {
                edges.push((s, 1 + i, sup, 0.0));
                for j in 0..6 {
                    edges.push((1 + i, 5 + j, 2, (next() * 20.0).round() / 2.0));
                }
            }
            for (j, &c) in caps.iter().enumerate() {
                edges.push((5 + j, t, c, 0.0));
            }
            let want: i64 = supplies.iter().sum::<i64>().min(caps.iter().sum());
            let r = cross_check(12, &edges, s, t, supplies.iter().sum());
            assert_eq!(r.flow, want);
        }
    }

    #[test]
    fn mcmf_graph_lp_shaped_instance_certified() {
        // The LP builder's network shape end-to-end on the arena solver.
        use tf_simcore::Trace;
        for pairs in [
            vec![(0.0, 2.0), (0.0, 1.0), (1.0, 3.0)],
            vec![(0.0, 1.0), (2.0, 2.0), (2.0, 2.0), (5.0, 1.0)],
        ] {
            let tr = Trace::from_pairs(pairs).unwrap();
            let n = tr.len();
            let horizon = tr.makespan_upper_bound(1.0).ceil() as usize + 1;
            let (s, sink) = (0usize, 1 + n + horizon);
            let mut g = McmfGraph::new();
            g.reset(sink + 1);
            let mut supply = 0;
            for (ji, j) in tr.jobs().iter().enumerate() {
                let p = j.size.round() as i64;
                supply += p;
                g.add_edge(s, 1 + ji, p, 0.0);
                for slot in (j.arrival as usize)..horizon {
                    let age = slot as f64 - j.arrival;
                    g.add_edge(
                        1 + ji,
                        1 + n + slot,
                        1,
                        (age * age + j.size * j.size) / j.size,
                    );
                }
            }
            for slot in 0..horizon {
                g.add_edge(1 + n + slot, sink, 1, 0.0);
            }
            let r = g.solve(s, sink, supply);
            assert_eq!(r.flow, supply);
            assert!(g.verify_optimal(1e-6), "negative residual cycle left");
        }
    }

    #[test]
    fn dary_heap_pops_in_sorted_order() {
        // Scrambled pushes with interleaved pops must come out in
        // (dist, node) order — the exact contract Dijkstra relies on.
        let mut h = DaryHeap::default();
        let items = [
            (5.0, 2),
            (1.0, 9),
            (3.0, 1),
            (1.0, 3),
            (0.5, 7),
            (3.0, 0),
            (2.5, 4),
        ];
        for &(dist, node) in &items {
            h.push(HeapItem { dist, node });
        }
        let mut got = Vec::new();
        while let Some(it) = h.pop() {
            got.push((it.dist, it.node));
        }
        let mut want = items.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        assert!(h.pop().is_none());
    }

    #[test]
    fn mincostflow_budgeted_matches_unbudgeted_and_trips() {
        let edges = [
            (0usize, 1usize, 2i64, 0.0f64),
            (0, 2, 1, 0.0),
            (1, 3, 9, 1.0),
            (1, 4, 9, 5.0),
            (2, 3, 9, 2.0),
            (2, 4, 9, 1.0),
            (3, 5, 2, 0.0),
            (4, 5, 2, 0.0),
        ];
        let build = || {
            let mut g = MinCostFlow::new(6);
            for &(u, v, c, w) in &edges {
                g.add_edge(u, v, c, w);
            }
            g
        };
        let plain = build().solve(0, 5, 3);
        let unlimited = build()
            .solve_budgeted(0, 5, 3, &SolveBudget::unlimited())
            .unwrap();
        assert_eq!(plain, unlimited);
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(build().solve_budgeted(0, 5, 3, &spent).is_none());
    }

    /// Build the LP-shaped arena instance used by the warm-start tests:
    /// returns (graph, source, sink, supply).
    fn lp_shaped_arena(m: i64) -> (McmfGraph, usize, usize, i64) {
        use tf_simcore::Trace;
        let tr = Trace::from_pairs(vec![(0.0, 2.0), (0.0, 3.0), (1.0, 1.0), (3.0, 2.0)]).unwrap();
        let n = tr.len();
        let horizon = tr.makespan_upper_bound(1.0).ceil() as usize + 1;
        let (s, sink) = (0usize, 1 + n + horizon);
        let mut g = McmfGraph::new();
        g.reset(sink + 1);
        let mut supply = 0;
        for (ji, j) in tr.jobs().iter().enumerate() {
            let p = j.size.round() as i64;
            supply += p;
            g.add_edge(s, 1 + ji, p, 0.0);
            for slot in (j.arrival as usize)..horizon {
                let age = slot as f64 - j.arrival;
                g.add_edge(
                    1 + ji,
                    1 + n + slot,
                    1,
                    (age * age + j.size * j.size) / j.size,
                );
            }
        }
        for slot in 0..horizon {
            g.add_edge(1 + n + slot, sink, m, 0.0);
        }
        (g, s, sink, supply)
    }

    #[test]
    fn warm_start_across_machine_counts_matches_cold() {
        // Solve at m=1, carry the duals to the same network at m=2:
        // capacities never enter dual feasibility, so the handle must be
        // accepted, and the warm optimum must equal the cold one.
        let (mut g1, s, t, supply) = lp_shaped_arena(1);
        g1.solve(s, t, supply);
        let warm = g1.warm_start();

        let (mut cold, ..) = lp_shaped_arena(2);
        let rc = cold.solve(s, t, supply);

        let (mut g2, ..) = lp_shaped_arena(2);
        let (rw, accepted) = g2
            .solve_warm_budgeted(s, t, supply, Some(&warm), &SolveBudget::unlimited())
            .unwrap();
        assert!(accepted, "same-cost neighbour duals must revalidate");
        assert_eq!(rw.flow, rc.flow);
        assert!(
            (rw.cost - rc.cost).abs() <= 1e-9 * (1.0 + rc.cost.abs()),
            "warm {} vs cold {}",
            rw.cost,
            rc.cost
        );
        assert!(g2.verify_optimal(1e-9), "warm-started flow not certified");
        // The warm run must not be slower in phases than the cold run.
        assert!(g2.stats().phases <= cold.stats().phases);
    }

    #[test]
    fn infeasible_warm_potentials_fall_back_to_cold() {
        let (mut cold, s, t, supply) = lp_shaped_arena(1);
        let rc = cold.solve(s, t, supply);

        // Wildly wrong (but finite) potentials: the price fix-up sweep
        // repairs them into a valid — if useless — dual start, so the
        // solve must still land on the cold optimum either way.
        let (mut g, ..) = lp_shaped_arena(1);
        let mut bad = vec![0.0; g.len()];
        for (i, p) in bad.iter_mut().enumerate() {
            *p = if i % 2 == 0 { 1e6 } else { -1e6 };
        }
        let (rw, _) = g
            .solve_warm_budgeted(
                s,
                t,
                supply,
                Some(&WarmStart::from_potentials(bad)),
                &SolveBudget::unlimited(),
            )
            .unwrap();
        assert_eq!(rw.flow, rc.flow);
        assert!((rw.cost - rc.cost).abs() <= 1e-9 * (1.0 + rc.cost.abs()));
        assert!(g.verify_optimal(1e-9));

        // NaN potentials survive the (head-lowering) repair but must be
        // rejected by the feasibility scan, never fed to Dijkstra.
        let (mut g2, ..) = lp_shaped_arena(1);
        let (rw, accepted) = g2
            .solve_warm_budgeted(
                s,
                t,
                supply,
                Some(&WarmStart::from_potentials(vec![f64::NAN; g2.len()])),
                &SolveBudget::unlimited(),
            )
            .unwrap();
        assert!(!accepted, "non-finite potentials must be rejected");
        assert_eq!(rw.flow, rc.flow);
        assert!((rw.cost - rc.cost).abs() <= 1e-9 * (1.0 + rc.cost.abs()));

        // Wrong-length handles are rejected, not misapplied.
        let (mut g3, ..) = lp_shaped_arena(1);
        let (_, accepted) = g3
            .solve_warm_budgeted(
                s,
                t,
                supply,
                Some(&WarmStart::from_potentials(vec![0.0; 3])),
                &SolveBudget::unlimited(),
            )
            .unwrap();
        assert!(!accepted);
    }

    #[test]
    fn warm_validation_honours_the_budget() {
        let (mut g, s, t, supply) = lp_shaped_arena(1);
        let warm = WarmStart::from_potentials(vec![0.0; g.len()]);
        let spent = SolveBudget::with_timeout(std::time::Duration::ZERO);
        assert!(g
            .solve_warm_budgeted(s, t, supply, Some(&warm), &spent)
            .is_none());
    }

    #[test]
    fn random_instances_match_bruteforce() {
        // Exhaustive check on tiny random transportation instances:
        // 2 supplies (1 unit each) × 3 sinks (cap 1): enumerate all
        // assignments and compare.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..50 {
            let costs: Vec<Vec<f64>> = (0..2)
                .map(|_| (0..3).map(|_| (next() * 10.0).round()).collect())
                .collect();
            // Brute force: pick distinct sinks for the two supplies.
            let mut best = f64::INFINITY;
            for (x, cx) in costs[0].iter().enumerate() {
                for (y, cy) in costs[1].iter().enumerate() {
                    if x != y {
                        best = best.min(cx + cy);
                    }
                }
            }
            let (s, t) = (0usize, 6usize);
            let mut g = MinCostFlow::new(7);
            for (a, row) in costs.iter().enumerate() {
                g.add_edge(s, 1 + a, 1, 0.0);
                for (x, &c) in row.iter().enumerate() {
                    g.add_edge(1 + a, 3 + x, 1, c);
                }
            }
            for x in 0..3 {
                g.add_edge(3 + x, t, 1, 0.0);
            }
            let r = g.solve(s, t, 2);
            assert_eq!(r.flow, 2);
            assert!((r.cost - best).abs() < 1e-9, "{} vs {best}", r.cost);
        }
    }
}

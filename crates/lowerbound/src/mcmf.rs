//! Minimum-cost maximum-flow via successive shortest paths with Johnson
//! potentials.
//!
//! Capacities are integers (`i64`), costs are non-negative `f64`. With all
//! original costs non-negative the initial potentials are zero and every
//! iteration runs Dijkstra on reduced costs; tiny negative reduced costs
//! from floating-point rounding are clamped. This is exact for the
//! transportation LPs built in [`crate::lp`] (integral optimal solutions
//! exist; path costs are sums of ≤ 3 terms, so rounding error is ~ulps).

/// One directed edge; edge `i ^ 1` is its residual twin.
#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    cap: i64,
    cost: f64,
}

/// A min-cost max-flow problem instance / solver.
#[derive(Debug, Default, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<u32>>, // node -> indices into `edges`
    edges: Vec<Edge>,
}

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Units of flow actually routed (≤ the requested amount).
    pub flow: i64,
    /// Total cost of the routed flow.
    pub cost: f64,
}

impl MinCostFlow {
    /// A problem with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Add a directed edge `u → v` with capacity `cap ≥ 0` and cost
    /// `cost ≥ 0`. Returns the edge index (useful to query final flow via
    /// [`MinCostFlow::flow_on`]).
    ///
    /// # Panics
    /// If `cost` is negative or non-finite, or a node is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> usize {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "costs must be non-negative, got {cost}"
        );
        assert!(
            u < self.graph.len() && v < self.graph.len(),
            "node out of range"
        );
        let id = self.edges.len();
        self.graph[u].push(id as u32);
        self.edges.push(Edge {
            to: v as u32,
            cap,
            cost,
        });
        self.graph[v].push((id + 1) as u32);
        self.edges.push(Edge {
            to: u as u32,
            cap: 0,
            cost: -cost,
        });
        id
    }

    /// Flow currently on edge `id` (as returned by `add_edge`).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id ^ 1].cap
    }

    /// Route up to `target` units of flow from `s` to `t` at minimum cost.
    /// Routes the maximum feasible amount if less than `target` fits.
    pub fn solve(&mut self, s: usize, t: usize, target: i64) -> FlowResult {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.graph.len();
        let mut potential = vec![0.0f64; n];
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge = vec![u32::MAX; n];
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;

        while total_flow < target {
            // Dijkstra on reduced costs.
            dist.fill(f64::INFINITY);
            prev_edge.fill(u32::MAX);
            dist[s] = 0.0;
            let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
            heap.push(Reverse(HeapItem {
                dist: 0.0,
                node: s as u32,
            }));
            while let Some(Reverse(HeapItem { dist: d, node })) = heap.pop() {
                let u = node as usize;
                if d > dist[u] {
                    continue;
                }
                for &eid in &self.graph[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= 0 {
                        continue;
                    }
                    let v = e.to as usize;
                    // Reduced cost; clamp fp noise.
                    let rc = (e.cost + potential[u] - potential[v]).max(0.0);
                    let nd = d + rc;
                    if nd < dist[v] {
                        dist[v] = nd;
                        prev_edge[v] = eid;
                        heap.push(Reverse(HeapItem {
                            dist: nd,
                            node: v as u32,
                        }));
                    }
                }
            }
            if !dist[t].is_finite() {
                break; // no augmenting path
            }
            for (p, &d) in potential.iter_mut().zip(&dist) {
                if d.is_finite() {
                    *p += d;
                }
            }
            // Bottleneck along the path.
            let mut push = target - total_flow;
            let mut v = t;
            while v != s {
                let eid = prev_edge[v] as usize;
                push = push.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to as usize;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let eid = prev_edge[v] as usize;
                self.edges[eid].cap -= push;
                self.edges[eid ^ 1].cap += push;
                total_cost += self.edges[eid].cost * push as f64;
                v = self.edges[eid ^ 1].to as usize;
            }
            total_flow += push;
        }
        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }

    /// Independent optimality certificate for the current flow: a flow of
    /// its value is minimum-cost **iff the residual graph has no
    /// negative-cost cycle** (the classical criterion — it does not depend
    /// on how the flow was computed). Runs Bellman–Ford over all residual
    /// edges; `tol` absorbs f64 rounding along cycles.
    ///
    /// Intended for tests and audits (`O(V·E)`), not hot paths.
    pub fn verify_optimal(&self, tol: f64) -> bool {
        let n = self.graph.len();
        let mut dist = vec![0.0f64; n]; // virtual super-source to all nodes
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                for &eid in &self.graph[u] {
                    let e = &self.edges[eid as usize];
                    if e.cap <= 0 {
                        continue;
                    }
                    let v = e.to as usize;
                    if dist[u] + e.cost < dist[v] - tol {
                        dist[v] = dist[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                return true; // converged: no negative cycle
            }
            if round == n - 1 {
                return false; // still relaxing after V rounds: negative cycle
            }
        }
        true
    }
}

/// Heap entry ordered by `dist` (f64), with a total order for the heap.
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("finite distances")
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 2.0);
        let r = g.solve(0, 1, 3);
        assert_eq!(r, FlowResult { flow: 3, cost: 6.0 });
        assert_eq!(g.flow_on(e), 3);
    }

    #[test]
    fn caps_limit_flow() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 2, 1.0);
        let r = g.solve(0, 1, 10);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2.0);
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        // Two parallel paths 0→1: direct cost 1 cap 1; via 2 cost 3 cap 5.
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 2, 5, 1.0);
        g.add_edge(2, 1, 5, 2.0);
        let r = g.solve(0, 1, 3);
        assert_eq!(r.flow, 3);
        assert!((r.cost - (1.0 + 2.0 * 3.0)).abs() < 1e-9);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic rerouting: a greedy first path must be partially undone.
        //    0 →(1,$1) 1 →(1,$1) 3
        //    0 →(1,$2) 2 →(1,$2) 3
        //    1 →(1,$0) 2
        // Max flow 2; optimal routes 0-1-3 and 0-2-3 (cost 1+1+2+2 = 6).
        // A naive shortest-first pass may try 0-1-2-3; SSP must still land
        // on 6 total.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 2.0);
        g.add_edge(2, 3, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        let r = g.solve(0, 3, 2);
        assert_eq!(r.flow, 2);
        assert!((r.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn transportation_instance_matches_hand_optimum() {
        // 2 supplies × 2 sinks. Supply a: 2 units, b: 1 unit. Sinks x: cap
        // 2, y: cap 2. Costs: a→x 1, a→y 5, b→x 2, b→y 1.
        // Optimum: a sends 2 to x (2), b sends 1 to y (1). Total 3.
        let (s, a, b, x, y, t) = (0, 1, 2, 3, 4, 5);
        let mut g = MinCostFlow::new(6);
        g.add_edge(s, a, 2, 0.0);
        g.add_edge(s, b, 1, 0.0);
        g.add_edge(a, x, 9, 1.0);
        g.add_edge(a, y, 9, 5.0);
        g.add_edge(b, x, 9, 2.0);
        g.add_edge(b, y, 9, 1.0);
        g.add_edge(x, t, 2, 0.0);
        g.add_edge(y, t, 2, 0.0);
        let r = g.solve(s, t, 3);
        assert_eq!(r.flow, 3);
        assert!((r.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn contention_forces_expensive_slots() {
        // Like one LP slot capacity: both supplies want sink x (cheap) but
        // x caps at 1.
        let (s, a, b, x, y, t) = (0, 1, 2, 3, 4, 5);
        let mut g = MinCostFlow::new(6);
        g.add_edge(s, a, 1, 0.0);
        g.add_edge(s, b, 1, 0.0);
        g.add_edge(a, x, 1, 1.0);
        g.add_edge(a, y, 1, 10.0);
        g.add_edge(b, x, 1, 1.0);
        g.add_edge(b, y, 1, 2.0);
        g.add_edge(x, t, 1, 0.0);
        g.add_edge(y, t, 9, 0.0);
        let r = g.solve(s, t, 2);
        assert_eq!(r.flow, 2);
        // a takes x (1), b takes y (2).
        assert!((r.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink_routes_nothing() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1.0);
        let r = g.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0.0 });
    }

    #[test]
    fn zero_target_is_a_noop() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, 1.0);
        let r = g.solve(0, 1, 0);
        assert_eq!(r, FlowResult { flow: 0, cost: 0.0 });
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, -1.0);
    }

    #[test]
    fn solver_output_passes_optimality_certificate() {
        // Reuse the rerouting instance: after solve, the residual graph
        // must be free of negative cycles.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 2.0);
        g.add_edge(2, 3, 1, 2.0);
        g.add_edge(1, 2, 1, 0.0);
        g.solve(0, 3, 2);
        assert!(g.verify_optimal(1e-9));
    }

    #[test]
    fn certificate_rejects_suboptimal_flows() {
        // Hand-build a suboptimal routing: push along the expensive path
        // while the cheap one is idle → residual negative cycle.
        //   0 →(cap1,$1) 1 →(cap1,$1) 3   (cheap, idle)
        //   0 →(cap1,$5) 2 →(cap1,$5) 3   (expensive, used)
        //   1 ↔ 2 free edges to close the cycle.
        let mut g = MinCostFlow::new(4);
        let _cheap1 = g.add_edge(0, 1, 1, 1.0);
        let _cheap2 = g.add_edge(1, 3, 1, 1.0);
        let exp1 = g.add_edge(0, 2, 1, 5.0);
        let exp2 = g.add_edge(2, 3, 1, 5.0);
        g.add_edge(1, 2, 1, 0.0);
        g.add_edge(2, 1, 1, 0.0);
        // Manually saturate the expensive path (bypassing solve).
        for id in [exp1, exp2] {
            g.edges[id].cap -= 1;
            g.edges[id ^ 1].cap += 1;
        }
        assert!(!g.verify_optimal(1e-9));
    }

    #[test]
    fn lp_solutions_are_certified_optimal() {
        // End-to-end: the LP builder's solved network passes the
        // independent certificate (exercised for a couple of shapes).
        use tf_simcore::Trace;
        for pairs in [
            vec![(0.0, 2.0), (0.0, 1.0), (1.0, 3.0)],
            vec![(0.0, 1.0), (2.0, 2.0), (2.0, 2.0), (5.0, 1.0)],
        ] {
            let t = Trace::from_pairs(pairs).unwrap();
            // Rebuild the LP network by hand via the public API is not
            // exposed; instead exercise the solver on the same shape:
            // jobs → slots with increasing costs.
            let n = t.len();
            let horizon = t.makespan_upper_bound(1.0).ceil() as usize + 1;
            let (s, sink) = (0usize, 1 + n + horizon);
            let mut g = MinCostFlow::new(sink + 1);
            let mut supply = 0;
            for (ji, j) in t.jobs().iter().enumerate() {
                let p = j.size.round() as i64;
                supply += p;
                g.add_edge(s, 1 + ji, p, 0.0);
                for slot in (j.arrival as usize)..horizon {
                    let age = slot as f64 - j.arrival;
                    g.add_edge(
                        1 + ji,
                        1 + n + slot,
                        1,
                        (age * age + j.size * j.size) / j.size,
                    );
                }
            }
            for slot in 0..horizon {
                g.add_edge(1 + n + slot, sink, 1, 0.0);
            }
            let r = g.solve(s, sink, supply);
            assert_eq!(r.flow, supply);
            assert!(g.verify_optimal(1e-6), "negative residual cycle left");
        }
    }

    #[test]
    fn random_instances_match_bruteforce() {
        // Exhaustive check on tiny random transportation instances:
        // 2 supplies (1 unit each) × 3 sinks (cap 1): enumerate all
        // assignments and compare.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..50 {
            let costs: Vec<Vec<f64>> = (0..2)
                .map(|_| (0..3).map(|_| (next() * 10.0).round()).collect())
                .collect();
            // Brute force: pick distinct sinks for the two supplies.
            let mut best = f64::INFINITY;
            for (x, cx) in costs[0].iter().enumerate() {
                for (y, cy) in costs[1].iter().enumerate() {
                    if x != y {
                        best = best.min(cx + cy);
                    }
                }
            }
            let (s, t) = (0usize, 6usize);
            let mut g = MinCostFlow::new(7);
            for (a, row) in costs.iter().enumerate() {
                g.add_edge(s, 1 + a, 1, 0.0);
                for (x, &c) in row.iter().enumerate() {
                    g.add_edge(1 + a, 3 + x, 1, c);
                }
            }
            for x in 0..3 {
                g.add_edge(3 + x, t, 1, 0.0);
            }
            let r = g.solve(s, t, 2);
            assert_eq!(r.flow, 2);
            assert!((r.cost - best).abs() < 1e-9, "{} vs {best}", r.cost);
        }
    }
}

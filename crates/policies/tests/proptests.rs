//! Cross-policy property tests: feasibility and known dominance relations
//! on arbitrary traces.

use proptest::prelude::*;
use tf_policies::Policy;
use tf_simcore::validate::validate_schedule;
use tf_simcore::{simulate, MachineConfig, SimOptions, Trace};

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.0f64..30.0, 0.05f64..10.0), 1..25)
        .prop_map(|pairs| Trace::from_pairs(pairs).expect("valid jobs"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy produces a feasible, work-conserving-enough schedule
    /// that completes all jobs, on every trace and machine setup.
    #[test]
    fn all_policies_produce_valid_schedules(t in arb_trace(), m in 1usize..4, s in 0.5f64..3.0) {
        let cfg = MachineConfig::with_speed(m, s);
        for p in Policy::all() {
            let mut alloc = p.make();
            let sched = simulate(&t, alloc.as_mut(), cfg, SimOptions::with_profile()).unwrap();
            // The adaptive stepper (AgedRR) carries bounded integration
            // error; allow a looser tolerance for it.
            let tol = if p == Policy::AgedRr { 2e-2 } else { 1e-6 };
            let rep = validate_schedule(&t, &sched, tol);
            prop_assert!(rep.ok(), "{p}: {:?}", rep.issues);
        }
    }

    /// SRPT is optimal for total (ℓ1) flow time on a single machine: no
    /// other policy in the registry beats it there.
    #[test]
    fn srpt_minimizes_total_flow_on_one_machine(t in arb_trace()) {
        let cfg = MachineConfig::new(1);
        let mut srpt = Policy::Srpt.make();
        let best = simulate(&t, srpt.as_mut(), cfg, SimOptions::default()).unwrap().total_flow();
        for p in Policy::all() {
            let mut alloc = p.make();
            let f = simulate(&t, alloc.as_mut(), cfg, SimOptions::default()).unwrap().total_flow();
            prop_assert!(best <= f + 1e-6 * f.max(1.0), "{p} beat SRPT: {f} < {best}");
        }
    }

    /// On a single machine every non-idling policy has the same makespan
    /// (work conservation): the last completion equals the busy-period end.
    #[test]
    fn single_machine_makespan_is_policy_independent(t in arb_trace()) {
        let cfg = MachineConfig::new(1);
        // LAPS with β<1 and FCFS/SJF/SRPT/SETF/RR are all non-idling on one
        // machine (some job always runs at full rate... except shared-rate
        // policies still saturate the machine when n≥1).
        let mut reference = None;
        for p in [Policy::Rr, Policy::Srpt, Policy::Sjf, Policy::Setf, Policy::Fcfs, Policy::Laps(0.5)] {
            let mut alloc = p.make();
            let mk = simulate(&t, alloc.as_mut(), cfg, SimOptions::default()).unwrap().makespan();
            match reference {
                None => reference = Some(mk),
                Some(r) => prop_assert!((mk - r).abs() < 1e-6, "{p}: makespan {mk} vs {r}"),
            }
        }
    }

    /// RR's max flow never exceeds FCFS's max flow by more than the largest
    /// job's processing time... is false in general; instead test a true
    /// invariant: under RR, flow times are monotone in job size among jobs
    /// with equal arrivals (larger twins finish no earlier).
    #[test]
    fn rr_larger_same_arrival_jobs_finish_later(arr in 0.0f64..10.0,
                                                s1 in 0.1f64..5.0, delta in 0.1f64..5.0,
                                                extra in prop::collection::vec((0.0f64..20.0, 0.1f64..5.0), 0..10)) {
        let mut pairs = vec![(arr, s1), (arr, s1 + delta)];
        pairs.extend(extra);
        let t = Trace::from_pairs(pairs).unwrap();
        // Locate the two jobs by (arrival,size).
        let small = t.jobs().iter().find(|j| j.arrival == arr && j.size == s1).unwrap().id;
        let large = t.jobs().iter().find(|j| j.arrival == arr && j.size == s1 + delta).unwrap().id;
        let mut rr = Policy::Rr.make();
        let s = simulate(&t, rr.as_mut(), MachineConfig::new(2), SimOptions::default()).unwrap();
        prop_assert!(s.completion[small as usize] <= s.completion[large as usize] + 1e-9);
    }
}

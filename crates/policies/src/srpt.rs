//! Shortest Remaining Processing Time.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// SRPT: at each instant, run the `m` alive jobs with least remaining work,
/// one per machine. Clairvoyant. Optimal (1-competitive) for total flow
/// time on a single machine; `(1+ε)`-speed `O(1)`-competitive for ℓk-norms
/// on multiple machines \[Fox–Moseley 2011, Torng–McCullough 2008\].
///
/// Ties are broken by earlier arrival, then id, making the schedule
/// deterministic. Between events the selected set cannot change: processed
/// jobs only shrink their remaining work (they stay ahead), unprocessed
/// jobs keep theirs, so no review hints are needed.
#[derive(Debug, Default, Clone)]
pub struct Srpt {
    order: Vec<usize>, // scratch
}

impl Srpt {
    /// A fresh SRPT allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateAllocator for Srpt {
    fn name(&self) -> &'static str {
        "SRPT"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.order.clear();
        self.order.extend(0..alive.len());
        self.order.sort_by(|&a, &b| {
            alive[a]
                .remaining
                .partial_cmp(&alive[b].remaining)
                .unwrap()
                .then_with(|| alive[a].seq.cmp(&alive[b].seq))
        });
        for &i in self.order.iter().take(cfg.m) {
            rates[i] = cfg.speed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn runs_shortest_remaining_first() {
        let a = alive(&[(0.0, 5.0, 0.0), (0.0, 2.0, 0.0), (0.0, 3.0, 0.0)]);
        let r = rates_of(&mut Srpt::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn remaining_not_size_decides() {
        // Job 0 is large but nearly done.
        let a = alive(&[(0.0, 10.0, 9.5), (0.0, 2.0, 0.0)]);
        let r = rates_of(&mut Srpt::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![1.0, 0.0]);
    }

    #[test]
    fn fills_all_machines() {
        let a = alive(&[(0.0, 3.0, 0.0), (0.0, 1.0, 0.0), (0.0, 2.0, 0.0)]);
        let r = rates_of(&mut Srpt::new(), 0.0, &a, &cfg(2, 1.0));
        assert_eq!(r, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn ties_break_by_arrival() {
        let a = alive(&[(1.0, 2.0, 0.0), (0.0, 2.0, 0.0)]);
        // testutil assigns seq by index; index 0 arrived later here but has
        // smaller seq — simulate real ordering by arrival: build manually.
        let mut a = a;
        a[0].seq = 1;
        a[1].seq = 0;
        let r = rates_of(&mut Srpt::new(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn srpt_is_optimal_on_classic_example() {
        // (0,4), (1,1): SRPT preempts: total flow = (1+... ) compute:
        // t∈[0,1): job0; t=1 job1 arrives with remaining 1 < 3 → runs,
        // completes at 2 (flow 1); job0 resumes, completes at 5 (flow 5).
        let t = Trace::from_pairs([(0.0, 4.0), (1.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Srpt::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        assert!((s.completion[0] - 5.0).abs() < 1e-9);
        assert!((s.completion[1] - 2.0).abs() < 1e-9);
        assert!((s.total_flow() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn srpt_two_machines_parallelism() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.0, 2.0), (0.0, 2.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Srpt::new(),
            tf_simcore::MachineConfig::new(2),
            SimOptions::default(),
        )
        .unwrap();
        // Two jobs run [0,2); the third runs [2,4).
        let mut c = s.completion.clone();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] - 2.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] - 4.0).abs() < 1e-9);
    }
}

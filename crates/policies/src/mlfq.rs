//! Multi-Level Feedback Queue (fractional idealization).
//!
//! The paper's motivation quotes Silberschatz–Galvin–Gagne's OS textbook;
//! the scheduler that textbook actually teaches (and that Unix variants
//! deploy) is MLFQ: jobs start at the highest priority and are demoted as
//! they accumulate service, with Round Robin inside each level. It is the
//! practical compromise between SETF (favor fresh jobs) and RR (share
//! equally), so it belongs in the comparison set.
//!
//! This is the fractional idealization: level of a job =
//! `⌊log_base(1 + attained/quantum)⌋`; the machines are given to the
//! *lowest-level* (least-demoted) jobs, shared equally within the level
//! (cascading leftover capacity to the next level, as with fractional
//! SETF). Like SETF, level crossings are internal events reported via
//! `review_in`.

use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// Fractional MLFQ with geometric level widths.
#[derive(Debug, Clone)]
pub struct Mlfq {
    /// Attained-service width of level 0 (> 0).
    pub quantum: f64,
    /// Geometric growth of level widths (> 1); level `l` spans attained
    /// service `[quantum·(base^l − 1)/(base − 1), …)`.
    pub base: f64,
    order: Vec<usize>, // scratch
}

impl Mlfq {
    /// MLFQ with the given level-0 quantum and geometric base.
    pub fn new(quantum: f64, base: f64) -> Self {
        assert!(quantum > 0.0 && quantum.is_finite());
        assert!(base > 1.0 && base.is_finite());
        Mlfq {
            quantum,
            base,
            order: Vec::new(),
        }
    }

    /// Level of a job with the given attained service.
    pub fn level(&self, attained: f64) -> u32 {
        // Cumulative boundary of level l: q·(base^l − 1)/(base − 1).
        // Invert: l = floor(log_base(1 + attained·(base−1)/q)).
        let x = 1.0 + attained * (self.base - 1.0) / self.quantum;
        x.log(self.base).floor().max(0.0) as u32
    }

    /// Attained-service boundary where level `l` ends.
    pub fn boundary(&self, l: u32) -> f64 {
        self.quantum * (self.base.powi(l as i32 + 1) - 1.0) / (self.base - 1.0)
    }

    fn compute(&mut self, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.order.clear();
        self.order.extend(0..alive.len());
        let levels: Vec<u32> = alive.iter().map(|a| self.level(a.attained)).collect();
        self.order.sort_by(|&a, &b| {
            levels[a]
                .cmp(&levels[b])
                .then_with(|| alive[a].seq.cmp(&alive[b].seq))
        });
        let mut capacity = cfg.total_cap();
        let cap = cfg.job_cap();
        let mut g0 = 0;
        while g0 < self.order.len() && capacity > 0.0 {
            let lv = levels[self.order[g0]];
            let mut g1 = g0 + 1;
            while g1 < self.order.len() && levels[self.order[g1]] == lv {
                g1 += 1;
            }
            let g = (g1 - g0) as f64;
            let share = (capacity / g).min(cap);
            for &i in &self.order[g0..g1] {
                rates[i] = share;
            }
            capacity -= share * g;
            g0 = g1;
        }
    }
}

impl Default for Mlfq {
    fn default() -> Self {
        Mlfq::new(1.0, 2.0)
    }
}

impl RateAllocator for Mlfq {
    fn name(&self) -> &'static str {
        "MLFQ"
    }

    fn allocate(&mut self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.compute(alive, cfg, rates);
    }

    fn review_in(&self, _now: f64, alive: &[AliveJob], cfg: &MachineConfig) -> Option<f64> {
        // Next level crossing among jobs currently receiving service.
        let mut me = self.clone();
        let mut rates = vec![0.0; alive.len()];
        me.compute(alive, cfg, &mut rates);
        let mut best: Option<f64> = None;
        for (a, &r) in alive.iter().zip(&rates) {
            if r > 1e-12 {
                let l = self.level(a.attained);
                let dt = (self.boundary(l) - a.attained) / r;
                if dt > 1e-12 {
                    best = Some(best.map_or(dt, |b: f64| b.min(dt)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn levels_are_geometric() {
        let m = Mlfq::new(1.0, 2.0);
        // Level 0: [0, 1); level 1: [1, 3); level 2: [3, 7).
        assert_eq!(m.level(0.0), 0);
        assert_eq!(m.level(0.99), 0);
        assert_eq!(m.level(1.0), 1);
        assert_eq!(m.level(2.99), 1);
        assert_eq!(m.level(3.0), 2);
        assert!((m.boundary(0) - 1.0).abs() < 1e-12);
        assert!((m.boundary(1) - 3.0).abs() < 1e-12);
        assert!((m.boundary(2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_jobs_preempt_demoted_ones() {
        // Job 0 has attained 5 (level 2); job 1 is fresh (level 0).
        let a = alive(&[(0.0, 9.0, 5.0), (1.0, 9.0, 0.0)]);
        let r = rates_of(&mut Mlfq::default(), 1.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn same_level_shares_like_rr() {
        let a = alive(&[(0.0, 9.0, 0.5), (0.0, 9.0, 0.7)]);
        let r = rates_of(&mut Mlfq::default(), 0.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.5, 0.5]);
    }

    #[test]
    fn leftover_capacity_cascades() {
        // One fresh job, one demoted, two machines: fresh gets one machine
        // and the demoted job gets the other (unlike strict-priority
        // starvation).
        let a = alive(&[(0.0, 9.0, 5.0), (0.0, 9.0, 0.0)]);
        let r = rates_of(&mut Mlfq::default(), 0.0, &a, &cfg(2, 1.0));
        assert_eq!(r, vec![1.0, 1.0]);
    }

    #[test]
    fn review_predicts_level_crossing() {
        let m = Mlfq::default();
        let a = alive(&[(0.0, 9.0, 0.25)]);
        // Alone at rate 1, hits the level-0 boundary (attained 1) in 0.75.
        let rev = m.review_in(0.0, &a, &cfg(1, 1.0)).unwrap();
        assert!((rev - 0.75).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_short_jobs_finish_fast() {
        // A long-running job plus a late small job: MLFQ lets the fresh
        // small job through (like SETF), then lets the long one progress.
        let t = Trace::from_pairs([(0.0, 8.0), (4.0, 1.0)]).unwrap();
        let s = simulate(
            &t,
            &mut Mlfq::default(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        // Small job arrives at 4 with level 0 vs long job's level ≥ 2 →
        // served immediately: completes at 5.
        assert!((s.completion[1] - 5.0).abs() < 1e-6, "{}", s.completion[1]);
        assert!((s.completion[0] - 9.0).abs() < 1e-6, "{}", s.completion[0]);
    }

    #[test]
    fn completes_everything_with_many_levels() {
        let t = Trace::from_pairs([(0.0, 16.0), (0.0, 1.0), (2.0, 4.0), (3.0, 0.5)]).unwrap();
        let s = simulate(
            &t,
            &mut Mlfq::new(0.5, 2.0),
            tf_simcore::MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert!((p.total_work() - t.total_size()).abs() < 1e-6);
    }
}

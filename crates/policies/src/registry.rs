//! Policy registry: a closed enumeration of every policy in the crate,
//! with parsing and boxed construction — what the harness and CLI use.

use crate::{
    AgedRoundRobin, Fcfs, Hdf, Laps, Mlfq, RoundRobin, Setf, Sjf, Srpt, WeightedRoundRobin,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use tf_simcore::RateAllocator;

/// A closed, serializable identifier for every policy in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Round Robin (the paper's algorithm).
    Rr,
    /// Weighted Round Robin (static job weights).
    Wrr,
    /// Age-weighted Round Robin (continuous).
    AgedRr,
    /// Shortest Remaining Processing Time.
    Srpt,
    /// (Preemptive) Shortest Job First.
    Sjf,
    /// Highest Density First (weighted SJF).
    Hdf,
    /// Shortest Elapsed Time First.
    Setf,
    /// Multi-Level Feedback Queue (fractional, geometric levels).
    Mlfq,
    /// First Come First Served.
    Fcfs,
    /// Latest Arrival Processor Sharing with parameter β.
    Laps(f64),
}

impl Policy {
    /// All parameterless policies plus LAPS at its default β = 0.5 — the
    /// standard comparison set used by the experiment harness.
    pub fn all() -> Vec<Policy> {
        vec![
            Policy::Rr,
            Policy::Wrr,
            Policy::AgedRr,
            Policy::Srpt,
            Policy::Sjf,
            Policy::Hdf,
            Policy::Setf,
            Policy::Mlfq,
            Policy::Fcfs,
            Policy::Laps(0.5),
        ]
    }

    /// The non-clairvoyant subset (fair comparisons against RR).
    pub fn non_clairvoyant() -> Vec<Policy> {
        vec![
            Policy::Rr,
            Policy::AgedRr,
            Policy::Setf,
            Policy::Mlfq,
            Policy::Fcfs,
            Policy::Laps(0.5),
        ]
    }

    /// Construct a fresh allocator for this policy.
    pub fn make(&self) -> Box<dyn RateAllocator> {
        match *self {
            Policy::Rr => Box::new(RoundRobin::new()),
            Policy::Wrr => Box::new(WeightedRoundRobin::new()),
            Policy::AgedRr => Box::new(AgedRoundRobin::new()),
            Policy::Srpt => Box::new(Srpt::new()),
            Policy::Sjf => Box::new(Sjf::new()),
            Policy::Hdf => Box::new(Hdf::new()),
            Policy::Setf => Box::new(Setf::new()),
            Policy::Mlfq => Box::new(Mlfq::default()),
            Policy::Fcfs => Box::new(Fcfs::new()),
            Policy::Laps(beta) => Box::new(Laps::new(beta)),
        }
    }

    /// Whether the policy inspects job sizes / remaining work.
    pub fn clairvoyant(&self) -> bool {
        matches!(self, Policy::Srpt | Policy::Sjf | Policy::Hdf)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Rr => write!(f, "RR"),
            Policy::Wrr => write!(f, "WRR"),
            Policy::AgedRr => write!(f, "AgedRR"),
            Policy::Srpt => write!(f, "SRPT"),
            Policy::Sjf => write!(f, "SJF"),
            Policy::Hdf => write!(f, "HDF"),
            Policy::Setf => write!(f, "SETF"),
            Policy::Mlfq => write!(f, "MLFQ"),
            Policy::Fcfs => write!(f, "FCFS"),
            Policy::Laps(b) => write!(f, "LAPS({b})"),
        }
    }
}

impl FromStr for Policy {
    type Err = String;

    /// Case-insensitive; `laps` takes an optional `:β` suffix
    /// (e.g. `laps:0.25`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Ok(match lower.as_str() {
            "rr" | "roundrobin" | "round-robin" => Policy::Rr,
            "wrr" => Policy::Wrr,
            "agedrr" | "aged-rr" | "wrr-age" => Policy::AgedRr,
            "srpt" => Policy::Srpt,
            "sjf" | "psjf" => Policy::Sjf,
            "hdf" | "wsjf" => Policy::Hdf,
            "setf" | "las" => Policy::Setf,
            "mlfq" => Policy::Mlfq,
            "fcfs" | "fifo" => Policy::Fcfs,
            _ => {
                if let Some(rest) = lower.strip_prefix("laps") {
                    let beta = match rest.strip_prefix(':') {
                        Some(b) => b.parse::<f64>().map_err(|e| format!("bad LAPS β: {e}"))?,
                        None if rest.is_empty() => 0.5,
                        _ => return Err(format!("unknown policy: {s}")),
                    };
                    if !(0.0..=1.0).contains(&beta) || beta == 0.0 {
                        return Err(format!("LAPS β must be in (0,1], got {beta}"));
                    }
                    Policy::Laps(beta)
                } else {
                    return Err(format!("unknown policy: {s}"));
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in Policy::all() {
            let parsed: Policy = match p {
                Policy::Laps(b) => format!("laps:{b}").parse().unwrap(),
                _ => p.to_string().parse().unwrap(),
            };
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("fifo".parse::<Policy>().unwrap(), Policy::Fcfs);
        assert_eq!("las".parse::<Policy>().unwrap(), Policy::Setf);
        assert_eq!("round-robin".parse::<Policy>().unwrap(), Policy::Rr);
        assert_eq!("laps".parse::<Policy>().unwrap(), Policy::Laps(0.5));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Policy>().is_err());
        assert!("zzz".parse::<Policy>().is_err());
        assert!("laps:2.0".parse::<Policy>().is_err());
        assert!("laps:0".parse::<Policy>().is_err());
        assert!("laps:x".parse::<Policy>().is_err());
    }

    #[test]
    fn make_produces_matching_names() {
        assert_eq!(Policy::Rr.make().name(), "RR");
        assert_eq!(Policy::Srpt.make().name(), "SRPT");
        assert_eq!(Policy::Laps(0.25).make().name(), "LAPS");
    }

    #[test]
    fn clairvoyance_classification() {
        assert!(Policy::Srpt.clairvoyant());
        assert!(Policy::Sjf.clairvoyant());
        assert!(!Policy::Rr.clairvoyant());
        assert!(!Policy::Setf.clairvoyant());
        for p in Policy::non_clairvoyant() {
            assert!(!p.clairvoyant());
        }
    }
}

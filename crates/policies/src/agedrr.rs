//! Age-weighted Round Robin (rates proportional to job age).

use crate::waterfill::water_fill;
use tf_simcore::{AliveJob, MachineConfig, RateAllocator};

/// Round Robin weighted by *age*: at time `t`, job `j` receives a machine
/// share proportional to `t − r_j`, capped at one machine, excess
/// water-filled.
///
/// This is the weighted RR variant the paper contrasts itself against
/// (Section 1.2): "the weighted variant of RR that distributes machines to
/// jobs in proportion to their ages was shown to be O(1)-speed
/// O(1)-competitive for the ℓ2-norm" \[Edmonds–Im–Moseley 2011\]. Plain RR
/// ignores ages; this policy is the natural potential-function-friendly
/// alternative, so comparing the two head-to-head (experiment E9) shows
/// what the paper's harder analysis buys.
///
/// Ages grow continuously, so rates vary *between* events:
/// [`RateAllocator::continuous`] is `true` and the engine integrates with
/// bounded adaptive steps.
#[derive(Debug, Default, Clone)]
pub struct AgedRoundRobin {
    weights: Vec<f64>, // scratch
}

impl AgedRoundRobin {
    /// A fresh age-weighted RR allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateAllocator for AgedRoundRobin {
    fn name(&self) -> &'static str {
        "AgedRR"
    }

    fn allocate(&mut self, now: f64, alive: &[AliveJob], cfg: &MachineConfig, rates: &mut [f64]) {
        self.weights.clear();
        self.weights.extend(alive.iter().map(|a| a.age_at(now)));
        water_fill(&self.weights, cfg.total_cap(), cfg.job_cap(), rates);
    }

    fn continuous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{alive, cfg, rates_of};
    use tf_simcore::{simulate, SimOptions, Trace};

    #[test]
    fn rates_proportional_to_age() {
        let a = alive(&[(0.0, 9.0, 0.0), (2.0, 9.0, 0.0)]);
        // At t=3: ages 3 and 1 → shares 0.75/0.25 on one machine.
        let r = rates_of(&mut AgedRoundRobin::new(), 3.0, &a, &cfg(1, 1.0));
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_arrivals_split_equally() {
        let a = alive(&[(1.0, 9.0, 0.0), (1.0, 9.0, 0.0)]);
        // At the arrival instant all ages are 0 → equal-split fallback.
        let r = rates_of(&mut AgedRoundRobin::new(), 1.0, &a, &cfg(1, 1.0));
        assert_eq!(r, vec![0.5, 0.5]);
    }

    #[test]
    fn cap_binds_for_very_old_jobs() {
        let a = alive(&[(0.0, 9.0, 0.0), (99.0, 9.0, 0.0)]);
        // At t=100: ages 100 and 1; proportional share of job0 on 2
        // machines would be 2·100/101 > 1 → capped at 1; job1 gets the rest.
        let r = rates_of(&mut AgedRoundRobin::new(), 100.0, &a, &cfg(2, 1.0));
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_completes_all_work() {
        let t = Trace::from_pairs([(0.0, 2.0), (0.5, 1.0), (1.0, 3.0)]).unwrap();
        let s = simulate(
            &t,
            &mut AgedRoundRobin::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::with_profile(),
        )
        .unwrap();
        let p = s.profile.as_ref().unwrap();
        assert!((p.total_work() - t.total_size()).abs() < 1e-3);
        for j in t.jobs() {
            assert!(s.completion[j.id as usize].is_finite());
            // Work within integration tolerance of the adaptive stepper.
            assert!((p.work_of(j.id) - j.size).abs() < 1e-3);
        }
    }

    #[test]
    fn older_jobs_finish_sooner_than_under_rr() {
        // An old job competing with a stream of fresh arrivals should do
        // better under AgedRR than under RR.
        let mut pairs = vec![(0.0, 5.0)];
        for i in 0..10 {
            pairs.push((4.0 + 0.2 * i as f64, 0.4));
        }
        let t = Trace::from_pairs(pairs).unwrap();
        let aged = simulate(
            &t,
            &mut AgedRoundRobin::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        let rr = simulate(
            &t,
            &mut crate::RoundRobin::new(),
            tf_simcore::MachineConfig::new(1),
            SimOptions::default(),
        )
        .unwrap();
        assert!(aged.completion[0] <= rr.completion[0] + 1e-6);
    }
}
